//! Source-side driver for one session handoff.
//!
//! A [`Migration`] drains a live session off its source collector and
//! ships it to the federation partner over the framed protocol:
//!
//! ```text
//! source                                destination
//!   │── Migrate {meta, expected, …} ──────▶│  open Migrating stand-in
//!   │◀──────────── MigrateAck {session} ───│
//!   │── Handoff {seq=1, header bytes} ────▶│  persist prefix, card
//!   │◀──────── HandoffAck {seq=1, recs} ───│
//!   │── Handoff {seq=2, segment 1} ───────▶│  …
//!   │── Handoff {seq=N, segment N-1} ─────▶│  verify count, resume
//!   │◀──────── HandoffAck {seq=N, recs} ───│  writer, → Streaming
//!   │  delete local copy; client rebinds to the destination
//! ```
//!
//! Chunks follow journal structure ([`split_journal`]): chunk 1 is the
//! IOTJ header, every later chunk one sealed segment — so the
//! destination's persisted prefix is a valid journal after *every*
//! chunk, and killing either side between any two frames tears nothing.
//! The driver offers at most one frame per tick, honours `Busy`
//! refusals with the same jittered backoff clients use, and — unlike a
//! client — always runs with a finite [`RetryPolicy::max_attempts`]:
//! a persistently unreachable partner aborts the handoff with a typed
//! [`HandoffAborted`] and the source session goes back to `Streaming`.

use iotrace_fs::params::RetryPolicy;
use iotrace_model::journal::split_journal;
use iotrace_sim::rng::DetRng;

use crate::collector::Collector;
use crate::proto::{encode_frame, Frame};
use crate::session::session_stem;

/// Synthetic client-id base for collector → collector traffic: peer
/// frames for client `c` travel as client id `PEER_CLIENT_BASE + c`,
/// keeping them disjoint from real client ids in queues and outboxes.
pub const PEER_CLIENT_BASE: u32 = 0xFEED_0000;

/// The peer-channel id carrying `client`'s handoff frames.
pub fn peer_id(client: u32) -> u32 {
    PEER_CLIENT_BASE + client
}

/// The typed degradation a handoff ends in when the retry budget runs
/// out: nothing is lost — the source keeps its sealed spool and resumes
/// the session — but the migration did not happen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HandoffAborted {
    pub client: u32,
    pub session: u32,
    /// Busy refusals absorbed before giving up.
    pub attempts: u32,
    /// Chunks the destination had acked when we gave up.
    pub shipped_chunks: u64,
}

impl std::fmt::Display for HandoffAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "handoff of client {} session {} aborted after {} attempts ({} chunks shipped)",
            self.client, self.session, self.attempts, self.shipped_chunks
        )
    }
}

impl std::error::Error for HandoffAborted {}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MigratePhase {
    /// `Migrate` announced, `MigrateAck` owed.
    Announce,
    /// Shipping `Handoff` chunks.
    Ship,
    /// Final chunk acked; awaiting finalization by the harness.
    Done,
    /// Retry budget exhausted; source session restored.
    Aborted,
}

/// One in-flight session handoff, driven one frame per tick.
pub struct Migration {
    pub client: u32,
    pub src_session: u32,
    /// Stand-in session id on the destination, known after `MigrateAck`.
    pub dest_session: Option<u32>,
    chunks: Vec<Vec<u8>>,
    /// Chunks acked by the destination (== next chunk index to ship).
    acked_chunks: usize,
    phase: MigratePhase,
    /// Encoded `Migrate` announcement.
    announce: Vec<u8>,
    policy: RetryPolicy,
    rng: DetRng,
    attempt: u32,
    parked: u64,
    /// The current frame was accepted by the destination queue and its
    /// ack is still owed.
    in_flight: bool,
    /// Busy refusals absorbed over the whole handoff.
    pub retries: u64,
    pub started_tick: u64,
    pub finished_tick: Option<u64>,
    pub aborted: Option<HandoffAborted>,
}

impl Migration {
    /// Begin draining `client`'s session off `source`. Seals the spool,
    /// splits it along segment boundaries, and returns the driver —
    /// or `None` when the client has no streaming session to migrate.
    pub fn begin(
        source: &mut Collector,
        client: u32,
        policy: RetryPolicy,
        seed: u64,
        tick: u64,
    ) -> Result<Option<Migration>, String> {
        let Some((sid, bytes)) = source.begin_drain(client)? else {
            return Ok(None);
        };
        let chunks = split_journal(&bytes)
            .map_err(|e| format!("sealed spool of session {sid} fails to split: {e:?}"))?;
        let sess = source.session(sid).expect("drained session exists");
        let origin = format!("{}/{}", source.name(), session_stem(sid));
        let announce = encode_frame(&Frame::Migrate {
            origin_session: sid,
            meta: sess.meta.clone(),
            expected: sess.expected,
            sealed_records: sess.sealed(),
            last_seq: sess.last_seq,
            chunks: chunks.len() as u64,
            origin,
        });
        Ok(Some(Migration {
            client,
            src_session: sid,
            dest_session: None,
            chunks,
            acked_chunks: 0,
            phase: MigratePhase::Announce,
            announce,
            policy,
            rng: DetRng::new(seed).fork(0x316a).fork(u64::from(client)),
            attempt: 0,
            parked: 0,
            in_flight: false,
            retries: 0,
            started_tick: tick,
            finished_tick: None,
            aborted: None,
        }))
    }

    /// The final chunk was acked: the destination owns the session and
    /// the harness should finalize (delete the source copy, rebind the
    /// client).
    pub fn is_done(&self) -> bool {
        self.phase == MigratePhase::Done
    }

    pub fn is_aborted(&self) -> bool {
        self.phase == MigratePhase::Aborted
    }

    pub fn is_settled(&self) -> bool {
        self.is_done() || self.is_aborted()
    }

    /// Chunks shipped and acked so far.
    pub fn shipped_chunks(&self) -> u64 {
        self.acked_chunks as u64
    }

    /// Total chunks this handoff ships.
    pub fn total_chunks(&self) -> u64 {
        self.chunks.len() as u64
    }

    /// Advance one tick: honour backoff, then offer at most one frame
    /// to the destination.
    pub fn step(&mut self, dest: &mut Collector) {
        if self.is_settled() || self.in_flight {
            return;
        }
        if self.parked > 0 {
            self.parked -= 1;
            return;
        }
        let bytes = match self.phase {
            MigratePhase::Announce => self.announce.clone(),
            MigratePhase::Ship => {
                let session = self.dest_session.expect("Ship implies MigrateAck");
                encode_frame(&Frame::Handoff {
                    session,
                    seq: self.acked_chunks as u64 + 1,
                    bytes: self.chunks[self.acked_chunks].clone(),
                })
            }
            MigratePhase::Done | MigratePhase::Aborted => unreachable!(),
        };
        match dest.offer(peer_id(self.client), bytes) {
            Ok(()) => {
                self.in_flight = true;
                self.attempt = 0;
            }
            Err(Frame::Busy { .. }) => {
                self.retries += 1;
                match self
                    .policy
                    .try_backoff_jittered(self.attempt, &mut self.rng)
                {
                    Ok(wait) => {
                        self.parked = (wait.as_nanos() / 1_000_000).max(1);
                        self.attempt = self.attempt.saturating_add(1);
                    }
                    Err(exhausted) => {
                        self.phase = MigratePhase::Aborted;
                        self.aborted = Some(HandoffAborted {
                            client: self.client,
                            session: self.src_session,
                            attempts: exhausted.attempts,
                            shipped_chunks: self.acked_chunks as u64,
                        });
                    }
                }
            }
            Err(_) => unreachable!("offer only refuses with Busy"),
        }
    }

    /// Deliver one destination → source frame (routed here by the
    /// harness via the peer client id).
    pub fn deliver(&mut self, frame: &Frame, tick: u64) {
        match frame {
            Frame::MigrateAck {
                session,
                origin_session,
            } if *origin_session == self.src_session && self.phase == MigratePhase::Announce => {
                self.dest_session = Some(*session);
                self.phase = MigratePhase::Ship;
                self.in_flight = false;
            }
            Frame::HandoffAck { session, seq, .. }
                if self.phase == MigratePhase::Ship
                    && Some(*session) == self.dest_session
                    && *seq == self.acked_chunks as u64 + 1 =>
            {
                self.acked_chunks += 1;
                self.in_flight = false;
                if self.acked_chunks == self.chunks.len() {
                    self.phase = MigratePhase::Done;
                    self.finished_tick = Some(tick);
                }
            }
            _ => {}
        }
    }
}
