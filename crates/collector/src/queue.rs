//! The bounded ingest queue — the collector's backpressure valve.
//!
//! The queue accepts or *refuses*; it never drops. A push against a
//! full queue hands the item straight back (the caller turns that into
//! a `Busy` frame), so every accepted item is observable at the other
//! end, in order. Occupancy can therefore never exceed the configured
//! capacity — the property test in `tests/queue_props.rs` checks both
//! invariants against an unbounded oracle under random interleavings.

use std::collections::VecDeque;

/// A FIFO with a hard capacity and accounting for the backpressure
/// story: how many pushes were accepted, how many refused, and the
/// deepest the queue ever got.
#[derive(Clone, Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    cap: usize,
    accepted: u64,
    refused: u64,
    high_watermark: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `cap` items (minimum 1).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            items: VecDeque::new(),
            cap: cap.max(1),
            accepted: 0,
            refused: 0,
            high_watermark: 0,
        }
    }

    /// Accept `item`, or refuse and hand it back when full. Refusal is
    /// the *only* failure mode: an accepted item is never dropped.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.cap {
            self.refused += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.accepted += 1;
        self.high_watermark = self.high_watermark.max(self.items.len());
        Ok(())
    }

    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.items.len() >= self.cap
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total pushes accepted over the queue's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Total pushes refused (each one a `Busy` signalled to a client).
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// The deepest occupancy ever observed — provably `<= capacity()`.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refuses_when_full_and_hands_the_item_back() {
        let mut q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert!(q.is_full());
        assert_eq!(q.refused(), 1);
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok());
        assert_eq!(q.accepted(), 3);
        assert_eq!(q.high_watermark(), 2);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.push(9).is_ok());
        assert_eq!(q.push(10), Err(10));
    }
}
