//! Deterministic multi-client soak: N simulated clients stream their
//! traces through one collector under a fault plan, on a shared tick
//! clock.
//!
//! Each tick the collector drains a budget of frames (shrunk inside
//! `slow-consumer` windows), replies are delivered, then every live
//! client takes one step in id order. Identical `(config, plan,
//! inputs)` produce identical spool bytes, ledgers, and merged digest —
//! which is what lets CI diff two independent crash recoveries and call
//! any difference a bug.

use std::collections::BTreeMap;

use iotrace_fs::params::RetryPolicy;
use iotrace_model::event::{IoCall, Trace, TraceMeta, TraceRecord};
use iotrace_sim::fault::FaultPlan;
use iotrace_sim::rng::DetRng;
use iotrace_sim::time::{SimDur, SimTime};

use crate::client::{ClientPhase, SimClient};
use crate::collector::{Collector, CollectorConfig, StatsSnapshot};
use crate::recovery::recover_spool;

/// Knobs for one soak run.
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    pub clients: u32,
    pub records_per_client: usize,
    /// Records per protocol frame.
    pub frame_records: usize,
    pub collector: CollectorConfig,
    /// Kill the collector after this many drained frames (overrides the
    /// plan's `collector-kill` when set).
    pub kill_at_frame: Option<u64>,
    pub retry: RetryPolicy,
    pub seed: u64,
    /// Take a stats snapshot every this many ticks (0 = off).
    pub status_every: u64,
    /// Safety valve: a soak that hasn't converged by now is a bug.
    pub max_ticks: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            clients: 8,
            records_per_client: 256,
            frame_records: 16,
            collector: CollectorConfig::default(),
            kill_at_frame: None,
            retry: RetryPolicy {
                jitter_frac: 0.5,
                ..RetryPolicy::lanl_2007()
            },
            seed: 42,
            status_every: 0,
            max_ticks: 500_000,
        }
    }
}

/// How a soak ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SoakOutcome {
    /// Every client reached a terminal phase and the spool is sealed.
    Completed,
    /// The collector was killed after draining this many frames.
    Killed { at_frame: u64 },
}

/// One client's final standing, joined with its session's.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    pub client: u32,
    /// Session id, `None` when the client never connected.
    pub session: Option<u32>,
    /// Session state on the collector (`lost` clients have none).
    pub state: String,
    pub expected: u64,
    /// Records the collector acknowledged as appended.
    pub acked: u64,
    /// Durable (sealed) records — for killed runs, the ground truth of
    /// what recovery must bring back.
    pub sealed: u64,
    pub completeness: f64,
    /// Backoff rounds this client took after `Busy` refusals.
    pub retries: u64,
    /// The client exhausted its retry budget (`max_attempts`) and gave
    /// up on a persistently `Busy` collector.
    pub gave_up: bool,
}

/// The soak's result: outcomes, queue accounting, snapshots, digest.
#[derive(Clone, Debug)]
pub struct SoakReport {
    pub outcome: SoakOutcome,
    pub ticks: u64,
    pub sessions: Vec<SessionOutcome>,
    pub queue_capacity: usize,
    pub queue_high_watermark: usize,
    pub busy_refusals: u64,
    pub total_retries: u64,
    /// Clients that hit the `max_attempts` give-up cap.
    pub retries_exhausted: u64,
    /// Mid-capture stats snapshots (when `status_every > 0`).
    pub snapshots: Vec<(u64, StatsSnapshot)>,
    /// Records in the merged spool output (completed runs only).
    pub merged_records: u64,
    /// Digest of the merged spool output (completed runs only).
    pub merged_digest: u64,
}

impl SoakReport {
    /// Render the per-session summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("client  sess  state      expected  acked   sealed  retries  completeness\n");
        for s in &self.sessions {
            out.push_str(&format!(
                "{:<7} {:<5} {:<10} {:<9} {:<7} {:<7} {:<8} {:.6}\n",
                s.client,
                s.session
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into()),
                s.state,
                s.expected,
                s.acked,
                s.sealed,
                s.retries,
                s.completeness
            ));
        }
        out.push_str(&format!(
            "queue: {}/{} high watermark, {} busy refusal(s), {} retry backoff(s)\n",
            self.queue_high_watermark, self.queue_capacity, self.busy_refusals, self.total_retries
        ));
        if self.retries_exhausted > 0 {
            out.push_str(&format!(
                "{} client(s) exhausted their retry budget and gave up\n",
                self.retries_exhausted
            ));
        }
        match self.outcome {
            SoakOutcome::Completed => out.push_str(&format!(
                "completed in {} tick(s): {} record(s) merged, digest {:#018x}\n",
                self.ticks, self.merged_records, self.merged_digest
            )),
            SoakOutcome::Killed { at_frame } => out.push_str(&format!(
                "collector KILLED after {} frame(s) at tick {} — spool left torn for recovery\n",
                at_frame, self.ticks
            )),
        }
        out
    }
}

/// Synthesize one deterministic per-client trace: a few files opened,
/// read/written in bursts, closed — enough shape for hotspot and stats
/// queries to say something.
pub fn synth_client_traces(clients: u32, records_per_client: usize, seed: u64) -> Vec<Trace> {
    (0..clients)
        .map(|c| {
            let mut rng = DetRng::new(seed).fork(u64::from(c) + 1);
            let meta = TraceMeta::new(
                &format!("/ior_like.exe -c {c}"),
                c,
                c / 4,
                "iotrace-collector-sim",
            );
            let mut records = Vec::with_capacity(records_per_client);
            let mut ts = 1_000 + u64::from(c) * 17;
            let mut fd = -1i64;
            let mut path_no = 0u32;
            for i in 0..records_per_client {
                ts += 3 + rng.next_u64() % 11;
                let (call, result) = if fd < 0 {
                    fd = 3;
                    path_no += 1;
                    (
                        IoCall::Open {
                            path: format!("/scratch/rank{c}/f{path_no}.dat"),
                            flags: 0o102,
                            mode: 0o644,
                        },
                        fd,
                    )
                } else if i % 37 == 36 {
                    let f = fd;
                    fd = -1;
                    (IoCall::Close { fd: f }, 0)
                } else if rng.unit_f64() < 0.7 {
                    let len = 4096 + (rng.next_u64() % 8) * 4096;
                    (
                        IoCall::Pwrite {
                            fd,
                            offset: i as u64 * 4096,
                            len,
                        },
                        len as i64,
                    )
                } else {
                    let len = 4096;
                    (
                        IoCall::Pread {
                            fd,
                            offset: i as u64 * 4096,
                            len,
                        },
                        len as i64,
                    )
                };
                records.push(TraceRecord {
                    ts: SimTime::from_micros(ts),
                    dur: SimDur::from_micros(1 + rng.next_u64() % 40),
                    rank: c,
                    node: c / 4,
                    pid: 1000 + c,
                    uid: 500,
                    gid: 500,
                    call,
                    result,
                });
            }
            Trace { meta, records }
        })
        .collect()
}

/// Run one soak over `dir`. `inputs` defaults to
/// [`synth_client_traces`]; when given, it must hold one trace per
/// client. Returns the report; on a kill, the spool is left torn for
/// [`recover_spool`] and the report's `sessions` carry the
/// sealed-at-kill ground truth.
pub fn run_soak(
    dir: &std::path::Path,
    cfg: &SoakConfig,
    plan: &FaultPlan,
    inputs: Option<&[Trace]>,
) -> Result<SoakReport, String> {
    let synthesized;
    let traces: &[Trace] = match inputs {
        Some(t) => {
            if t.len() != cfg.clients as usize {
                return Err(format!(
                    "need {} input traces, got {}",
                    cfg.clients,
                    t.len()
                ));
            }
            t
        }
        None => {
            synthesized = synth_client_traces(cfg.clients, cfg.records_per_client, cfg.seed);
            &synthesized
        }
    };
    let mut collector = Collector::open(dir, cfg.collector)?;
    let kill_at = cfg.kill_at_frame.or_else(|| plan.collector_kill_frame());
    let stalls = plan.consumer_stalls();

    let mut clients: BTreeMap<u32, SimClient> = BTreeMap::new();
    let mut lost: Vec<u32> = Vec::new();
    for (c, trace) in traces.iter().enumerate() {
        let c = c as u32;
        if plan.file_lost(c) {
            lost.push(c);
            continue;
        }
        let expected = trace.records.len() as u64;
        let keep = plan
            .truncation(c)
            .map(|f| ((trace.records.len() as f64) * f).floor() as usize)
            .unwrap_or(trace.records.len());
        clients.insert(
            c,
            SimClient::new(
                c,
                trace.meta.clone(),
                trace.records[..keep].to_vec(),
                expected,
                cfg.frame_records,
                cfg.retry,
                cfg.seed ^ (u64::from(c) << 8),
                plan.disconnect_frame(c),
            ),
        );
    }

    let mut snapshots = Vec::new();
    let mut outcome = None;
    let mut ticks = 0;
    for tick in 0..cfg.max_ticks {
        ticks = tick;
        // slow-consumer windows shrink the drain budget
        let mut budget = cfg.collector.drain_per_tick;
        for &(from, until, factor) in &stalls {
            if tick >= from && tick < until && factor > 1.0 {
                budget = ((budget as f64) / factor).floor() as usize;
            }
        }
        let killed = collector.drain(budget, kill_at)?;
        for (to, frame) in collector.take_outbox() {
            if let Some(cl) = clients.get_mut(&to) {
                cl.deliver(&frame);
            }
        }
        if killed {
            outcome = Some(SoakOutcome::Killed {
                at_frame: collector.frames_drained(),
            });
            break;
        }
        for cl in clients.values_mut() {
            cl.step(&mut collector);
        }
        if cfg.status_every > 0 && tick % cfg.status_every == 0 {
            snapshots.push((tick, collector.snapshot()));
        }
        if clients.values().all(|c| c.is_terminal()) && collector.queue().is_empty() {
            // final sweep: sessions of silently-vanished (or given-up)
            // clients
            let dead: Vec<u32> = clients
                .values()
                .filter(|c| matches!(c.phase, ClientPhase::Dead | ClientPhase::GaveUp))
                .map(|c| c.id)
                .collect();
            collector.sweep_idle(&dead)?;
            outcome = Some(SoakOutcome::Completed);
            break;
        }
    }
    let outcome = outcome.ok_or_else(|| {
        format!(
            "soak did not converge within {} ticks (livelock?)",
            cfg.max_ticks
        )
    })?;

    // join client ledgers with collector session rows
    let session_rows: BTreeMap<u32, _> = collector
        .session_rows()
        .into_iter()
        .map(|r| (r.session, r))
        .collect();
    let mut sessions = Vec::new();
    for (&c, cl) in &clients {
        let row = cl.session.and_then(|sid| session_rows.get(&sid));
        sessions.push(SessionOutcome {
            client: c,
            session: cl.session,
            state: row
                .map(|r| r.state.to_string())
                .unwrap_or_else(|| "unreached".into()),
            expected: row.map(|r| r.expected).unwrap_or(0),
            acked: cl.ledger.acked_records,
            sealed: row.map(|r| r.sealed).unwrap_or(0),
            completeness: row.map(|r| r.completeness).unwrap_or(0.0),
            retries: cl.ledger.retries,
            gave_up: cl.ledger.exhausted,
        });
    }
    for c in lost {
        sessions.push(SessionOutcome {
            client: c,
            session: None,
            state: "lost".into(),
            expected: 0,
            acked: 0,
            sealed: 0,
            completeness: 0.0,
            retries: 0,
            gave_up: false,
        });
    }
    sessions.sort_by_key(|s| s.client);

    // for completed runs, the spool is a set of clean journals: recovery
    // is a no-op pass that also writes the deterministic merged digest
    let (merged_records, merged_digest) = if outcome == SoakOutcome::Completed {
        let rep = recover_spool(dir, cfg.collector.segment_records)?;
        debug_assert_eq!(rep.orphans(), 0, "completed soak left orphans");
        (rep.total_records, rep.merged_digest)
    } else {
        (0, 0)
    };

    Ok(SoakReport {
        outcome,
        ticks: ticks + 1,
        sessions,
        queue_capacity: collector.queue().capacity(),
        queue_high_watermark: collector.queue().high_watermark(),
        busy_refusals: collector.queue().refused(),
        total_retries: clients.values().map(|c| c.ledger.retries).sum(),
        retries_exhausted: clients.values().filter(|c| c.ledger.exhausted).count() as u64,
        snapshots,
        merged_records,
        merged_digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("iotrace-soak-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn clean_soak_completes_with_all_sessions_closed() {
        let dir = tmpdir("clean");
        let cfg = SoakConfig {
            clients: 4,
            records_per_client: 100,
            ..SoakConfig::default()
        };
        let rep = run_soak(&dir, &cfg, &FaultPlan::clean(), None).unwrap();
        assert_eq!(rep.outcome, SoakOutcome::Completed);
        assert_eq!(rep.sessions.len(), 4);
        for s in &rep.sessions {
            assert_eq!(s.state, "closed", "client {}: {}", s.client, rep.render());
            assert_eq!(s.sealed, 100);
            assert_eq!(s.completeness, 1.0);
        }
        assert_eq!(rep.merged_records, 400);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_soak_is_deterministic() {
        let cfg = SoakConfig {
            clients: 3,
            records_per_client: 64,
            ..SoakConfig::default()
        };
        let d1 = tmpdir("det1");
        let d2 = tmpdir("det2");
        let r1 = run_soak(&d1, &cfg, &FaultPlan::clean(), None).unwrap();
        let r2 = run_soak(&d2, &cfg, &FaultPlan::clean(), None).unwrap();
        assert_eq!(r1.merged_digest, r2.merged_digest);
        assert_eq!(r1.ticks, r2.ticks);
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d2);
    }
}
