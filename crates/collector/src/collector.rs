//! The collector: one long-running process multiplexing many capture
//! sessions into per-session journaled spools.
//!
//! The collector is deliberately single-threaded and tick-driven: all
//! concurrency lives in the interleaving of client frames through the
//! bounded ingest queue, which makes every soak — including the ones
//! that kill the collector mid-segment — bit-for-bit reproducible.
//!
//! Durability contract: a record is *durable* once its segment seals,
//! at which point the sealed journal prefix is flushed to
//! `sessNNN.iotj` and the sealed count lands in `sessNNN.card`. A
//! collector kill loses at most the unsealed tail of each session, and
//! the torn journal left behind is exactly what
//! [`fsck_journal`] recovers. Stats fold incrementally as segments
//! seal, so `stats` and `hotspots` answers are available mid-capture
//! without re-reading any spool file.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use iotrace_analysis::hotspots::{top_by_bytes_interned, PathFold, PathStats};
use iotrace_analysis::stats::TraceStats;
use iotrace_model::intern::Interner;

use iotrace_model::journal::{fsck_journal, JournalWriter};

use crate::proto::{decode_frame, Frame, ProtoError};
use crate::queue::BoundedQueue;
use crate::session::{session_stem, HandoffRecv, Session, SessionState};

/// Tuning knobs for a collector instance.
#[derive(Clone, Copy, Debug)]
pub struct CollectorConfig {
    /// Records per sealed journal segment (the durability granularity).
    pub segment_records: usize,
    /// Ingest queue capacity in frames; a full queue refuses with `Busy`.
    pub queue_capacity: usize,
    /// Frames the collector drains per tick when healthy.
    pub drain_per_tick: usize,
    /// Spool new sessions as version-2 journals (IOT2 fixed-stride
    /// segment payloads). Off by default: v1 spools stay byte-identical
    /// to what older collectors wrote, and recovery handles either.
    pub v2_spool: bool,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            segment_records: 64,
            queue_capacity: 8,
            drain_per_tick: 4,
            v2_spool: false,
        }
    }
}

/// A point-in-time view of the incrementally folded statistics.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Records folded so far (== records sealed across all sessions).
    pub folded_records: u64,
    pub stats: TraceStats,
}

/// One row of the live session table.
#[derive(Clone, Debug)]
pub struct SessionRow {
    pub session: u32,
    pub state: SessionState,
    pub expected: u64,
    pub appended: u64,
    pub sealed: u64,
    pub completeness: f64,
}

/// The collector daemon state. Frames arrive via [`Collector::offer`]
/// (which refuses with `Busy` under backpressure) and are applied by
/// [`Collector::drain`]; replies accumulate in the outbox for the
/// harness to deliver.
pub struct Collector {
    dir: PathBuf,
    cfg: CollectorConfig,
    ingest: BoundedQueue<(u32, Vec<u8>)>,
    sessions: BTreeMap<u32, Session>,
    /// client id -> session id, for routing frames after `Hello`.
    client_session: BTreeMap<u32, u32>,
    next_session: u32,
    stats: TraceStats,
    paths: Interner,
    path_fold: PathFold,
    folded_records: u64,
    frames_drained: u64,
    outbox: Vec<(u32, Frame)>,
    killed: bool,
}

impl Collector {
    /// Open a collector over `dir`, creating it if needed. New session
    /// ids start past any `sessNNN.iotj` already in the spool, so a
    /// restarted collector never overwrites an orphaned journal.
    pub fn open(dir: &Path, cfg: CollectorConfig) -> Result<Self, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let mut next_session = 0u32;
        for entry in std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))? {
            let entry = entry.map_err(|e| e.to_string())?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(num) = name
                .strip_prefix("sess")
                .and_then(|r| r.strip_suffix(".iotj"))
            {
                if let Ok(id) = num.parse::<u32>() {
                    next_session = next_session.max(id + 1);
                }
            }
        }
        Ok(Collector {
            dir: dir.to_path_buf(),
            cfg,
            ingest: BoundedQueue::new(cfg.queue_capacity),
            sessions: BTreeMap::new(),
            client_session: BTreeMap::new(),
            next_session,
            stats: TraceStats::default(),
            paths: Interner::new(),
            path_fold: PathFold::default(),
            folded_records: 0,
            frames_drained: 0,
            outbox: Vec::new(),
            killed: false,
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// This collector's federation name: the spool directory's file
    /// name. Origin tags (`<name>/<stem>`) and the federation tables
    /// use it to say which collector a session lives on.
    pub fn name(&self) -> String {
        self.dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "collector".to_string())
    }

    /// Look up a session by id.
    pub fn session(&self, id: u32) -> Option<&Session> {
        self.sessions.get(&id)
    }

    pub fn config(&self) -> CollectorConfig {
        self.cfg
    }

    /// Offer one raw frame from `client`. `Ok` means the frame is
    /// queued and will be acknowledged; `Err` carries the `Busy`
    /// backpressure frame the client must honour with backoff.
    // The Err is always the two-word `Busy` variant; `Frame`'s size
    // comes from `Migrate`, which is never a refusal.
    #[allow(clippy::result_large_err)]
    pub fn offer(&mut self, client: u32, frame_bytes: Vec<u8>) -> Result<(), Frame> {
        if self.killed {
            return Err(Frame::Busy { queue_len: 0 });
        }
        let queue_len = self.ingest.len() as u32;
        self.ingest
            .push((client, frame_bytes))
            .map_err(|_| Frame::Busy { queue_len })
    }

    /// Drain up to `budget` queued frames. `kill_at` simulates the
    /// collector process dying the instant that many frames (counted
    /// over the collector's lifetime) have been applied: torn journals
    /// are flushed exactly as a real crash would leave them and the
    /// collector goes dead. Returns `true` if the kill fired.
    pub fn drain(&mut self, budget: usize, kill_at: Option<u64>) -> Result<bool, String> {
        for _ in 0..budget {
            if self.killed {
                return Ok(true);
            }
            if let Some(k) = kill_at {
                if self.frames_drained >= k {
                    self.kill()?;
                    return Ok(true);
                }
            }
            let Some((client, bytes)) = self.ingest.pop() else {
                return Ok(false);
            };
            self.frames_drained += 1;
            self.apply(client, &bytes)?;
        }
        Ok(false)
    }

    /// Frames applied over the collector's lifetime.
    pub fn frames_drained(&self) -> u64 {
        self.frames_drained
    }

    /// Replies owed to clients, in the order they were produced.
    pub fn take_outbox(&mut self) -> Vec<(u32, Frame)> {
        std::mem::take(&mut self.outbox)
    }

    pub fn queue(&self) -> &BoundedQueue<(u32, Vec<u8>)> {
        &self.ingest
    }

    pub fn is_killed(&self) -> bool {
        self.killed
    }

    fn apply(&mut self, client: u32, bytes: &[u8]) -> Result<(), String> {
        let meta = self
            .client_session
            .get(&client)
            .and_then(|sid| self.sessions.get(sid))
            .map(|s| s.meta.clone());
        match decode_frame(bytes, meta.as_ref()) {
            Ok(Frame::Hello {
                meta,
                expected_records,
            }) => {
                if self.client_session.contains_key(&client) {
                    return self.disconnect(client, "second Hello");
                }
                let id = self.next_session;
                self.next_session += 1;
                let mut sess = Session::new(
                    id,
                    meta,
                    expected_records,
                    self.cfg.segment_records,
                    self.cfg.v2_spool,
                );
                sess.state = SessionState::Streaming;
                // Persist the expectation *before* any record lands: the
                // card is what makes post-crash completeness exact.
                self.persist_card(&sess)?;
                self.persist_journal(&sess)?;
                self.sessions.insert(id, sess);
                self.client_session.insert(client, id);
                self.outbox.push((client, Frame::HelloAck { session: id }));
                Ok(())
            }
            Ok(Frame::Records { seq, records }) => {
                let Some(&sid) = self.client_session.get(&client) else {
                    return self.disconnect(client, "Records without session");
                };
                {
                    let sess = self.sessions.get_mut(&sid).expect("routed session exists");
                    if sess.state == SessionState::Draining {
                        // Mid-handoff: the session is sealed and on its
                        // way to the partner. Answer Busy — the client
                        // backs off and re-offers, by which time it has
                        // been rebound to the destination.
                        self.outbox.push((client, Frame::Busy { queue_len: 0 }));
                        return Ok(());
                    }
                    if sess.state != SessionState::Streaming || seq != sess.last_seq + 1 {
                        return self.disconnect(client, "out-of-order frame");
                    }
                    sess.last_seq = seq;
                    sess.appended += records.len() as u64;
                    sess.unfolded.extend_from_slice(&records);
                    sess.writer.append_all(&records);
                }
                let sealed = self.fold_sealed(sid)?;
                self.outbox.push((client, Frame::Ack { seq }));
                if let Some(records) = sealed {
                    self.outbox.push((client, Frame::Sealed { records }));
                }
                Ok(())
            }
            Ok(Frame::Bye { frames_sent }) => {
                let Some(&sid) = self.client_session.get(&client) else {
                    return self.disconnect(client, "Bye without session");
                };
                if self.sessions[&sid].state == SessionState::Draining {
                    self.outbox.push((client, Frame::Busy { queue_len: 0 }));
                    return Ok(());
                }
                let clean = {
                    let sess = self.sessions.get_mut(&sid).expect("routed session exists");
                    sess.state = SessionState::Sealing;
                    sess.writer.seal_segment();
                    frames_sent == sess.last_seq
                };
                self.fold_sealed(sid)?;
                let records = {
                    let sess = self.sessions.get_mut(&sid).expect("routed session exists");
                    let complete = sess.expected == 0 || sess.sealed() >= sess.expected;
                    sess.state = if clean && complete {
                        SessionState::Closed
                    } else {
                        SessionState::Degraded
                    };
                    sess.sealed()
                };
                let sess = &self.sessions[&sid];
                self.persist_journal(sess)?;
                self.persist_card(sess)?;
                self.client_session.remove(&client);
                self.outbox.push((client, Frame::ByeAck { records }));
                Ok(())
            }
            Ok(Frame::Migrate {
                origin_session,
                meta,
                expected,
                sealed_records,
                last_seq,
                chunks,
                origin,
            }) => {
                // Destination side of a handoff: open a stand-in session
                // that will receive the source's sealed spool in chunks.
                // Nothing hits disk until the first chunk lands — a kill
                // here leaves the destination spool untouched and the
                // source spool whole.
                let id = self.next_session;
                self.next_session += 1;
                let mut sess = Session::new(
                    id,
                    meta,
                    expected,
                    self.cfg.segment_records,
                    self.cfg.v2_spool,
                );
                sess.state = SessionState::Migrating;
                sess.last_seq = last_seq;
                sess.origin = Some(origin);
                sess.recv = Some(HandoffRecv {
                    buf: Vec::new(),
                    next_chunk: 1,
                    total_chunks: chunks,
                    promised: sealed_records,
                    records: 0,
                });
                self.sessions.insert(id, sess);
                self.outbox.push((
                    client,
                    Frame::MigrateAck {
                        session: id,
                        origin_session,
                    },
                ));
                Ok(())
            }
            Ok(Frame::Handoff {
                session,
                seq,
                bytes: chunk,
            }) => self.apply_handoff(client, session, seq, &chunk),
            // Replies are never client → collector.
            Ok(_) => self.disconnect(client, "unexpected reply frame"),
            // A tear or checksum failure is how a client death looks
            // from this side: seal what arrived, document the loss.
            Err(ProtoError::Truncated | ProtoError::BadCrc) => {
                self.disconnect(client, "torn frame")
            }
            Err(e) => self.disconnect(client, Box::leak(e.to_string().into_boxed_str())),
        }
    }

    /// Apply one handoff chunk to a `Migrating` stand-in session.
    /// Chunks ship along journal structure, so the accumulated buffer is
    /// a valid sealed journal after every chunk; it is persisted (with
    /// its card) before the ack goes out — the exactly-once durability
    /// the source relies on when it deletes its copy.
    fn apply_handoff(
        &mut self,
        client: u32,
        session: u32,
        seq: u64,
        chunk: &[u8],
    ) -> Result<(), String> {
        let Some(sess) = self.sessions.get_mut(&session) else {
            return self.disconnect(client, "Handoff for unknown session");
        };
        if sess.state != SessionState::Migrating {
            return self.disconnect(client, "Handoff outside migration");
        }
        let recv = sess.recv.as_mut().expect("migrating session has recv");
        if seq + 1 == recv.next_chunk {
            // Duplicate of the chunk we just persisted (retried offer):
            // re-ack, don't re-append.
            let records = recv.records;
            self.outbox.push((
                client,
                Frame::HandoffAck {
                    session,
                    seq,
                    records,
                },
            ));
            return Ok(());
        }
        if seq != recv.next_chunk {
            return Err(format!(
                "handoff chunk gap on session {session}: got {seq}, want {}",
                recv.next_chunk
            ));
        }
        recv.buf.extend_from_slice(chunk);
        recv.next_chunk += 1;
        let (trace, rep) = fsck_journal(&recv.buf)
            .map_err(|e| format!("handoff chunk {seq} is not a journal prefix: {e}"))?;
        if rep.is_damaged() || rep.torn_tail_bytes > 0 {
            return Err(format!(
                "handoff chunk {seq} left a damaged prefix on session {session}"
            ));
        }
        recv.records = rep.records_recovered as u64;
        let records = recv.records;
        let done = recv.next_chunk > recv.total_chunks;
        if done && records != recv.promised {
            return Err(format!(
                "handoff complete but {} records arrived, {} promised",
                records, recv.promised
            ));
        }
        // Persist the (always-valid) prefix before acking.
        let path = self.dir.join(format!("{}.iotj", session_stem(session)));
        std::fs::write(&path, &recv.buf).map_err(|e| format!("write {}: {e}", path.display()))?;
        if done {
            let buf = std::mem::take(&mut recv.buf);
            sess.writer = JournalWriter::resume(buf, self.cfg.segment_records)
                .map_err(|e| format!("resume migrated session {session}: {e:?}"))?;
            sess.appended = records;
            sess.folded = records;
            sess.recv = None;
            sess.state = SessionState::Streaming;
            // Fold the shipped records into this collector's live stats
            // so `stats`/`hotspots` cover the whole session from here on.
            self.stats.merge(&TraceStats::from_records(&trace.records));
            self.path_fold.fold(&trace.records, &mut self.paths);
            self.folded_records += records;
        }
        let sess = &self.sessions[&session];
        self.persist_card(sess)?;
        self.outbox.push((
            client,
            Frame::HandoffAck {
                session,
                seq,
                records,
            },
        ));
        Ok(())
    }

    /// Source side of a handoff: seal `client`'s live session, fold and
    /// persist the now-final spool, and put the session into `Draining`.
    /// Returns the session id and the complete sealed journal bytes for
    /// the migration driver to ship, or `None` when the client has no
    /// streaming session.
    pub fn begin_drain(&mut self, client: u32) -> Result<Option<(u32, Vec<u8>)>, String> {
        let Some(&sid) = self.client_session.get(&client) else {
            return Ok(None);
        };
        if self.sessions[&sid].state != SessionState::Streaming {
            return Ok(None);
        }
        self.sessions
            .get_mut(&sid)
            .expect("routed session exists")
            .writer
            .seal_segment();
        self.fold_sealed(sid)?;
        let sess = self.sessions.get_mut(&sid).expect("routed session exists");
        sess.state = SessionState::Draining;
        let bytes = sess.writer.sealed_bytes().to_vec();
        let sess = &self.sessions[&sid];
        self.persist_journal(sess)?;
        self.persist_card(sess)?;
        Ok(Some((sid, bytes)))
    }

    /// The handoff gave up (retries exhausted): put the `Draining`
    /// session back into `Streaming` so the client's backed-off frames
    /// land here again. The extra seal is harmless — the next segment
    /// simply starts early.
    pub fn abort_drain(&mut self, client: u32) -> Result<(), String> {
        let Some(&sid) = self.client_session.get(&client) else {
            return Ok(());
        };
        let sess = self.sessions.get_mut(&sid).expect("routed session exists");
        if sess.state == SessionState::Draining {
            sess.state = SessionState::Streaming;
            let sess = &self.sessions[&sid];
            self.persist_card(sess)?;
        }
        Ok(())
    }

    /// The destination acked the final chunk: the session now lives
    /// there. Drop it here and delete the local spool copy — the
    /// destination persisted its copy before acking, so exactly one
    /// durable copy exists at every instant of the handoff.
    pub fn complete_migration(&mut self, client: u32) -> Result<(), String> {
        let Some(sid) = self.client_session.remove(&client) else {
            return Ok(());
        };
        self.sessions.remove(&sid);
        let stem = session_stem(sid);
        for ext in ["iotj", "card"] {
            let path = self.dir.join(format!("{stem}.{ext}"));
            if path.exists() {
                std::fs::remove_file(&path)
                    .map_err(|e| format!("remove {}: {e}", path.display()))?;
            }
        }
        Ok(())
    }

    /// Destination-side cleanup when the source aborts a handoff:
    /// drop the partial stand-in session and its persisted prefix. The
    /// source still holds the complete spool, so nothing is lost.
    pub fn abort_migration(&mut self, session: u32) -> Result<(), String> {
        let Some(sess) = self.sessions.get(&session) else {
            return Ok(());
        };
        if sess.state != SessionState::Migrating {
            return Ok(());
        }
        self.sessions.remove(&session);
        let stem = session_stem(session);
        for ext in ["iotj", "card"] {
            let path = self.dir.join(format!("{stem}.{ext}"));
            if path.exists() {
                std::fs::remove_file(&path)
                    .map_err(|e| format!("remove {}: {e}", path.display()))?;
            }
        }
        Ok(())
    }

    /// Bind `client` to an adopted (migrated-in) session so its next
    /// frames route here — the destination half of the re-handshake.
    pub fn adopt_client(&mut self, client: u32, session: u32) {
        self.client_session.insert(client, session);
    }

    /// A client vanished (torn frame, protocol violation, or idle
    /// sweep): seal whatever arrived, mark the session `Degraded`
    /// (or `Closed` when everything expected had already landed), and
    /// persist both spool files.
    pub fn disconnect(&mut self, client: u32, _why: &str) -> Result<(), String> {
        let Some(sid) = self.client_session.remove(&client) else {
            return Ok(());
        };
        {
            let sess = self.sessions.get_mut(&sid).expect("routed session exists");
            sess.writer.seal_segment();
        }
        self.fold_sealed(sid)?;
        let sess = self.sessions.get_mut(&sid).expect("routed session exists");
        let complete = sess.expected > 0 && sess.sealed() >= sess.expected;
        sess.state = if complete {
            SessionState::Closed
        } else {
            SessionState::Degraded
        };
        let sess = &self.sessions[&sid];
        self.persist_journal(sess)?;
        self.persist_card(sess)?;
        Ok(())
    }

    /// Close every session whose client is in `dead` and still has a
    /// live session — the idle sweep a deployment would drive from a
    /// socket timeout.
    pub fn sweep_idle(&mut self, dead: &[u32]) -> Result<(), String> {
        for &client in dead {
            self.disconnect(client, "idle sweep")?;
        }
        Ok(())
    }

    /// Simulate the collector process dying right now: flush each live
    /// session's journal in its torn on-disk form (sealed prefix + the
    /// dangling tail a crash leaves) and stop accepting work. Cards are
    /// deliberately *not* rewritten — a crash doesn't get to tidy up.
    pub fn kill(&mut self) -> Result<(), String> {
        for sess in self.sessions.values() {
            // A Migrating stand-in's writer is a placeholder — its real
            // durable state is the handoff prefix already persisted per
            // chunk. Writing the placeholder's torn form would clobber
            // shipped data, so the crash leaves the prefix alone.
            if sess.state == SessionState::Migrating {
                continue;
            }
            if !sess.state.is_terminal() {
                let path = self.dir.join(format!("{}.iotj", session_stem(sess.id)));
                std::fs::write(&path, sess.writer.torn())
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
            }
        }
        self.killed = true;
        Ok(())
    }

    /// Fold any newly sealed records of session `sid` into the running
    /// stats and flush the sealed journal prefix. Returns the new
    /// durable watermark if it moved.
    fn fold_sealed(&mut self, sid: u32) -> Result<Option<u64>, String> {
        let (delta, watermark) = {
            let sess = self.sessions.get_mut(&sid).expect("session exists");
            let sealed = sess.sealed();
            let delta = (sealed - sess.folded) as usize;
            if delta == 0 {
                return Ok(None);
            }
            let batch: Vec<_> = sess.unfolded.drain(..delta).collect();
            sess.folded = sealed;
            (batch, sealed)
        };
        self.stats.merge(&TraceStats::from_records(&delta));
        self.path_fold.fold(&delta, &mut self.paths);
        self.folded_records += delta.len() as u64;
        let sess = &self.sessions[&sid];
        if !sess.state.is_terminal() {
            self.persist_journal(sess)?;
            self.persist_card(sess)?;
        }
        Ok(Some(watermark))
    }

    /// Flush the sealed journal prefix. While streaming this is the
    /// durable prefix a crash preserves; once a session seals its final
    /// segment the same bytes *are* the finished, strictly readable
    /// journal.
    fn persist_journal(&self, sess: &Session) -> Result<(), String> {
        let path = self.dir.join(format!("{}.iotj", session_stem(sess.id)));
        std::fs::write(&path, sess.writer.sealed_bytes())
            .map_err(|e| format!("write {}: {e}", path.display()))
    }

    fn persist_card(&self, sess: &Session) -> Result<(), String> {
        let path = self.dir.join(format!("{}.card", session_stem(sess.id)));
        std::fs::write(&path, format!("{}\n", sess.card().to_line()))
            .map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// The incrementally folded stats — valid mid-capture, covering
    /// exactly the sealed (durable) records.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            folded_records: self.folded_records,
            stats: self.stats.clone(),
        }
    }

    /// Top-`n` hotspot paths by bytes over the sealed records, resolved
    /// to owned strings.
    pub fn hotspots(&self, n: usize) -> Vec<(String, PathStats)> {
        top_by_bytes_interned(&self.path_fold.stats, &self.paths, n)
            .into_iter()
            .map(|(sym, s)| (self.paths.resolve(sym).to_string(), s))
            .collect()
    }

    /// The live session table, ascending by session id.
    pub fn session_rows(&self) -> Vec<SessionRow> {
        self.sessions
            .values()
            .map(|s| SessionRow {
                session: s.id,
                state: s.state,
                expected: s.expected,
                appended: s.appended,
                sealed: s.durable(),
                completeness: s.completeness(),
            })
            .collect()
    }

    /// Look up the session currently bound to `client`.
    pub fn session_of(&self, client: u32) -> Option<&Session> {
        self.client_session
            .get(&client)
            .and_then(|sid| self.sessions.get(sid))
    }

    /// True when every session reached a terminal state.
    pub fn all_terminal(&self) -> bool {
        self.sessions.values().all(|s| s.state.is_terminal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::encode_frame;
    use iotrace_model::event::{IoCall, TraceMeta, TraceRecord};
    use iotrace_sim::time::{SimDur, SimTime};

    fn recs(n: usize) -> Vec<TraceRecord> {
        (0..n as u64)
            .map(|i| TraceRecord {
                ts: SimTime::from_micros(i * 3),
                dur: SimDur::from_micros(1),
                rank: 0,
                node: 0,
                pid: 10,
                uid: 0,
                gid: 0,
                call: IoCall::Write { fd: 3, len: 64 },
                result: 64,
            })
            .collect()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("iotrace-collector-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn happy_path_session_closes_clean() {
        let dir = tmpdir("happy");
        let mut c = Collector::open(
            &dir,
            CollectorConfig {
                segment_records: 4,
                queue_capacity: 4,
                drain_per_tick: 8,
                ..CollectorConfig::default()
            },
        )
        .unwrap();
        let meta = TraceMeta::new("/app", 0, 0, "sim");
        c.offer(
            7,
            encode_frame(&Frame::Hello {
                meta,
                expected_records: 10,
            }),
        )
        .unwrap();
        c.drain(8, None).unwrap();
        assert!(matches!(
            c.take_outbox().as_slice(),
            [(7, Frame::HelloAck { .. })]
        ));
        let all = recs(10);
        for (i, chunk) in all.chunks(5).enumerate() {
            c.offer(
                7,
                encode_frame(&Frame::Records {
                    seq: i as u64 + 1,
                    records: chunk.to_vec(),
                }),
            )
            .unwrap();
        }
        c.offer(7, encode_frame(&Frame::Bye { frames_sent: 2 }))
            .unwrap();
        c.drain(8, None).unwrap();
        let rows = c.session_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].state, SessionState::Closed);
        assert_eq!(rows[0].sealed, 10);
        assert_eq!(rows[0].completeness, 1.0);
        assert_eq!(c.snapshot().folded_records, 10);
        assert_eq!(c.snapshot().stats.bytes_written, 640);
        // the spool holds a clean, strictly readable journal
        let bytes = std::fs::read(dir.join("sess000.iotj")).unwrap();
        let t = iotrace_model::journal::read_journal(&bytes).unwrap();
        assert_eq!(t.records, all);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backpressure_refuses_with_busy_and_keeps_accepted_frames() {
        let dir = tmpdir("busy");
        let mut c = Collector::open(
            &dir,
            CollectorConfig {
                segment_records: 4,
                queue_capacity: 2,
                drain_per_tick: 1,
                ..CollectorConfig::default()
            },
        )
        .unwrap();
        assert!(c.offer(1, vec![1]).is_ok());
        assert!(c.offer(2, vec![2]).is_ok());
        match c.offer(3, vec![3]) {
            Err(Frame::Busy { queue_len }) => assert_eq!(queue_len, 2),
            other => panic!("expected Busy, got {other:?}"),
        }
        assert_eq!(c.queue().refused(), 1);
        assert_eq!(c.queue().high_watermark(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_leaves_torn_journal_and_streaming_card() {
        let dir = tmpdir("kill");
        let mut c = Collector::open(
            &dir,
            CollectorConfig {
                segment_records: 4,
                queue_capacity: 8,
                drain_per_tick: 16,
                ..CollectorConfig::default()
            },
        )
        .unwrap();
        let meta = TraceMeta::new("/app", 0, 0, "sim");
        c.offer(
            1,
            encode_frame(&Frame::Hello {
                meta,
                expected_records: 12,
            }),
        )
        .unwrap();
        let all = recs(12);
        for (i, chunk) in all.chunks(6).enumerate() {
            c.offer(
                1,
                encode_frame(&Frame::Records {
                    seq: i as u64 + 1,
                    records: chunk.to_vec(),
                }),
            )
            .unwrap();
        }
        // apply Hello + first Records frame, then die
        let killed = c.drain(16, Some(2)).unwrap();
        assert!(killed && c.is_killed());
        // offers after death are refused
        assert!(c.offer(1, vec![0]).is_err());
        let bytes = std::fs::read(dir.join("sess000.iotj")).unwrap();
        assert!(iotrace_model::journal::read_journal(&bytes).is_err());
        let (t, rep) = iotrace_model::journal::fsck_journal(&bytes).unwrap();
        // one full segment (4 records) sealed out of the 6 appended
        assert_eq!(rep.records_recovered, 4);
        assert!(rep.torn_tail_bytes > 0);
        assert_eq!(t.records, all[..4]);
        let card = std::fs::read_to_string(dir.join("sess000.card")).unwrap();
        let card = crate::session::SessionCard::parse_line(card.trim()).unwrap();
        assert_eq!(card.expected, 12);
        assert_eq!(card.state, SessionState::Streaming);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_spool_writes_v2_journals_and_recovery_preserves_version() {
        let dir = tmpdir("v2spool");
        let mut c = Collector::open(
            &dir,
            CollectorConfig {
                segment_records: 4,
                queue_capacity: 8,
                drain_per_tick: 16,
                v2_spool: true,
            },
        )
        .unwrap();
        let meta = TraceMeta::new("/app", 0, 0, "sim");
        c.offer(
            1,
            encode_frame(&Frame::Hello {
                meta,
                expected_records: 12,
            }),
        )
        .unwrap();
        let all = recs(12);
        for (i, chunk) in all.chunks(6).enumerate() {
            c.offer(
                1,
                encode_frame(&Frame::Records {
                    seq: i as u64 + 1,
                    records: chunk.to_vec(),
                }),
            )
            .unwrap();
        }
        // die after Hello + one Records frame: a torn v2 journal remains
        let killed = c.drain(16, Some(2)).unwrap();
        assert!(killed);
        let path = dir.join("sess000.iotj");
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(iotrace_model::journal::journal_version(&bytes), Some(2));
        let (t, rep) = iotrace_model::journal::fsck_journal(&bytes).unwrap();
        assert_eq!(rep.records_recovered, 4);
        assert_eq!(t.records, all[..4]);
        // restart recovery rewrites the orphan *still as v2*
        let rep = crate::recovery::recover_spool(&dir, 4).unwrap();
        assert_eq!(rep.orphans(), 1);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(iotrace_model::journal::journal_version(&bytes), Some(2));
        let t = iotrace_model::journal::read_journal(&bytes).unwrap();
        assert_eq!(t.records, all[..4]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn new_session_ids_start_past_existing_spool_files() {
        let dir = tmpdir("ids");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("sess004.iotj"), b"x").unwrap();
        let mut c = Collector::open(&dir, CollectorConfig::default()).unwrap();
        let meta = TraceMeta::new("/app", 0, 0, "sim");
        c.offer(
            1,
            encode_frame(&Frame::Hello {
                meta,
                expected_records: 0,
            }),
        )
        .unwrap();
        c.drain(1, None).unwrap();
        assert!(matches!(
            c.take_outbox().as_slice(),
            [(1, Frame::HelloAck { session: 5 })]
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
