//! Per-session state: the lifecycle machine, the journal spool, and the
//! crash-survivable session card.
//!
//! A session moves through an explicit state machine:
//!
//! ```text
//! HANDSHAKE ──Hello──▶ STREAMING ──Bye──▶ SEALING ──▶ CLOSED
//!                          │                            (complete)
//!                          │ torn frame / early Bye /
//!                          │ idle sweep        └──────▶ DEGRADED
//!                          ▼                            (documented loss)
//!            (collector killed; journal torn on disk)
//!                      ORPHANED ──restart fsck──▶ DEGRADED | CLOSED
//!
//! federation handoff (see crate::federation):
//!   STREAMING ──Migrate──▶ DRAINING ──handoff done──▶ (moves away)
//!   (peer)                 MIGRATING ──final Handoff──▶ STREAMING
//! ```
//!
//! Two artifacts per session live in the spool directory: the IOTJ
//! journal (`sessNNN.iotj`, sealed segments only are durable) and the
//! *card* (`sessNNN.card`) — a one-line sidecar written at handshake,
//! before any record lands, recording how many records the client
//! intends to stream. The card is what makes post-crash completeness
//! *exact*: recovery divides recovered records by the card's
//! expectation instead of guessing from the tear.

use iotrace_model::event::TraceMeta;
use iotrace_model::journal::JournalWriter;

/// Where a session is in its life. `Display` renders the lowercase
/// names used in cards and summary tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// `Hello` seen, `HelloAck` owed.
    Handshake,
    /// Records flowing.
    Streaming,
    /// `Bye` received; pending records being sealed.
    Sealing,
    /// Cleanly closed, all expected records durable.
    Closed,
    /// Closed with documented loss (torn frame, early close, or crash
    /// recovery) — `completeness < 1.0` says exactly how much.
    Degraded,
    /// Found abandoned in the spool at startup: the collector died while
    /// this session streamed. Transient — recovery turns it into
    /// `Closed` or `Degraded`.
    Orphaned,
    /// (source side) Sealed and being shipped to the federation partner.
    /// Record frames arriving meanwhile get `Busy` — the client backs
    /// off and re-offers, by which time the session lives elsewhere.
    Draining,
    /// (destination side) A handoff stand-in receiving sealed chunks
    /// from the partner. Becomes `Streaming` when the final chunk lands
    /// and its record count checks out.
    Migrating,
}

impl SessionState {
    pub fn is_terminal(self) -> bool {
        matches!(self, SessionState::Closed | SessionState::Degraded)
    }
}

impl std::fmt::Display for SessionState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SessionState::Handshake => "handshake",
            SessionState::Streaming => "streaming",
            SessionState::Sealing => "sealing",
            SessionState::Closed => "closed",
            SessionState::Degraded => "degraded",
            SessionState::Orphaned => "orphaned",
            SessionState::Draining => "draining",
            SessionState::Migrating => "migrating",
        })
    }
}

/// Parse a state name as rendered by `Display`.
pub fn parse_state(s: &str) -> Option<SessionState> {
    Some(match s {
        "handshake" => SessionState::Handshake,
        "streaming" => SessionState::Streaming,
        "sealing" => SessionState::Sealing,
        "closed" => SessionState::Closed,
        "degraded" => SessionState::Degraded,
        "orphaned" => SessionState::Orphaned,
        "draining" => SessionState::Draining,
        "migrating" => SessionState::Migrating,
        _ => return None,
    })
}

/// The crash-survivable sidecar: one line, written at handshake and
/// rewritten on every state transition that must outlive the process.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionCard {
    pub session: u32,
    /// Records the client declared it would stream (0 = unknown).
    pub expected: u64,
    pub state: SessionState,
    /// Durable records at the time the card was written (only current
    /// for terminal states; a `streaming` card's count is a floor).
    pub records: u64,
    /// Completeness stamped at close/recovery; 1.0 while streaming.
    pub completeness: f64,
    /// Set on a migrated-in session: `<collector>/<stem>` naming the
    /// source spool copy. Federated recovery uses it to reunite a
    /// session split across two spool directories.
    pub origin: Option<String>,
}

impl SessionCard {
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "session={} expected={} state={} records={} completeness={:.6}",
            self.session, self.expected, self.state, self.records, self.completeness
        );
        if let Some(origin) = &self.origin {
            line.push_str(&format!(" origin={origin}"));
        }
        line
    }

    pub fn parse_line(s: &str) -> Option<SessionCard> {
        let mut session = None;
        let mut expected = None;
        let mut state = None;
        let mut records = None;
        let mut completeness = None;
        let mut origin = None;
        for part in s.split_whitespace() {
            let (k, v) = part.split_once('=')?;
            match k {
                "session" => session = v.parse().ok(),
                "expected" => expected = v.parse().ok(),
                "state" => state = parse_state(v),
                "records" => records = v.parse().ok(),
                "completeness" => completeness = v.parse().ok(),
                "origin" => origin = Some(v.to_string()),
                _ => return None,
            }
        }
        Some(SessionCard {
            session: session?,
            expected: expected?,
            state: state?,
            records: records?,
            completeness: completeness?,
            origin,
        })
    }
}

/// The spool file stem for session `id`: `sess007` → `sess007.iotj` +
/// `sess007.card`.
pub fn session_stem(id: u32) -> String {
    format!("sess{id:03}")
}

/// One live session inside the collector.
pub struct Session {
    pub id: u32,
    pub meta: TraceMeta,
    pub expected: u64,
    pub state: SessionState,
    pub writer: JournalWriter,
    /// Records appended (acked) so far.
    pub appended: u64,
    /// Highest `Records.seq` applied; frames must arrive in order.
    pub last_seq: u64,
    /// Appended records not yet folded into the incremental stats —
    /// drained as their segments seal.
    pub unfolded: Vec<iotrace_model::event::TraceRecord>,
    /// Records already folded (== sealed records already durable).
    pub folded: u64,
    /// Set on a migrated-in session: where the source copy lives
    /// (`<collector>/<stem>`), persisted into the card.
    pub origin: Option<String>,
    /// Handoff receive state, present only while `Migrating`.
    pub recv: Option<HandoffRecv>,
}

/// Destination-side handoff accumulator: the chunk bytes received so
/// far. Because chunks arrive along journal structure (header, then one
/// sealed segment each), `buf` is a valid journal after every chunk —
/// it is persisted verbatim, so a kill between chunks tears nothing.
pub struct HandoffRecv {
    /// Concatenated chunk bytes: always a sealed, fsck-clean journal.
    pub buf: Vec<u8>,
    /// Next chunk seq expected (1-based; 1 is the header chunk).
    pub next_chunk: u64,
    /// Total chunks the source announced.
    pub total_chunks: u64,
    /// Sealed record count the source promised for the full spool.
    pub promised: u64,
    /// Records recovered from `buf` after the latest chunk.
    pub records: u64,
}

impl Session {
    /// `v2_spool` selects the journal container version for this
    /// session's spool file: `false` writes classic v1 varint segments,
    /// `true` writes v2 (IOT2 fixed-stride frame payloads).
    pub fn new(
        id: u32,
        meta: TraceMeta,
        expected: u64,
        segment_records: usize,
        v2_spool: bool,
    ) -> Self {
        let writer = if v2_spool {
            JournalWriter::new_v2(&meta, segment_records)
        } else {
            JournalWriter::new(&meta, segment_records)
        };
        Session {
            id,
            meta,
            expected,
            state: SessionState::Handshake,
            writer,
            appended: 0,
            last_seq: 0,
            unfolded: Vec::new(),
            folded: 0,
            origin: None,
            recv: None,
        }
    }

    /// Durable (sealed) record count.
    pub fn sealed(&self) -> u64 {
        self.writer.sealed_records() as u64
    }

    /// Durable record count for the card: while `Migrating` the writer
    /// is a placeholder and durability is what the handoff buffer holds;
    /// otherwise it is the writer's sealed watermark.
    pub fn durable(&self) -> u64 {
        match (&self.state, &self.recv) {
            (SessionState::Migrating, Some(recv)) => recv.records,
            _ => self.sealed(),
        }
    }

    /// The card describing this session's current persistent state.
    pub fn card(&self) -> SessionCard {
        SessionCard {
            session: self.id,
            expected: self.expected,
            state: self.state,
            records: self.durable(),
            completeness: self.completeness(),
            origin: self.origin.clone(),
        }
    }

    /// Completeness against the declared expectation: exact when the
    /// client declared one, 1.0 while nothing says otherwise.
    pub fn completeness(&self) -> f64 {
        if self.expected == 0 {
            return 1.0;
        }
        (self.durable() as f64 / self.expected as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn card_line_roundtrips() {
        let c = SessionCard {
            session: 12,
            expected: 4096,
            state: SessionState::Degraded,
            records: 1024,
            completeness: 0.25,
            origin: None,
        };
        assert_eq!(SessionCard::parse_line(&c.to_line()), Some(c));
        assert_eq!(SessionCard::parse_line("session=1 bogus"), None);
        assert_eq!(
            SessionCard::parse_line("session=1 expected=2 state=warp records=0 completeness=1"),
            None
        );
    }

    #[test]
    fn card_origin_roundtrips_and_old_cards_still_parse() {
        let c = SessionCard {
            session: 3,
            expected: 96,
            state: SessionState::Migrating,
            records: 64,
            completeness: 0.666667,
            origin: Some("a/sess001".to_string()),
        };
        let line = c.to_line();
        assert!(line.ends_with("origin=a/sess001"));
        assert_eq!(SessionCard::parse_line(&line), Some(c));
        // A pre-federation card (no origin key) parses with origin=None.
        let old = SessionCard::parse_line(
            "session=1 expected=2 state=closed records=2 completeness=1.000000",
        )
        .expect("old card parses");
        assert_eq!(old.origin, None);
    }

    #[test]
    fn states_render_and_parse() {
        for s in [
            SessionState::Handshake,
            SessionState::Streaming,
            SessionState::Sealing,
            SessionState::Closed,
            SessionState::Degraded,
            SessionState::Orphaned,
            SessionState::Draining,
            SessionState::Migrating,
        ] {
            assert_eq!(parse_state(&s.to_string()), Some(s));
        }
        assert!(SessionState::Closed.is_terminal());
        assert!(SessionState::Degraded.is_terminal());
        assert!(!SessionState::Streaming.is_terminal());
        assert!(!SessionState::Draining.is_terminal(), "drain is transient");
        assert!(!SessionState::Migrating.is_terminal());
    }

    #[test]
    fn completeness_tracks_sealed_over_expected() {
        let meta = TraceMeta::new("/a", 0, 0, "t");
        let s = Session::new(1, meta, 100, 8, false);
        assert_eq!(s.completeness(), 0.0);
        let meta2 = TraceMeta::new("/a", 0, 0, "t");
        let s2 = Session::new(2, meta2, 0, 8, true);
        assert_eq!(s2.completeness(), 1.0, "unknown expectation claims 1.0");
        assert_eq!(s.writer.version(), 1);
        assert_eq!(s2.writer.version(), 2);
    }
}
