//! `iotrace-collector` — the fault-tolerant trace-collector daemon.
//!
//! The taxonomy paper's survivability axis asks what happens to a
//! tracing framework when the thing *recording* the trace dies. This
//! crate answers with a collector that multiplexes many concurrent
//! capture sessions, each with an explicit lifecycle state machine
//! ([`session::SessionState`]), over a CRC-framed protocol
//! ([`proto`]); spools every session into the crash-consistent IOTJ
//! journal format; applies backpressure through a bounded ingest queue
//! ([`queue::BoundedQueue`]) that clients answer with exponential
//! backoff and seeded jitter; folds statistics incrementally as
//! segments seal so `stats`/`hotspots` are queryable mid-capture; and
//! recovers orphaned sessions after a kill with *exact* completeness
//! accounting ([`recovery`]).
//!
//! Everything is deterministic: the soak harness ([`soak`]) drives N
//! simulated clients and one collector on a shared tick clock under a
//! seeded [`iotrace_sim::fault::FaultPlan`], so a kill-at-any-point
//! sweep is just a loop, and two independent recoveries of the same
//! torn spool must produce byte-identical output.
//!
//! Collectors also *federate* ([`federation`]): a live session can be
//! drained off one collector and re-handshaken onto another mid-stream
//! ([`migrate`]), with the handoff chunked along sealed-segment
//! boundaries so a kill of either collector at any frame leaves a
//! recoverable federation — [`federation::recover_spools`] reunites a
//! session split across two spool directories and stamps the same
//! exact completeness a single-collector recovery would.

pub mod client;
pub mod collector;
pub mod federation;
pub mod migrate;
pub mod proto;
pub mod queue;
pub mod recovery;
pub mod session;
pub mod soak;

pub use collector::{Collector, CollectorConfig};
pub use federation::{
    federation_sessions, federation_spools, federation_stats, recover_federation, recover_spools,
    render_federation_sessions, run_federation, FederationConfig, FederationOutcome,
    FederationRecovery, FederationReport, FederationSessionRow, MigrationOutcome,
};
pub use migrate::{peer_id, HandoffAborted, Migration, PEER_CLIENT_BASE};
pub use proto::{decode_frame, encode_frame, Frame, ProtoError};
pub use queue::BoundedQueue;
pub use recovery::{needs_recovery, recover_spool, RecoveryReport};
pub use session::{SessionCard, SessionState};
pub use soak::{run_soak, SoakConfig, SoakOutcome, SoakReport};
