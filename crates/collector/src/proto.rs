//! The collector's framed session protocol.
//!
//! Clients and the collector exchange *frames* over a byte channel —
//! in-process in this workbench, a Unix socket in a deployment; the
//! framing is transport-agnostic. Every frame is length-prefixed and
//! CRC-sealed, so a connection that dies mid-frame leaves a tear the
//! receiver can prove rather than silently mis-parse:
//!
//! ```text
//! varint len | crc32 LE over payload | payload: tag u8 + fields
//! ```
//!
//! `Hello` carries the session's [`TraceMeta`] in the exact field layout
//! of the IOTJ journal header ([`iotrace_model::journal::put_meta`]),
//! and `Records` payloads reuse the sealed-segment record encoding
//! (timestamp deltas reset per frame) — the wire format and the at-rest
//! format share one codec, so a frame that decodes is a segment that
//! seals.
//!
//! Acknowledgement discipline: `Ack { seq }` means the frame's records
//! were *appended* to the session's journal writer (flow control);
//! `Sealed { records }` advertises the durable watermark — records at
//! or below it survive a collector kill. `Busy` is the explicit
//! backpressure signal: the bounded ingest queue refused the frame and
//! the client must retry later (exponential backoff + seeded jitter).

use iotrace_model::crc::crc32;
use iotrace_model::event::{TraceMeta, TraceRecord};
use iotrace_model::journal::{decode_segment_payload, encode_segment_payload, get_meta, put_meta};
use iotrace_model::varint::{put_u64, Cursor};

/// One protocol message. Client → collector: `Hello`, `Records`, `Bye`.
/// Collector → client: `HelloAck`, `Ack`, `Sealed`, `Busy`, `ByeAck`.
/// Collector ↔ collector (federation handoff): `Migrate`, `MigrateAck`,
/// `Handoff`, `HandoffAck`.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Open a session: the trace metadata plus how many records the
    /// client intends to stream (0 when unknown). The expectation is
    /// persisted before any record lands, so crash recovery can stamp
    /// exact completeness.
    Hello {
        meta: TraceMeta,
        expected_records: u64,
    },
    /// A batch of records. `seq` starts at 1 and increments per frame.
    Records { seq: u64, records: Vec<TraceRecord> },
    /// Clean close: `frames_sent` lets the collector cross-check that
    /// nothing was lost in transit.
    Bye { frames_sent: u64 },
    /// The session is open under this id.
    HelloAck { session: u32 },
    /// Frame `seq` was appended to the session journal.
    Ack { seq: u64 },
    /// Durable watermark: this many records are sealed on disk.
    Sealed { records: u64 },
    /// Backpressure: the ingest queue is full (`queue_len` deep). Retry
    /// with backoff.
    Busy { queue_len: u32 },
    /// Clean close acknowledged; the final durable record count.
    ByeAck { records: u64 },
    /// Source collector → destination collector: announce a session
    /// handoff. Carries everything the destination needs to open a
    /// stand-in session before a single byte of journal ships: the
    /// session's metadata and expectation (as in `Hello`), the sealed
    /// durable watermark, the last applied client frame seq (so record
    /// flow resumes without a seq gap), the number of `Handoff` chunks
    /// that will follow, and the origin tag `<collector>/<stem>` that
    /// federated recovery uses to reunite a split spool.
    Migrate {
        origin_session: u32,
        meta: TraceMeta,
        expected: u64,
        sealed_records: u64,
        last_seq: u64,
        chunks: u64,
        origin: String,
    },
    /// Destination → source: the stand-in session is open under
    /// `session`; `origin_session` echoes the announcement so the source
    /// can pair acks with in-flight migrations.
    MigrateAck { session: u32, origin_session: u32 },
    /// One chunk of the sealed spool, shipped along journal structure:
    /// chunk seq 1 is the IOTJ header, every later chunk one sealed
    /// segment — so each persisted chunk prefix is itself a valid,
    /// fsck-recoverable journal and a kill between chunks tears nothing.
    Handoff {
        session: u32,
        seq: u64,
        bytes: Vec<u8>,
    },
    /// Destination → source: chunk `seq` is persisted; `records` is the
    /// destination's cumulative durable record count for the session.
    HandoffAck {
        session: u32,
        seq: u64,
        records: u64,
    },
}

/// A frame failed to decode. `Truncated`/`BadCrc` are what a connection
/// death mid-frame looks like from the receiving end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    Truncated,
    BadCrc,
    UnknownTag(u8),
    Malformed(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame truncated (connection died mid-frame?)"),
            ProtoError::BadCrc => write!(f, "frame payload fails its checksum"),
            ProtoError::UnknownTag(t) => write!(f, "unknown frame tag {t}"),
            ProtoError::Malformed(what) => write!(f, "malformed {what} frame"),
        }
    }
}
impl std::error::Error for ProtoError {}

const TAG_HELLO: u8 = 1;
const TAG_RECORDS: u8 = 2;
const TAG_BYE: u8 = 3;
const TAG_HELLO_ACK: u8 = 4;
const TAG_ACK: u8 = 5;
const TAG_SEALED: u8 = 6;
const TAG_BUSY: u8 = 7;
const TAG_BYE_ACK: u8 = 8;
const TAG_MIGRATE: u8 = 9;
const TAG_MIGRATE_ACK: u8 = 10;
const TAG_HANDOFF: u8 = 11;
const TAG_HANDOFF_ACK: u8 = 12;

/// Encode one frame to its wire bytes.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    match frame {
        Frame::Hello {
            meta,
            expected_records,
        } => {
            payload.push(TAG_HELLO);
            put_u64(&mut payload, *expected_records);
            put_meta(&mut payload, meta);
        }
        Frame::Records { seq, records } => {
            payload.push(TAG_RECORDS);
            put_u64(&mut payload, *seq);
            put_u64(&mut payload, records.len() as u64);
            payload.extend_from_slice(&encode_segment_payload(records));
        }
        Frame::Bye { frames_sent } => {
            payload.push(TAG_BYE);
            put_u64(&mut payload, *frames_sent);
        }
        Frame::HelloAck { session } => {
            payload.push(TAG_HELLO_ACK);
            put_u64(&mut payload, u64::from(*session));
        }
        Frame::Ack { seq } => {
            payload.push(TAG_ACK);
            put_u64(&mut payload, *seq);
        }
        Frame::Sealed { records } => {
            payload.push(TAG_SEALED);
            put_u64(&mut payload, *records);
        }
        Frame::Busy { queue_len } => {
            payload.push(TAG_BUSY);
            put_u64(&mut payload, u64::from(*queue_len));
        }
        Frame::ByeAck { records } => {
            payload.push(TAG_BYE_ACK);
            put_u64(&mut payload, *records);
        }
        Frame::Migrate {
            origin_session,
            meta,
            expected,
            sealed_records,
            last_seq,
            chunks,
            origin,
        } => {
            payload.push(TAG_MIGRATE);
            put_u64(&mut payload, u64::from(*origin_session));
            put_u64(&mut payload, *expected);
            put_u64(&mut payload, *sealed_records);
            put_u64(&mut payload, *last_seq);
            put_u64(&mut payload, *chunks);
            put_u64(&mut payload, origin.len() as u64);
            payload.extend_from_slice(origin.as_bytes());
            put_meta(&mut payload, meta);
        }
        Frame::MigrateAck {
            session,
            origin_session,
        } => {
            payload.push(TAG_MIGRATE_ACK);
            put_u64(&mut payload, u64::from(*session));
            put_u64(&mut payload, u64::from(*origin_session));
        }
        Frame::Handoff {
            session,
            seq,
            bytes,
        } => {
            payload.push(TAG_HANDOFF);
            put_u64(&mut payload, u64::from(*session));
            put_u64(&mut payload, *seq);
            put_u64(&mut payload, bytes.len() as u64);
            payload.extend_from_slice(bytes);
        }
        Frame::HandoffAck {
            session,
            seq,
            records,
        } => {
            payload.push(TAG_HANDOFF_ACK);
            put_u64(&mut payload, u64::from(*session));
            put_u64(&mut payload, *seq);
            put_u64(&mut payload, *records);
        }
    }
    let mut out = Vec::with_capacity(payload.len() + 12);
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode one frame. `meta` supplies rank/node for `Records` payloads
/// (the session's metadata from its `Hello`); a `Records` frame without
/// it is malformed — the protocol requires `Hello` first.
pub fn decode_frame(bytes: &[u8], meta: Option<&TraceMeta>) -> Result<Frame, ProtoError> {
    let mut c = Cursor::new(bytes);
    let len = c.get_u64().map_err(|_| ProtoError::Truncated)? as usize;
    let stored = c.take(4).map_err(|_| ProtoError::Truncated)?;
    let stored = u32::from_le_bytes([stored[0], stored[1], stored[2], stored[3]]);
    let payload = c.take(len).map_err(|_| ProtoError::Truncated)?;
    if !c.is_empty() {
        return Err(ProtoError::Malformed("over-long"));
    }
    if crc32(payload) != stored {
        return Err(ProtoError::BadCrc);
    }
    let mut p = Cursor::new(payload);
    let tag = p.take(1).map_err(|_| ProtoError::Truncated)?[0];
    let u = |p: &mut Cursor<'_>| p.get_u64().map_err(|_| ProtoError::Truncated);
    match tag {
        TAG_HELLO => {
            let expected_records = u(&mut p)?;
            let meta = get_meta(&mut p).map_err(|_| ProtoError::Malformed("Hello"))?;
            Ok(Frame::Hello {
                meta,
                expected_records,
            })
        }
        TAG_RECORDS => {
            let seq = u(&mut p)?;
            let promised = u(&mut p)? as usize;
            let meta = meta.ok_or(ProtoError::Malformed("Records-before-Hello"))?;
            let n = p.remaining();
            let rest = p.take(n).map_err(|_| ProtoError::Truncated)?;
            let records =
                decode_segment_payload(rest, meta).map_err(|_| ProtoError::Malformed("Records"))?;
            if records.len() != promised {
                return Err(ProtoError::Malformed("Records-count"));
            }
            Ok(Frame::Records { seq, records })
        }
        TAG_BYE => Ok(Frame::Bye {
            frames_sent: u(&mut p)?,
        }),
        TAG_HELLO_ACK => Ok(Frame::HelloAck {
            session: u(&mut p)? as u32,
        }),
        TAG_ACK => Ok(Frame::Ack { seq: u(&mut p)? }),
        TAG_SEALED => Ok(Frame::Sealed {
            records: u(&mut p)?,
        }),
        TAG_BUSY => Ok(Frame::Busy {
            queue_len: u(&mut p)? as u32,
        }),
        TAG_BYE_ACK => Ok(Frame::ByeAck {
            records: u(&mut p)?,
        }),
        TAG_MIGRATE => {
            let origin_session = u(&mut p)? as u32;
            let expected = u(&mut p)?;
            let sealed_records = u(&mut p)?;
            let last_seq = u(&mut p)?;
            let chunks = u(&mut p)?;
            let olen = u(&mut p)? as usize;
            let obytes = p.take(olen).map_err(|_| ProtoError::Truncated)?;
            let origin = std::str::from_utf8(obytes)
                .map_err(|_| ProtoError::Malformed("Migrate-origin"))?
                .to_string();
            let meta = get_meta(&mut p).map_err(|_| ProtoError::Malformed("Migrate"))?;
            Ok(Frame::Migrate {
                origin_session,
                meta,
                expected,
                sealed_records,
                last_seq,
                chunks,
                origin,
            })
        }
        TAG_MIGRATE_ACK => Ok(Frame::MigrateAck {
            session: u(&mut p)? as u32,
            origin_session: u(&mut p)? as u32,
        }),
        TAG_HANDOFF => {
            let session = u(&mut p)? as u32;
            let seq = u(&mut p)?;
            let blen = u(&mut p)? as usize;
            let bytes = p.take(blen).map_err(|_| ProtoError::Truncated)?.to_vec();
            Ok(Frame::Handoff {
                session,
                seq,
                bytes,
            })
        }
        TAG_HANDOFF_ACK => Ok(Frame::HandoffAck {
            session: u(&mut p)? as u32,
            seq: u(&mut p)?,
            records: u(&mut p)?,
        }),
        t => Err(ProtoError::UnknownTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace_model::event::IoCall;
    use iotrace_sim::time::{SimDur, SimTime};

    fn sample_records(n: usize) -> Vec<TraceRecord> {
        (0..n as u64)
            .map(|i| TraceRecord {
                ts: SimTime::from_micros(100 + i * 7),
                dur: SimDur::from_micros(2),
                rank: 3,
                node: 1,
                pid: 900,
                uid: 0,
                gid: 0,
                call: IoCall::Pwrite {
                    fd: 4,
                    offset: i * 512,
                    len: 512,
                },
                result: 512,
            })
            .collect()
    }

    fn meta() -> TraceMeta {
        TraceMeta::new("/app.exe", 3, 1, "lanl-trace")
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        let m = meta();
        let frames = vec![
            Frame::Hello {
                meta: m.clone(),
                expected_records: 4096,
            },
            Frame::Records {
                seq: 7,
                records: sample_records(5),
            },
            Frame::Records {
                seq: 8,
                records: Vec::new(),
            },
            Frame::Bye { frames_sent: 8 },
            Frame::HelloAck { session: 12 },
            Frame::Ack { seq: 7 },
            Frame::Sealed { records: 640 },
            Frame::Busy { queue_len: 32 },
            Frame::ByeAck { records: 4096 },
            Frame::Migrate {
                origin_session: 4,
                meta: m.clone(),
                expected: 4096,
                sealed_records: 640,
                last_seq: 10,
                chunks: 3,
                origin: "a/sess004".to_string(),
            },
            Frame::MigrateAck {
                session: 2,
                origin_session: 4,
            },
            Frame::Handoff {
                session: 2,
                seq: 1,
                bytes: vec![0xAA, 0, 0x55, 7],
            },
            Frame::Handoff {
                session: 2,
                seq: 2,
                bytes: Vec::new(),
            },
            Frame::HandoffAck {
                session: 2,
                seq: 1,
                records: 128,
            },
        ];
        for f in frames {
            let bytes = encode_frame(&f);
            let back = decode_frame(&bytes, Some(&m)).expect("roundtrip");
            assert_eq!(back, f);
        }
    }

    #[test]
    fn torn_frame_is_detected_at_every_cut() {
        let f = Frame::Records {
            seq: 3,
            records: sample_records(9),
        };
        let bytes = encode_frame(&f);
        let m = meta();
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut], Some(&m)).unwrap_err();
            assert!(
                matches!(err, ProtoError::Truncated | ProtoError::BadCrc),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn flipped_bit_fails_the_crc() {
        let bytes = encode_frame(&Frame::Ack { seq: 9 });
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                decode_frame(&bad, None).is_err(),
                "bit flip at {i} went unnoticed"
            );
        }
    }

    #[test]
    fn torn_handoff_frame_is_detected_at_every_cut() {
        let f = Frame::Handoff {
            session: 1,
            seq: 2,
            bytes: (0u8..64).collect(),
        };
        let bytes = encode_frame(&f);
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut], None).unwrap_err();
            assert!(
                matches!(err, ProtoError::Truncated | ProtoError::BadCrc),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn migrate_decodes_without_session_meta() {
        // Unlike `Records`, `Migrate` carries its own TraceMeta: the
        // destination must be able to decode it with no prior session
        // state at all.
        let f = Frame::Migrate {
            origin_session: 9,
            meta: meta(),
            expected: 100,
            sealed_records: 40,
            last_seq: 5,
            chunks: 6,
            origin: "b/sess009".to_string(),
        };
        let bytes = encode_frame(&f);
        assert_eq!(decode_frame(&bytes, None).expect("standalone decode"), f);
    }

    #[test]
    fn records_before_hello_is_malformed() {
        let bytes = encode_frame(&Frame::Records {
            seq: 1,
            records: sample_records(2),
        });
        assert_eq!(
            decode_frame(&bytes, None),
            Err(ProtoError::Malformed("Records-before-Hello"))
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_frame(&Frame::Ack { seq: 1 });
        bytes.push(0xAB);
        assert_eq!(
            decode_frame(&bytes, None),
            Err(ProtoError::Malformed("over-long"))
        );
    }
}
