//! A simulated capture client: streams one trace to the collector over
//! the framed protocol, honouring backpressure with the fsmodel
//! [`RetryPolicy`] (exponential backoff + seeded jitter).
//!
//! The client keeps exactly one frame in flight: it sends, waits for
//! the `Ack`, then sends the next. A `Busy` refusal increments the
//! retry counter and parks the client for a jittered backoff — one
//! simulation tick per millisecond of backoff — before re-offering the
//! *same* frame. Fault hooks let a soak plan make the client vanish
//! mid-frame (leaving torn bytes in the channel) or stream only a
//! truncated prefix before closing early.

use iotrace_fs::params::RetryPolicy;
use iotrace_model::event::{TraceMeta, TraceRecord};
use iotrace_sim::rng::DetRng;

use crate::collector::Collector;
use crate::proto::{encode_frame, Frame};

/// Client lifecycle, mirroring the session states on the far side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientPhase {
    /// `Hello` not yet accepted.
    Greet,
    /// Streaming record frames.
    Stream,
    /// All records acked; `Bye` owed or in flight.
    Close,
    /// `ByeAck` received — clean exit.
    Done,
    /// Died mid-stream (fault-injected disconnect).
    Dead,
    /// Retry budget exhausted against a persistently `Busy` collector
    /// (`RetryPolicy::max_attempts`) — gave up rather than spin forever.
    GaveUp,
}

/// Per-client transfer ledger, the ground truth tests compare against.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientLedger {
    /// Records placed into accepted frames.
    pub sent_records: u64,
    /// Records the collector acknowledged as appended.
    pub acked_records: u64,
    /// Durable watermark from the latest `Sealed` frame.
    pub durable_records: u64,
    /// Backoff rounds taken after `Busy` refusals.
    pub retries: u64,
    /// `Busy` refusals observed (>= retries bounded by max_retries resets).
    pub busy: u64,
    /// The retry budget ran out (`max_attempts` hit) and the client
    /// abandoned its in-flight frame.
    pub exhausted: bool,
}

/// One simulated capture client.
pub struct SimClient {
    pub id: u32,
    pub phase: ClientPhase,
    pub ledger: ClientLedger,
    /// Session id granted by `HelloAck`, once streaming.
    pub session: Option<u32>,
    meta: TraceMeta,
    /// Records this client will actually stream (post-truncation).
    records: Vec<TraceRecord>,
    /// Records the tracer *intended* to deliver — declared in `Hello`
    /// so the collector can stamp exact completeness.
    expected: u64,
    frame_records: usize,
    /// Next record index to frame.
    cursor: usize,
    /// Frame awaiting an `Ack`: (seq, record count, wire bytes).
    in_flight: Option<(u64, u64, Vec<u8>)>,
    /// The in-flight frame was accepted by the queue; don't re-send
    /// until it's acked (or the send was refused with `Busy`).
    sent: bool,
    next_seq: u64,
    /// Ticks to stay parked before retrying (backpressure backoff).
    parked: u64,
    /// Consecutive `Busy` refusals for the current frame.
    attempt: u32,
    policy: RetryPolicy,
    rng: DetRng,
    /// Vanish (leaving a torn frame) once this many record frames sent.
    disconnect_at: Option<u64>,
}

impl SimClient {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        meta: TraceMeta,
        records: Vec<TraceRecord>,
        expected: u64,
        frame_records: usize,
        policy: RetryPolicy,
        seed: u64,
        disconnect_at: Option<u64>,
    ) -> Self {
        SimClient {
            id,
            phase: ClientPhase::Greet,
            ledger: ClientLedger::default(),
            session: None,
            meta,
            records,
            expected,
            frame_records: frame_records.max(1),
            cursor: 0,
            in_flight: None,
            sent: false,
            next_seq: 1,
            parked: 0,
            attempt: 0,
            policy,
            rng: DetRng::new(seed).fork(0xc11e),
            disconnect_at,
        }
    }

    pub fn is_terminal(&self) -> bool {
        matches!(
            self.phase,
            ClientPhase::Done | ClientPhase::Dead | ClientPhase::GaveUp
        )
    }

    /// Re-handshake onto another collector after a migration: the
    /// session id changes, the un-acked in-flight frame (same seq) is
    /// re-offered there, and the backoff state resets — the destination
    /// is a fresh queue, not the congested one we backed off from.
    pub fn rebind(&mut self, session: u32) {
        self.session = Some(session);
        self.sent = false;
        self.attempt = 0;
        self.parked = 0;
    }

    /// Record frames fully sent (acked).
    fn frames_acked(&self) -> u64 {
        self.next_seq - 1 - u64::from(self.in_flight.is_some())
    }

    /// Advance one tick: honour backoff, then offer at most one frame.
    pub fn step(&mut self, collector: &mut Collector) {
        if self.is_terminal() {
            return;
        }
        if self.parked > 0 {
            self.parked -= 1;
            return;
        }
        match self.phase {
            ClientPhase::Greet => {
                if self.in_flight.is_none() {
                    let bytes = encode_frame(&Frame::Hello {
                        meta: self.meta.clone(),
                        expected_records: self.expected,
                    });
                    self.in_flight = Some((0, 0, bytes));
                }
                self.offer_in_flight(collector);
            }
            ClientPhase::Stream => {
                if self.in_flight.is_none() {
                    if let Some(at) = self.disconnect_at {
                        if self.frames_acked() >= at {
                            self.die_mid_frame(collector);
                            return;
                        }
                    }
                    if self.cursor >= self.records.len() {
                        self.phase = ClientPhase::Close;
                        let bytes = encode_frame(&Frame::Bye {
                            frames_sent: self.next_seq - 1,
                        });
                        self.in_flight = Some((0, 0, bytes));
                        self.offer_in_flight(collector);
                        return;
                    }
                    let end = (self.cursor + self.frame_records).min(self.records.len());
                    let chunk = self.records[self.cursor..end].to_vec();
                    let n = chunk.len() as u64;
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.cursor = end;
                    let bytes = encode_frame(&Frame::Records {
                        seq,
                        records: chunk,
                    });
                    self.in_flight = Some((seq, n, bytes));
                }
                self.offer_in_flight(collector);
            }
            ClientPhase::Close => self.offer_in_flight(collector),
            ClientPhase::Done | ClientPhase::Dead | ClientPhase::GaveUp => {}
        }
    }

    fn offer_in_flight(&mut self, collector: &mut Collector) {
        if self.sent {
            return; // accepted and awaiting its ack — never double-send
        }
        let Some((_, _, bytes)) = &self.in_flight else {
            return;
        };
        match collector.offer(self.id, bytes.clone()) {
            Ok(()) => {
                self.sent = true;
                self.attempt = 0;
            }
            Err(Frame::Busy { .. }) => self.back_off(),
            Err(_) => unreachable!("offer only refuses with Busy"),
        }
    }

    /// Honour a `Busy`: jittered exponential backoff, one tick per
    /// millisecond (minimum one tick so a parked client always yields).
    /// When the policy's `max_attempts` cap runs out, give up instead of
    /// spinning forever.
    fn back_off(&mut self) {
        self.ledger.busy += 1;
        self.ledger.retries += 1;
        match self
            .policy
            .try_backoff_jittered(self.attempt, &mut self.rng)
        {
            Ok(wait) => {
                self.parked = (wait.as_nanos() / 1_000_000).max(1);
                self.attempt = self.attempt.saturating_add(1);
            }
            Err(_exhausted) => {
                self.ledger.exhausted = true;
                self.phase = ClientPhase::GaveUp;
                self.in_flight = None;
                self.sent = false;
            }
        }
    }

    /// Vanish mid-send: push the first half of the next frame's bytes —
    /// the tear a dying connection leaves — and go dead. If even the
    /// torn bytes are refused, vanish silently; the collector's idle
    /// sweep will notice.
    fn die_mid_frame(&mut self, collector: &mut Collector) {
        let end = (self.cursor + self.frame_records).min(self.records.len());
        let chunk = self.records[self.cursor..end].to_vec();
        let bytes = encode_frame(&Frame::Records {
            seq: self.next_seq,
            records: chunk,
        });
        let torn = bytes[..bytes.len() / 2].to_vec();
        let _ = collector.offer(self.id, torn);
        self.phase = ClientPhase::Dead;
        self.in_flight = None;
        self.sent = false;
    }

    /// Deliver one collector → client frame.
    pub fn deliver(&mut self, frame: &Frame) {
        match frame {
            Frame::HelloAck { session } if self.phase == ClientPhase::Greet => {
                self.phase = ClientPhase::Stream;
                self.session = Some(*session);
                self.in_flight = None;
                self.sent = false;
            }
            Frame::Ack { seq } => {
                if let Some((want, n, _)) = &self.in_flight {
                    if seq == want {
                        let n = *n;
                        self.ledger.sent_records += n;
                        self.ledger.acked_records += n;
                        self.in_flight = None;
                        self.sent = false;
                    }
                }
            }
            Frame::Sealed { records } => {
                self.ledger.durable_records = self.ledger.durable_records.max(*records);
            }
            Frame::ByeAck { records } => {
                self.ledger.durable_records = self.ledger.durable_records.max(*records);
                self.phase = ClientPhase::Done;
                self.in_flight = None;
                self.sent = false;
            }
            // An *asynchronous* Busy: the frame was queued but the
            // session was draining to the federation partner when it
            // was applied. Treat it like a refusal — back off and
            // re-offer the same frame (by then we're rebound to the
            // destination, where the seq continues without a gap).
            Frame::Busy { .. } if self.in_flight.is_some() && self.sent => {
                self.sent = false;
                self.back_off();
            }
            // Other frames are client → collector and never delivered
            // here.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace_sim::time::SimDur;

    #[test]
    fn backoff_parks_grow_with_attempts() {
        let meta = TraceMeta::new("/a", 0, 0, "t");
        let policy = RetryPolicy {
            base_backoff: SimDur::from_millis(4),
            jitter_frac: 0.0,
            ..RetryPolicy::lanl_2007()
        };
        let mut c = SimClient::new(1, meta, Vec::new(), 0, 8, policy, 7, None);
        c.attempt = 0;
        c.ledger = ClientLedger::default();
        // simulate two refusals by hand
        let w0 = policy.backoff(0).as_nanos() / 1_000_000;
        let w1 = policy.backoff(1).as_nanos() / 1_000_000;
        assert_eq!(w0, 4);
        assert_eq!(w1, 8);
    }
}
