//! Collector federation: two collectors, live session migration, and
//! queries that span both spools.
//!
//! The harness here is the two-collector analogue of
//! [`run_soak`](crate::soak::run_soak): clients stream to collector A,
//! a fault plan's `collector-migrate` entries drain individual sessions
//! off A and re-handshake them onto B mid-stream (see
//! [`Migration`] for the frame sequence),
//! and either collector can be killed at any frame of the handoff.
//! Because chunks ship along sealed-segment boundaries and the
//! destination persists journal + card before every `HandoffAck`,
//! exactly one durable copy of the session exists at every instant —
//! which is what lets [`recover_spools`] reunite a session split across
//! two spool directories into a single recovered journal that is
//! byte-identical to what a never-migrated run would have written.
//!
//! Recovery across a federation is a superset of single-spool recovery:
//!
//! 1. **reunite** — a destination card whose `origin=` names a partner
//!    collector marks a session that was mid-handoff; whichever copy
//!    fscks to more records wins (ties keep the destination's), the
//!    loser is deleted, and the destination directory becomes the
//!    session's home;
//! 2. **per-spool recovery** — plain [`recover_spool`] on each
//!    directory, stamping exact completeness;
//! 3. **federation digest** — one merged record stream over every
//!    recovered journal of every collector, so two independent
//!    recoveries of the same torn federation can be diffed.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use iotrace_analysis::hotspots::{top_by_bytes_interned, PathFold, PathStats};
use iotrace_analysis::merge::merge_corrected;
use iotrace_analysis::skew::SkewEstimate;
use iotrace_analysis::stats::TraceStats;
use iotrace_fs::params::RetryPolicy;
use iotrace_model::event::Trace;
use iotrace_model::intern::Interner;
use iotrace_model::journal::{fsck_journal, journal_version, read_journal, records_digest};
use iotrace_model::par::par_map;
use iotrace_sim::fault::FaultPlan;

use crate::client::{ClientPhase, SimClient};
use crate::collector::Collector;
use crate::migrate::{Migration, PEER_CLIENT_BASE};
use crate::recovery::{read_card, recover_spool, spool_journals, RecoveryReport};
use crate::session::SessionState;
use crate::soak::{SessionOutcome, SoakConfig};

/// Knobs for one federation run: the per-collector soak knobs plus the
/// handoff retry budget and the two federation-specific kill switches.
#[derive(Clone, Copy, Debug)]
pub struct FederationConfig {
    pub soak: SoakConfig,
    /// Backoff policy the migration driver uses against a `Busy`
    /// destination. Unlike clients, this is always a *finite* budget:
    /// a persistently unreachable partner must abort the handoff
    /// (typed [`HandoffAborted`](crate::migrate::HandoffAborted)), not
    /// wedge the source forever.
    pub handoff_retry: RetryPolicy,
    /// Kill the source collector once this many handoff chunks have
    /// been acked across all migrations (0 = at the announce).
    pub kill_source_after_chunks: Option<u64>,
    /// Kill the destination collector after it has drained this many
    /// frames (overrides the plan's `collector-partner-kill`).
    pub kill_partner_at_frame: Option<u64>,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            soak: SoakConfig::default(),
            handoff_retry: RetryPolicy {
                max_attempts: 8,
                jitter_frac: 0.5,
                ..RetryPolicy::lanl_2007()
            },
            kill_source_after_chunks: None,
            kill_partner_at_frame: None,
        }
    }
}

/// How a federation run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FederationOutcome {
    /// Every client terminal, every handoff settled, both spools sealed.
    Completed,
    /// The source collector died after this many acked handoff chunks.
    SourceKilled { after_chunks: u64 },
    /// The destination collector died after draining this many frames.
    PartnerKilled { at_frame: u64 },
}

/// One migration's final accounting.
#[derive(Clone, Copy, Debug)]
pub struct MigrationOutcome {
    pub client: u32,
    pub src_session: u32,
    pub dest_session: Option<u32>,
    /// Chunks the destination acked.
    pub shipped_chunks: u64,
    pub total_chunks: u64,
    /// `Busy` refusals the driver absorbed.
    pub retries: u64,
    /// Ticks from drain to final ack (settled handoffs only).
    pub handoff_ticks: Option<u64>,
    pub aborted: bool,
}

/// The federation run's result: per-client outcomes joined across both
/// collectors, per-migration accounting, and the combined digest.
#[derive(Clone, Debug)]
pub struct FederationReport {
    pub outcome: FederationOutcome,
    pub ticks: u64,
    pub sessions: Vec<SessionOutcome>,
    /// client id -> collector name the session ended up homed on.
    pub homes: BTreeMap<u32, String>,
    pub migrations: Vec<MigrationOutcome>,
    /// Handoffs that exhausted their retry budget and fell back to the
    /// source.
    pub aborted_handoffs: u64,
    /// Clients that hit their own `max_attempts` give-up cap.
    pub retries_exhausted: u64,
    /// Records in the combined recovered output (completed runs only).
    pub merged_records: u64,
    /// Digest of the combined recovered output (completed runs only).
    pub merged_digest: u64,
}

impl FederationReport {
    /// Render the per-client and per-migration summary tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("client  home        sess  state      expected  sealed  completeness\n");
        for s in &self.sessions {
            out.push_str(&format!(
                "{:<7} {:<11} {:<5} {:<10} {:<9} {:<7} {:.6}\n",
                s.client,
                self.homes.get(&s.client).map(|h| h.as_str()).unwrap_or("-"),
                s.session
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into()),
                s.state,
                s.expected,
                s.sealed,
                s.completeness
            ));
        }
        for m in &self.migrations {
            out.push_str(&format!(
                "migration client={} sess {}->{} chunks {}/{} retries={} {}\n",
                m.client,
                m.src_session,
                m.dest_session
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into()),
                m.shipped_chunks,
                m.total_chunks,
                m.retries,
                if m.aborted {
                    "ABORTED".to_string()
                } else {
                    match m.handoff_ticks {
                        Some(t) => format!("done in {t} tick(s)"),
                        None => "in flight".to_string(),
                    }
                }
            ));
        }
        if self.aborted_handoffs > 0 {
            out.push_str(&format!(
                "{} handoff(s) aborted after retry exhaustion\n",
                self.aborted_handoffs
            ));
        }
        match self.outcome {
            FederationOutcome::Completed => out.push_str(&format!(
                "completed in {} tick(s): {} record(s) merged, digest {:#018x}\n",
                self.ticks, self.merged_records, self.merged_digest
            )),
            FederationOutcome::SourceKilled { after_chunks } => out.push_str(&format!(
                "source collector KILLED after {} acked chunk(s) at tick {} — spools left for recovery\n",
                after_chunks, self.ticks
            )),
            FederationOutcome::PartnerKilled { at_frame } => out.push_str(&format!(
                "partner collector KILLED after {} frame(s) at tick {} — spools left for recovery\n",
                at_frame, self.ticks
            )),
        }
        out
    }
}

/// Run one two-collector federation soak. All clients start homed on
/// `dir_a`; the plan's `collector-migrate` faults pick who moves to
/// `dir_b` and when. On a kill (either side), both spools are left
/// exactly as the crash tore them, for [`recover_spools`].
pub fn run_federation(
    dir_a: &Path,
    dir_b: &Path,
    cfg: &FederationConfig,
    plan: &FaultPlan,
    inputs: Option<&[Trace]>,
) -> Result<FederationReport, String> {
    let soak = &cfg.soak;
    let synthesized;
    let traces: &[Trace] = match inputs {
        Some(t) => {
            if t.len() != soak.clients as usize {
                return Err(format!(
                    "need {} input traces, got {}",
                    soak.clients,
                    t.len()
                ));
            }
            t
        }
        None => {
            synthesized =
                crate::soak::synth_client_traces(soak.clients, soak.records_per_client, soak.seed);
            &synthesized
        }
    };
    let mut a = Collector::open(dir_a, soak.collector)?;
    let mut b = Collector::open(dir_b, soak.collector)?;
    let kill_a = soak.kill_at_frame.or_else(|| plan.collector_kill_frame());
    let kill_b = cfg
        .kill_partner_at_frame
        .or_else(|| plan.partner_kill_frame());
    let stalls = plan.consumer_stalls();

    let mut clients: BTreeMap<u32, SimClient> = BTreeMap::new();
    let mut lost: Vec<u32> = Vec::new();
    for (c, trace) in traces.iter().enumerate() {
        let c = c as u32;
        if plan.file_lost(c) {
            lost.push(c);
            continue;
        }
        let expected = trace.records.len() as u64;
        let keep = plan
            .truncation(c)
            .map(|f| ((trace.records.len() as f64) * f).floor() as usize)
            .unwrap_or(trace.records.len());
        clients.insert(
            c,
            SimClient::new(
                c,
                trace.meta.clone(),
                trace.records[..keep].to_vec(),
                expected,
                soak.frame_records,
                soak.retry,
                soak.seed ^ (u64::from(c) << 8),
                plan.disconnect_frame(c),
            ),
        );
    }

    // Which collector each client's frames route to. Everyone starts on
    // A; a completed migration re-homes the client to B.
    let mut home: BTreeMap<u32, bool> = clients.keys().map(|&c| (c, false)).collect();
    let mut migrations: BTreeMap<u32, Migration> = BTreeMap::new();
    // One migration attempt per client: an aborted handoff falls back
    // to the source for good rather than flapping.
    let mut migrated: BTreeSet<u32> = BTreeSet::new();
    let mut finished: Vec<MigrationOutcome> = Vec::new();
    let mut aborted_handoffs = 0u64;
    let mut outcome = None;
    let mut ticks = 0;

    for tick in 0..soak.max_ticks {
        ticks = tick;
        let mut budget = soak.collector.drain_per_tick;
        for &(from, until, factor) in &stalls {
            if tick >= from && tick < until && factor > 1.0 {
                budget = ((budget as f64) / factor).floor() as usize;
            }
        }
        let killed_a = a.drain(budget, kill_a)?;
        let killed_b = b.drain(budget, kill_b)?;
        for (to, frame) in a.take_outbox().into_iter().chain(b.take_outbox()) {
            if to >= PEER_CLIENT_BASE {
                if let Some(m) = migrations.get_mut(&(to - PEER_CLIENT_BASE)) {
                    m.deliver(&frame, tick);
                }
            } else if let Some(cl) = clients.get_mut(&to) {
                cl.deliver(&frame);
            }
        }
        // Finalize settled handoffs — but never in a tick where a
        // collector died: a crash does not get to tidy up, and the
        // split-session state is exactly what recovery must handle.
        if !killed_a && !killed_b {
            let settled: Vec<u32> = migrations
                .iter()
                .filter(|(_, m)| m.is_settled())
                .map(|(&c, _)| c)
                .collect();
            for c in settled {
                let m = migrations.remove(&c).expect("settled migration exists");
                if m.is_done() {
                    let dest = m.dest_session.expect("done implies dest session");
                    a.complete_migration(c)?;
                    b.adopt_client(c, dest);
                    if let Some(cl) = clients.get_mut(&c) {
                        cl.rebind(dest);
                    }
                    home.insert(c, true);
                } else {
                    aborted_handoffs += 1;
                    a.abort_drain(c)?;
                    if let Some(dest) = m.dest_session {
                        b.abort_migration(dest)?;
                    }
                }
                finished.push(MigrationOutcome {
                    client: c,
                    src_session: m.src_session,
                    dest_session: m.dest_session,
                    shipped_chunks: m.shipped_chunks(),
                    total_chunks: m.total_chunks(),
                    retries: m.retries,
                    handoff_ticks: m.finished_tick.map(|t| t - m.started_tick),
                    aborted: m.is_aborted(),
                });
            }
        }
        if killed_a {
            let after_chunks = finished
                .iter()
                .map(|m| m.shipped_chunks)
                .chain(migrations.values().map(|m| m.shipped_chunks()))
                .sum();
            outcome = Some(FederationOutcome::SourceKilled { after_chunks });
            break;
        }
        if killed_b {
            outcome = Some(FederationOutcome::PartnerKilled {
                at_frame: b.frames_drained(),
            });
            break;
        }
        for m in migrations.values_mut() {
            m.step(&mut b);
        }
        // Trigger new migrations: a streaming session on A whose client
        // the plan marks for migration, once enough frames have landed.
        let due: Vec<u32> = clients
            .keys()
            .filter(|&&c| !migrated.contains(&c) && !home[&c])
            .filter(|&&c| {
                plan.migrate_frame(c).is_some_and(|f| {
                    a.session_of(c)
                        .map(|s| s.state == SessionState::Streaming && s.last_seq >= f)
                        .unwrap_or(false)
                })
            })
            .copied()
            .collect();
        for c in due {
            if let Some(m) = Migration::begin(&mut a, c, cfg.handoff_retry, soak.seed, tick)? {
                migrated.insert(c);
                migrations.insert(c, m);
            }
        }
        for cl in clients.values_mut() {
            if home[&cl.id] {
                cl.step(&mut b);
            } else {
                cl.step(&mut a);
            }
        }
        if let Some(k) = cfg.kill_source_after_chunks {
            let shipped: u64 = finished
                .iter()
                .map(|m| m.shipped_chunks)
                .chain(migrations.values().map(|m| m.shipped_chunks()))
                .sum();
            if !migrated.is_empty() && shipped >= k {
                a.kill()?;
                outcome = Some(FederationOutcome::SourceKilled {
                    after_chunks: shipped,
                });
                break;
            }
        }
        if clients.values().all(|c| c.is_terminal())
            && a.queue().is_empty()
            && b.queue().is_empty()
            && migrations.is_empty()
        {
            let dead: Vec<u32> = clients
                .values()
                .filter(|c| matches!(c.phase, ClientPhase::Dead | ClientPhase::GaveUp))
                .map(|c| c.id)
                .collect();
            a.sweep_idle(&dead)?;
            b.sweep_idle(&dead)?;
            outcome = Some(FederationOutcome::Completed);
            break;
        }
    }
    let outcome = outcome.ok_or_else(|| {
        format!(
            "federation soak did not converge within {} ticks (livelock?)",
            soak.max_ticks
        )
    })?;
    // Handoffs still in flight when a collector died: report them too —
    // their shipped-chunk counts are the recovery ground truth.
    for (c, m) in migrations {
        finished.push(MigrationOutcome {
            client: c,
            src_session: m.src_session,
            dest_session: m.dest_session,
            shipped_chunks: m.shipped_chunks(),
            total_chunks: m.total_chunks(),
            retries: m.retries,
            handoff_ticks: None,
            aborted: m.is_aborted(),
        });
    }
    finished.sort_by_key(|m| m.client);

    let rows_a: BTreeMap<u32, _> = a
        .session_rows()
        .into_iter()
        .map(|r| (r.session, r))
        .collect();
    let rows_b: BTreeMap<u32, _> = b
        .session_rows()
        .into_iter()
        .map(|r| (r.session, r))
        .collect();
    let mut sessions = Vec::new();
    let mut homes = BTreeMap::new();
    for (&c, cl) in &clients {
        let on_b = home[&c];
        homes.insert(c, if on_b { b.name() } else { a.name() });
        let row = cl.session.and_then(|sid| {
            if on_b {
                rows_b.get(&sid)
            } else {
                rows_a.get(&sid)
            }
        });
        sessions.push(SessionOutcome {
            client: c,
            session: cl.session,
            state: row
                .map(|r| r.state.to_string())
                .unwrap_or_else(|| "unreached".into()),
            expected: row.map(|r| r.expected).unwrap_or(0),
            acked: cl.ledger.acked_records,
            sealed: row.map(|r| r.sealed).unwrap_or(0),
            completeness: row.map(|r| r.completeness).unwrap_or(0.0),
            retries: cl.ledger.retries,
            gave_up: cl.ledger.exhausted,
        });
    }
    for c in lost {
        homes.insert(c, a.name());
        sessions.push(SessionOutcome {
            client: c,
            session: None,
            state: "lost".into(),
            expected: 0,
            acked: 0,
            sealed: 0,
            completeness: 0.0,
            retries: 0,
            gave_up: false,
        });
    }
    sessions.sort_by_key(|s| s.client);

    let (merged_records, merged_digest) = if outcome == FederationOutcome::Completed {
        let rec = recover_spools(
            &[dir_a.to_path_buf(), dir_b.to_path_buf()],
            soak.collector.segment_records,
        )?;
        (rec.total_records, rec.merged_digest)
    } else {
        (0, 0)
    };

    Ok(FederationReport {
        outcome,
        ticks: ticks + 1,
        sessions,
        homes,
        migrations: finished,
        aborted_handoffs,
        retries_exhausted: clients.values().filter(|c| c.ledger.exhausted).count() as u64,
        merged_records,
        merged_digest,
    })
}

fn dir_name(dir: &Path) -> String {
    dir.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "collector".to_string())
}

/// The collector spool directories under a federation root: every
/// subdirectory holding journals or cards, sorted by name. A root that
/// *itself* holds journals (a plain single spool) federates alone.
pub fn federation_spools(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut dirs = Vec::new();
    for entry in std::fs::read_dir(root).map_err(|e| format!("read {}: {e}", root.display()))? {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let holds_spool = std::fs::read_dir(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?
            .filter_map(|e| e.ok())
            .any(|e| {
                let n = e.file_name().to_string_lossy().into_owned();
                n.ends_with(".iotj") || n.ends_with(".card")
            });
        if holds_spool {
            dirs.push(path);
        }
    }
    if dirs.is_empty() && !spool_journals(root)?.is_empty() {
        dirs.push(root.to_path_buf());
    }
    dirs.sort_by_key(|d| dir_name(d));
    Ok(dirs)
}

/// A whole federation's recovery result.
#[derive(Clone, Debug)]
pub struct FederationRecovery {
    /// Per-collector reports, sorted by collector name.
    pub collectors: Vec<(String, RecoveryReport)>,
    /// Sessions reunited from a mid-handoff split (source copy deleted,
    /// destination directory now the session's home).
    pub reunited: usize,
    /// Records across every recovered journal of every collector.
    pub total_records: u64,
    /// Digest of the federation-wide merged record stream.
    pub merged_digest: u64,
}

impl FederationRecovery {
    pub fn orphans(&self) -> usize {
        self.collectors.iter().map(|(_, r)| r.orphans()).sum()
    }

    /// Render the per-collector tables plus the federation summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, rep) in &self.collectors {
            out.push_str(&format!("== {name} ==\n"));
            out.push_str(&rep.render());
        }
        out.push_str(&format!(
            "federation: {} collector(s), {} reunited, {} records, merged digest {:#018x}\n",
            self.collectors.len(),
            self.reunited,
            self.total_records,
            self.merged_digest
        ));
        out
    }
}

/// Recover a session federation split across `dirs` (see the module
/// docs for the three passes). Idempotent and deterministic: two
/// independent recoveries of copies of the same torn federation produce
/// byte-identical spools and the same digest.
pub fn recover_spools(
    dirs: &[PathBuf],
    segment_records: usize,
) -> Result<FederationRecovery, String> {
    let mut dirs: Vec<PathBuf> = dirs.to_vec();
    dirs.sort_by_key(|d| dir_name(d));
    let by_name: BTreeMap<String, PathBuf> =
        dirs.iter().map(|d| (dir_name(d), d.clone())).collect();

    // Pass 1: reunite. A card carrying `origin=<collector>/<stem>`
    // marks a migrated-in copy; if the named source collector still
    // holds its copy the handoff died midway — keep whichever copy
    // fscks to more records (ties keep the destination's: it persisted
    // before every ack, so equal counts mean equal bytes) and delete
    // the other. The destination directory is the session's home
    // either way, so two recoveries agree on where the session lives.
    let mut reunited = 0usize;
    for dir in &dirs {
        for name in spool_journals(dir)? {
            let Some(card) = read_card(dir, &name) else {
                continue;
            };
            let Some(origin) = card.origin else {
                continue;
            };
            let Some((src_coll, stem)) = origin.split_once('/') else {
                continue;
            };
            let Some(src_dir) = by_name.get(src_coll) else {
                continue;
            };
            let src_journal = src_dir.join(format!("{stem}.iotj"));
            if src_dir == dir || !src_journal.exists() {
                continue;
            }
            let dest_path = dir.join(&name);
            let dest_bytes = std::fs::read(&dest_path)
                .map_err(|e| format!("read {}: {e}", dest_path.display()))?;
            let src_bytes = std::fs::read(&src_journal)
                .map_err(|e| format!("read {}: {e}", src_journal.display()))?;
            let dest_n = fsck_journal(&dest_bytes)
                .map(|(_, r)| r.records_recovered)
                .unwrap_or(0);
            let src_n = fsck_journal(&src_bytes)
                .map(|(_, r)| r.records_recovered)
                .unwrap_or(0);
            if src_n > dest_n {
                std::fs::write(&dest_path, &src_bytes)
                    .map_err(|e| format!("write {}: {e}", dest_path.display()))?;
            }
            for ext in ["iotj", "card"] {
                let p = src_dir.join(format!("{stem}.{ext}"));
                if p.exists() {
                    std::fs::remove_file(&p).map_err(|e| format!("remove {}: {e}", p.display()))?;
                }
            }
            reunited += 1;
        }
    }

    // Pass 2: ordinary per-spool recovery (exact completeness stamps,
    // orphan rewrites, per-spool digests).
    let mut collectors = Vec::new();
    for dir in &dirs {
        collectors.push((dir_name(dir), recover_spool(dir, segment_records)?));
    }

    // Pass 3: the federation-wide digest over every recovered journal,
    // in (collector, journal) order.
    let mut traces: Vec<Trace> = Vec::new();
    for dir in &dirs {
        for name in spool_journals(dir)? {
            let path = dir.join(&name);
            let bytes =
                std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            // Journals recovery could not rewrite (unreadable container)
            // contribute nothing, exactly as in the per-spool digest.
            if let Ok(t) = read_journal(&bytes) {
                traces.push(t);
            }
        }
    }
    let merged = merge_corrected(
        &traces,
        &SkewEstimate {
            fits: BTreeMap::new(),
            reference_rank: 0,
        },
    );
    let merged_digest = records_digest(&merged);
    Ok(FederationRecovery {
        collectors,
        reunited,
        total_records: merged.len() as u64,
        merged_digest,
    })
}

/// [`recover_spools`] over every collector directory under `root`, plus
/// a root-level `merged.digest` describing the whole federation.
pub fn recover_federation(
    root: &Path,
    segment_records: usize,
) -> Result<FederationRecovery, String> {
    let dirs = federation_spools(root)?;
    if dirs.is_empty() {
        return Err(format!("{}: no collector spools found", root.display()));
    }
    let rec = recover_spools(&dirs, segment_records)?;
    let mut digest_file = String::from("# iotrace federation merged digest v1\n");
    digest_file.push_str(&format!(
        "collectors={} records={} digest={:#018x}\n",
        rec.collectors.len(),
        rec.total_records,
        rec.merged_digest
    ));
    for (name, rep) in &rec.collectors {
        for r in &rep.rows {
            digest_file.push_str(&format!(
                "{}/{} records={} completeness={:.6} state={}\n",
                name, r.file, r.recovered, r.completeness, r.state
            ));
        }
    }
    std::fs::write(root.join("merged.digest"), digest_file)
        .map_err(|e| format!("write merged.digest: {e}"))?;
    Ok(rec)
}

/// One row of the cross-collector session table (read-only: cards and
/// journal headers, no recovery side effects).
#[derive(Clone, Debug)]
pub struct FederationSessionRow {
    pub collector: String,
    pub file: String,
    /// Journal container version (0 = unreadable).
    pub version: u8,
    pub expected: u64,
    pub records: u64,
    pub state: String,
    pub completeness: f64,
    pub origin: Option<String>,
}

/// The merged `sessions` query: every session of every collector under
/// `root`, sorted by (collector, journal).
pub fn federation_sessions(root: &Path) -> Result<Vec<FederationSessionRow>, String> {
    let mut rows = Vec::new();
    for dir in federation_spools(root)? {
        let coll = dir_name(&dir);
        for name in spool_journals(&dir)? {
            let path = dir.join(&name);
            let bytes =
                std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            let card = read_card(&dir, &name);
            let fsck = fsck_journal(&bytes).ok();
            let records = card
                .as_ref()
                .map(|c| c.records)
                .or_else(|| fsck.as_ref().map(|(_, r)| r.records_recovered as u64))
                .unwrap_or(0);
            rows.push(FederationSessionRow {
                collector: coll.clone(),
                file: name,
                version: journal_version(&bytes).unwrap_or(0),
                expected: card.as_ref().map(|c| c.expected).unwrap_or(0),
                records,
                state: card
                    .as_ref()
                    .map(|c| c.state.to_string())
                    .unwrap_or_else(|| "unknown".into()),
                completeness: card.as_ref().map(|c| c.completeness).unwrap_or(0.0),
                origin: card.and_then(|c| c.origin),
            });
        }
    }
    Ok(rows)
}

/// Render the cross-collector session table.
pub fn render_federation_sessions(rows: &[FederationSessionRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "collector    journal        fmt  expected  records  state      completeness  origin\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:<14} {:<4} {:<9} {:<8} {:<10} {:<13.6} {}\n",
            r.collector,
            r.file,
            if r.version > 0 {
                format!("v{}", r.version)
            } else {
                "?".to_string()
            },
            r.expected,
            r.records,
            r.state,
            r.completeness,
            r.origin.as_deref().unwrap_or("-")
        ));
    }
    out
}

/// The merged `stats` query: per-collector folds run in parallel over
/// *local* interners (no shared keyspace, no locks), then each local
/// path table is absorbed into one global interner —
/// [`Interner::absorb`] returns the local→global symbol remap — in
/// sorted collector order, so the merged hotspot table is deterministic
/// regardless of worker count.
pub fn federation_stats(
    root: &Path,
    top: usize,
) -> Result<(TraceStats, Vec<(String, PathStats)>), String> {
    let dirs = federation_spools(root)?;
    let locals: Vec<Result<(TraceStats, Interner, PathFold), String>> = par_map(&dirs, |dir| {
        let mut stats = TraceStats::default();
        let mut paths = Interner::new();
        let mut fold = PathFold::default();
        for name in spool_journals(dir)? {
            let path = dir.join(&name);
            let bytes =
                std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            // fsck, not strict read: mid-capture and torn spools still
            // answer queries over their sealed prefixes.
            let Ok((t, _)) = fsck_journal(&bytes) else {
                continue;
            };
            stats.merge(&TraceStats::from_records(&t.records));
            fold.fold(&t.records, &mut paths);
        }
        Ok((stats, paths, fold))
    });
    let mut global_stats = TraceStats::default();
    let mut global_paths = Interner::new();
    let mut global_fold: std::collections::HashMap<_, PathStats> = Default::default();
    for local in locals {
        let (stats, paths, fold) = local?;
        global_stats.merge(&stats);
        let remap = global_paths.absorb(&paths);
        for (sym, ps) in fold.stats {
            let e = global_fold
                .entry(remap[sym.id() as usize])
                .or_insert_with(PathStats::default);
            e.ops += ps.ops;
            e.bytes += ps.bytes;
            e.time += ps.time;
        }
    }
    let hotspots = top_by_bytes_interned(&global_fold, &global_paths, top)
        .into_iter()
        .map(|(sym, s)| (global_paths.resolve(sym).to_string(), s))
        .collect();
    Ok((global_stats, hotspots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CollectorConfig;
    use crate::soak::{run_soak, synth_client_traces, SoakOutcome};
    use iotrace_sim::fault::Fault;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("iotrace-fed-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// 96 records per client in 16-record frames over 8-record
    /// segments: every frame seals cleanly and a migration after the
    /// last record frame ships only whole segments — the setup under
    /// which recovered output must be *byte-identical* to a
    /// never-migrated run.
    fn fed_cfg() -> FederationConfig {
        FederationConfig {
            soak: SoakConfig {
                clients: 4,
                records_per_client: 96,
                frame_records: 16,
                collector: CollectorConfig {
                    segment_records: 8,
                    queue_capacity: 8,
                    drain_per_tick: 4,
                    ..CollectorConfig::default()
                },
                ..SoakConfig::default()
            },
            ..FederationConfig::default()
        }
    }

    fn migrate_plan(client: u32, at_frame: u64) -> FaultPlan {
        FaultPlan {
            seed: 9,
            faults: vec![Fault::CollectorMigrate { client, at_frame }],
        }
    }

    #[test]
    fn clean_federation_migrates_one_session_and_completes() {
        let (da, db) = (tmpdir("clean-a"), tmpdir("clean-b"));
        let cfg = fed_cfg();
        let rep = run_federation(&da, &db, &cfg, &migrate_plan(1, 2), None).unwrap();
        assert_eq!(
            rep.outcome,
            FederationOutcome::Completed,
            "{}",
            rep.render()
        );
        assert_eq!(rep.migrations.len(), 1);
        let m = &rep.migrations[0];
        assert_eq!(m.client, 1);
        assert!(!m.aborted);
        assert_eq!(m.shipped_chunks, m.total_chunks);
        assert!(m.handoff_ticks.is_some());
        // client 1 ended up homed on B, everyone else stayed on A
        assert_eq!(rep.homes[&1], dir_name(&db));
        assert_eq!(rep.homes[&0], dir_name(&da));
        for s in &rep.sessions {
            assert_eq!(s.state, "closed", "client {}: {}", s.client, rep.render());
            assert_eq!(s.completeness, 1.0);
        }
        // the migrated spool really lives on B
        assert_eq!(spool_journals(&db).unwrap().len(), 1);
        assert_eq!(spool_journals(&da).unwrap().len(), 3);
        let _ = std::fs::remove_dir_all(&da);
        let _ = std::fs::remove_dir_all(&db);
    }

    #[test]
    fn migrated_federation_digest_matches_plain_soak() {
        let inputs = synth_client_traces(4, 96, 77);
        let ds = tmpdir("base");
        let mut soak = fed_cfg().soak;
        soak.seed = 77;
        let base = run_soak(&ds, &soak, &FaultPlan::clean(), Some(&inputs)).unwrap();
        assert_eq!(base.outcome, SoakOutcome::Completed);

        let (da, db) = (tmpdir("dig-a"), tmpdir("dig-b"));
        let mut cfg = fed_cfg();
        cfg.soak.seed = 77;
        let rep = run_federation(&da, &db, &cfg, &migrate_plan(2, 3), Some(&inputs)).unwrap();
        assert_eq!(
            rep.outcome,
            FederationOutcome::Completed,
            "{}",
            rep.render()
        );
        assert_eq!(rep.merged_records, base.merged_records);
        assert_eq!(rep.merged_digest, base.merged_digest);
        let _ = std::fs::remove_dir_all(&ds);
        let _ = std::fs::remove_dir_all(&da);
        let _ = std::fs::remove_dir_all(&db);
    }

    #[test]
    fn partner_kill_mid_handoff_recovers_byte_identical_to_baseline() {
        // Baseline: never-migrated clean run over the same inputs.
        let inputs = synth_client_traces(4, 96, 5);
        let ds = tmpdir("pk-base");
        let mut soak = fed_cfg().soak;
        soak.seed = 5;
        run_soak(&ds, &soak, &FaultPlan::clean(), Some(&inputs)).unwrap();
        let base_bytes = std::fs::read(ds.join("sess001.iotj")).unwrap();

        // Migrate client 1 after all its record frames, then kill the
        // *destination* while handoff chunks are landing.
        let (da, db) = (tmpdir("pk-a"), tmpdir("pk-b"));
        let mut cfg = fed_cfg();
        cfg.soak.seed = 5;
        cfg.kill_partner_at_frame = Some(4);
        let rep = run_federation(&da, &db, &cfg, &migrate_plan(1, 6), Some(&inputs)).unwrap();
        assert!(matches!(
            rep.outcome,
            FederationOutcome::PartnerKilled { .. }
        ));

        let rec = recover_spools(&[da.clone(), db.clone()], 8).unwrap();
        // the split session was reunited: exactly one copy remains, on
        // B (its id there is whatever B allocated for the stand-in)
        assert_eq!(rec.reunited, 1, "{}", rec.render());
        let b_journals = spool_journals(&db).unwrap();
        assert_eq!(b_journals.len(), 1, "{b_journals:?}");
        assert_eq!(spool_journals(&da).unwrap().len(), 3);
        // ... and its recovered bytes match the never-migrated run's
        let got = std::fs::read(db.join(&b_journals[0])).unwrap();
        assert_eq!(got, base_bytes, "{}", rec.render());
        let _ = std::fs::remove_dir_all(&ds);
        let _ = std::fs::remove_dir_all(&da);
        let _ = std::fs::remove_dir_all(&db);
    }

    #[test]
    fn handoff_retry_exhaustion_aborts_and_source_resumes() {
        use crate::proto::{encode_frame, Frame};
        use iotrace_model::event::TraceMeta;

        // One streaming session on A with two sealed segments.
        let (da, db) = (tmpdir("abort-a"), tmpdir("abort-b"));
        let mut a = Collector::open(
            &da,
            crate::collector::CollectorConfig {
                segment_records: 8,
                ..Default::default()
            },
        )
        .unwrap();
        let inputs = synth_client_traces(1, 16, 3);
        a.offer(
            0,
            encode_frame(&Frame::Hello {
                meta: TraceMeta::new("/app", 0, 0, "t"),
                expected_records: 16,
            }),
        )
        .unwrap();
        a.offer(
            0,
            encode_frame(&Frame::Records {
                seq: 1,
                records: inputs[0].records.clone(),
            }),
        )
        .unwrap();
        a.drain(8, None).unwrap();
        a.take_outbox();

        // The partner is dead before the handoff starts: every offer is
        // refused with Busy until the driver's finite budget runs out.
        let mut b = Collector::open(&db, Default::default()).unwrap();
        b.kill().unwrap();
        let policy = RetryPolicy {
            max_attempts: 3,
            jitter_frac: 0.0,
            ..RetryPolicy::lanl_2007()
        };
        let mut m = Migration::begin(&mut a, 0, policy, 7, 0)
            .unwrap()
            .expect("streaming session to drain");
        assert_eq!(
            a.session_of(0).unwrap().state,
            SessionState::Draining,
            "drain sealed the source session"
        );
        for _ in 0..100_000 {
            if m.is_settled() {
                break;
            }
            m.step(&mut b);
        }
        assert!(m.is_aborted());
        let aborted = m.aborted.expect("typed abort");
        assert_eq!(aborted.attempts, 3);
        assert_eq!(aborted.shipped_chunks, 0);
        assert_eq!(aborted.client, 0);

        // Fall back: the source resumes the session and the client can
        // finish streaming to it as if nothing happened.
        a.abort_drain(0).unwrap();
        assert_eq!(a.session_of(0).unwrap().state, SessionState::Streaming);
        a.offer(0, encode_frame(&Frame::Bye { frames_sent: 1 }))
            .unwrap();
        a.drain(8, None).unwrap();
        let rows = a.session_rows();
        assert_eq!(rows[0].state, SessionState::Closed);
        assert_eq!(rows[0].sealed, 16);
        let _ = std::fs::remove_dir_all(&da);
        let _ = std::fs::remove_dir_all(&db);
    }

    #[test]
    fn federation_queries_merge_both_collectors() {
        let root = tmpdir("queries");
        let (da, db) = (root.join("coll-a"), root.join("coll-b"));
        let cfg = fed_cfg();
        let rep = run_federation(&da, &db, &cfg, &migrate_plan(3, 2), None).unwrap();
        assert_eq!(rep.outcome, FederationOutcome::Completed);

        let rows = federation_sessions(&root).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows.iter().filter(|r| r.collector == "coll-b").count(), 1);
        let moved = rows.iter().find(|r| r.collector == "coll-b").unwrap();
        assert!(moved.origin.as_deref().unwrap_or("").starts_with("coll-a/"));
        assert_eq!(moved.version, 1);
        assert_eq!(moved.records, 96);
        assert!(render_federation_sessions(&rows).contains("coll-b"));

        let (stats, hot) = federation_stats(&root, 5).unwrap();
        assert_eq!(stats.records, 4 * 96);
        assert!(!hot.is_empty());
        // identical to folding a single-collector run of the same inputs
        let ds = tmpdir("queries-base");
        run_soak(&ds, &cfg.soak, &FaultPlan::clean(), None).unwrap();
        let sroot = tmpdir("queries-base-root");
        std::fs::create_dir_all(&sroot).unwrap();
        std::fs::rename(&ds, sroot.join("only")).unwrap();
        let (bstats, bhot) = federation_stats(&sroot, 5).unwrap();
        assert_eq!(stats.records, bstats.records);
        assert_eq!(stats.bytes_written, bstats.bytes_written);
        let hot_named: Vec<_> = hot.iter().map(|(p, s)| (p.clone(), s.clone())).collect();
        let bhot_named: Vec<_> = bhot.iter().map(|(p, s)| (p.clone(), s.clone())).collect();
        assert_eq!(hot_named, bhot_named);
        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_dir_all(&sroot);
    }

    #[test]
    fn recover_federation_writes_root_digest_and_is_idempotent() {
        let root = tmpdir("root-digest");
        let (da, db) = (root.join("coll-a"), root.join("coll-b"));
        let mut cfg = fed_cfg();
        cfg.kill_partner_at_frame = Some(6);
        let rep = run_federation(&da, &db, &cfg, &migrate_plan(1, 6), None).unwrap();
        assert!(matches!(
            rep.outcome,
            FederationOutcome::PartnerKilled { .. }
        ));
        let r1 = recover_federation(&root, 8).unwrap();
        let digest1 = std::fs::read_to_string(root.join("merged.digest")).unwrap();
        assert!(digest1.starts_with("# iotrace federation merged digest v1"));
        let r2 = recover_federation(&root, 8).unwrap();
        assert_eq!(r1.merged_digest, r2.merged_digest);
        assert_eq!(r2.orphans(), 0, "second pass finds everything clean");
        assert_eq!(
            std::fs::read_to_string(root.join("merged.digest")).unwrap(),
            digest1
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
