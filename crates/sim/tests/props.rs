//! Property-based tests for the simulation engine's core invariants.

use iotrace_sim::prelude::*;
use proptest::prelude::*;

type P = Box<dyn RankProgram<(), ()>>;

fn compute_barrier_prog(phases: &[u64]) -> P {
    let mut ops = Vec::new();
    for &ms in phases {
        ops.push(Op::Compute(SimDur::from_millis(ms)));
        ops.push(Op::Barrier(CommId::WORLD));
    }
    ops.push(Op::Exit);
    Box::new(OpList::new(ops))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With an ideal network, a bulk-synchronous program's elapsed time is
    /// exactly the sum over phases of the slowest rank in each phase.
    #[test]
    fn bsp_elapsed_is_sum_of_phase_maxima(
        matrix in prop::collection::vec(
            prop::collection::vec(1u64..200, 3), // 3 phases per rank
            1..6,                                 // 1..5 ranks
        )
    ) {
        let n = matrix.len();
        let cfg = ClusterConfig::new(n).with_net(NetworkParams::ideal());
        let mut eng = Engine::new(cfg, NullExecutor);
        let programs: Vec<P> = matrix.iter().map(|p| compute_barrier_prog(p)).collect();
        let report = eng.run(programs);
        prop_assert!(report.is_clean());

        let mut expect = 0u64;
        for phase in 0..3 {
            expect += matrix.iter().map(|p| p[phase]).max().unwrap();
        }
        prop_assert_eq!(report.elapsed, SimDur::from_millis(expect));
        prop_assert_eq!(report.barriers.len(), 3);
    }

    /// Deterministic replay: identical inputs give identical reports.
    #[test]
    fn runs_are_reproducible(
        matrix in prop::collection::vec(
            prop::collection::vec(1u64..100, 2),
            1..5,
        ),
        seed in 0u64..1000,
    ) {
        let run = || {
            let n = matrix.len();
            let cfg = ClusterConfig::new(n).with_sampled_clocks(seed, 500_000, 40.0);
            let mut eng = Engine::new(cfg, NullExecutor);
            let programs: Vec<P> = matrix.iter().map(|p| compute_barrier_prog(p)).collect();
            let rep = eng.run(programs);
            (
                rep.elapsed,
                rep.per_rank.iter().map(|s| s.finished_at).collect::<Vec<_>>(),
                rep.barriers.iter().map(|b| b.entries.iter().map(|e| (e.entered, e.exited, e.entered_obs)).collect::<Vec<_>>()).collect::<Vec<_>>(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Barrier exit time never precedes the latest entry.
    #[test]
    fn barrier_exit_after_all_entries(
        phases in prop::collection::vec(prop::collection::vec(0u64..50, 2), 2..5)
    ) {
        let n = phases.len();
        let cfg = ClusterConfig::new(n); // real (non-ideal) network
        let mut eng = Engine::new(cfg, NullExecutor);
        let programs: Vec<P> = phases.iter().map(|p| compute_barrier_prog(p)).collect();
        let report = eng.run(programs);
        prop_assert!(report.is_clean());
        for rec in &report.barriers {
            let latest_entry = rec.entries.iter().map(|e| e.entered).max().unwrap();
            for e in &rec.entries {
                prop_assert!(e.exited >= latest_entry);
                prop_assert!(e.exited >= e.entered);
            }
        }
    }

    /// Pipelines: messages flow rank 0 -> 1 -> ... -> n-1 and everyone
    /// terminates regardless of payload sizes.
    #[test]
    fn message_pipeline_terminates(
        sizes in prop::collection::vec(1u64..(1 << 20), 2..6)
    ) {
        let n = sizes.len();
        let cfg = ClusterConfig::new(n);
        let mut eng = Engine::new(cfg, NullExecutor);
        let mut programs: Vec<P> = Vec::new();
        for (i, &sz) in sizes.iter().enumerate() {
            let mut ops = Vec::new();
            if i > 0 {
                ops.push(Op::Recv { src: RankId(i as u32 - 1), tag: 1 });
            }
            if i + 1 < n {
                ops.push(Op::Send { dst: RankId(i as u32 + 1), bytes: sz, tag: 1 });
            }
            ops.push(Op::Exit);
            programs.push(Box::new(OpList::new(ops)));
        }
        let report = eng.run(programs);
        prop_assert!(report.is_clean());
        // Last rank can only finish after every hop's latency.
        let min_time = SimDur::from_micros(55) * (n as u64 - 1);
        prop_assert!(report.per_rank[n - 1].finished_at.since(SimTime::ZERO) >= min_time);
    }

    /// Clock observation is monotonic in true time for any skew/drift the
    /// sampler can produce (drift > -1e6 ppm keeps the affine map increasing).
    #[test]
    fn observed_clocks_are_monotonic(seed in 0u64..500, a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let mut rng = DetRng::new(seed);
        let clock = NodeClock::sample(&mut rng, 2_000_000, 100.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(clock.observe(SimTime(lo)) <= clock.observe(SimTime(hi)));
    }
}
