//! Interconnect cost model.
//!
//! The paper's testbed was a 32-processor cluster on gigabit
//! ethernet-over-copper (§4.1.2). We model the network with a classic
//! LogGP-flavoured parameterization: per-message latency, per-byte
//! serialization cost, a local CPU send overhead, and a barrier cost that
//! grows with `log2(n)` (dissemination barrier).

use crate::time::SimDur;

#[derive(Clone, Copy, Debug)]
pub struct NetworkParams {
    /// One-way wire latency per message.
    pub latency: SimDur,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// CPU time the sender spends handing a message to the NIC.
    pub send_overhead: SimDur,
    /// Fixed software cost of a barrier round.
    pub barrier_base: SimDur,
    /// Additional barrier cost per log2 round.
    pub barrier_per_round: SimDur,
}

impl NetworkParams {
    /// Gigabit ethernet circa 2006: ~55 µs MPI latency, ~110 MB/s
    /// effective bandwidth (mpich 1.2.6 over GigE).
    pub fn gige_2006() -> Self {
        NetworkParams {
            latency: SimDur::from_micros(55),
            bandwidth_bps: 110.0e6,
            send_overhead: SimDur::from_micros(8),
            barrier_base: SimDur::from_micros(40),
            barrier_per_round: SimDur::from_micros(60),
        }
    }

    /// An idealized zero-cost network, useful in unit tests where only
    /// ordering matters.
    pub fn ideal() -> Self {
        NetworkParams {
            latency: SimDur::ZERO,
            bandwidth_bps: f64::INFINITY,
            send_overhead: SimDur::ZERO,
            barrier_base: SimDur::ZERO,
            barrier_per_round: SimDur::ZERO,
        }
    }

    /// Time for `bytes` to cross one link (serialization only).
    pub fn transfer_time(&self, bytes: u64) -> SimDur {
        if self.bandwidth_bps.is_infinite() {
            return SimDur::ZERO;
        }
        SimDur::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }

    /// End-to-end delivery time for an eager message of `bytes`.
    pub fn delivery_time(&self, bytes: u64) -> SimDur {
        self.latency + self.transfer_time(bytes)
    }

    /// Cost of an `n`-rank dissemination barrier, charged after the last
    /// rank arrives.
    pub fn barrier_cost(&self, n: usize) -> SimDur {
        if n <= 1 {
            return self.barrier_base;
        }
        let rounds = (usize::BITS - (n - 1).leading_zeros()) as u64; // ceil(log2 n)
        self.barrier_base + self.barrier_per_round * rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_scales_with_bytes() {
        let net = NetworkParams::gige_2006();
        let t1 = net.transfer_time(1 << 20);
        let t2 = net.transfer_time(2 << 20);
        assert!(t2 > t1);
        // ~9.5ms for 1 MiB at 110 MB/s
        let s = t1.as_secs_f64();
        assert!((0.008..0.011).contains(&s), "got {s}");
    }

    #[test]
    fn ideal_network_is_free() {
        let net = NetworkParams::ideal();
        assert_eq!(net.delivery_time(1 << 30), SimDur::ZERO);
        assert_eq!(net.barrier_cost(1024), SimDur::ZERO);
    }

    #[test]
    fn barrier_cost_grows_logarithmically() {
        let net = NetworkParams::gige_2006();
        let c2 = net.barrier_cost(2);
        let c32 = net.barrier_cost(32);
        let c33 = net.barrier_cost(33);
        assert!(c32 > c2);
        // 32 ranks = 5 rounds, 33 ranks = 6 rounds
        assert_eq!(c32, net.barrier_base + net.barrier_per_round * 5);
        assert_eq!(c33, net.barrier_base + net.barrier_per_round * 6);
        // single rank barrier still costs the base software time
        assert_eq!(net.barrier_cost(1), net.barrier_base);
    }
}
