//! Small typed identifiers used throughout the simulator.

use std::fmt;

/// An MPI-style rank: one simulated process in a parallel job.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RankId(pub u32);

/// A physical compute node hosting one or more ranks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// A communicator (group of ranks). [`CommId::WORLD`] always contains
/// every rank of the job.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CommId(pub u32);

impl CommId {
    pub const WORLD: CommId = CommId(0);
}

/// Wildcard source for [`crate::program::Op::Recv`], like `MPI_ANY_SOURCE`.
pub const ANY_SOURCE: RankId = RankId(u32::MAX);
/// Wildcard tag for [`crate::program::Op::Recv`], like `MPI_ANY_TAG`.
pub const ANY_TAG: u32 = u32::MAX;

impl RankId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl fmt::Display for CommId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_bare_number() {
        assert_eq!(RankId(7).to_string(), "7");
        assert_eq!(NodeId(3).to_string(), "3");
        assert_eq!(CommId::WORLD.to_string(), "0");
    }

    #[test]
    fn wildcards_are_distinct_from_real_ids() {
        assert_ne!(ANY_SOURCE, RankId(0));
        assert_ne!(ANY_TAG, 0);
    }
}
