//! The operation model: what a simulated rank can do.
//!
//! A rank is driven by a [`RankProgram`]: a resumable state machine that,
//! given the result of its previous operation, emits the next one. This is
//! the simulator's equivalent of an application binary. Workloads
//! (`iotrace-workloads`), the LANL-Trace skew/drift job, and the //TRACE
//! replayer are all `RankProgram`s, so a captured trace can be replayed by
//! the very same engine that produced it.
//!
//! The `C`/`R` type parameters are the *custom* (I/O) operation and result
//! types supplied by the layer above (`iotrace-ioapi`); the engine itself
//! only understands compute, clock reads, barriers and messages.

use crate::ids::{CommId, RankId};
use crate::time::{SimDur, SimTime};

/// One operation issued by a rank.
#[derive(Clone, Debug, PartialEq)]
pub enum Op<C> {
    /// Burn CPU for the given duration.
    Compute(SimDur),
    /// Read this node's local (skewed/drifting) clock.
    ReadClock,
    /// Enter a barrier on the given communicator; completes when every
    /// member rank has arrived.
    Barrier(CommId),
    /// Eager point-to-point send. The sender resumes after the local send
    /// overhead; the message is delivered after network latency plus
    /// serialization time.
    Send { dst: RankId, bytes: u64, tag: u32 },
    /// Blocking receive matching `(src, tag)`; wildcards in [`crate::ids`].
    Recv { src: RankId, tag: u32 },
    /// A custom (I/O) operation executed by the installed
    /// [`Executor`](crate::engine::Executor).
    Io(C),
    /// Terminate this rank.
    Exit,
}

/// The result handed back to a program before it emits its next op.
#[derive(Clone, Debug, PartialEq)]
pub enum OpResult<R> {
    /// First activation: no previous operation.
    Start,
    /// A `Compute` finished.
    Computed,
    /// A `ReadClock` finished. `observed` is in the node's local clock,
    /// `truth` in global simulation time (programs modelling real tools
    /// must only use `observed`; `truth` exists for test oracles).
    Clock { observed: SimTime, truth: SimTime },
    /// A barrier completed. Enter/exit are reported in both true and
    /// node-observed time; observed values feed LANL-Trace's aggregate
    /// timing output.
    BarrierDone {
        entered: SimTime,
        exited: SimTime,
        entered_obs: SimTime,
        exited_obs: SimTime,
    },
    /// A `Send` was handed to the network.
    Sent,
    /// A `Recv` matched a message.
    Received { from: RankId, bytes: u64, tag: u32 },
    /// A custom (I/O) operation finished.
    Io(R),
}

impl<R> OpResult<R> {
    /// Convenience accessor for `Io` results.
    pub fn io(&self) -> Option<&R> {
        match self {
            OpResult::Io(r) => Some(r),
            _ => None,
        }
    }
}

/// A resumable per-rank state machine; see module docs.
pub trait RankProgram<C, R> {
    /// Produce the next operation given the result of the previous one.
    /// Returning [`Op::Exit`] finishes the rank; `next_op` will not be
    /// called again afterwards.
    fn next_op(&mut self, rank: RankId, last: &OpResult<R>) -> Op<C>;
}

/// Blanket impl so closures can serve as quick programs in tests.
impl<C, R, F> RankProgram<C, R> for F
where
    F: FnMut(RankId, &OpResult<R>) -> Op<C>,
{
    fn next_op(&mut self, rank: RankId, last: &OpResult<R>) -> Op<C> {
        self(rank, last)
    }
}

/// A program that replays a fixed list of operations, ignoring results.
/// The workhorse for simple tests and for straight-line replay.
pub struct OpList<C> {
    ops: std::vec::IntoIter<Op<C>>,
}

impl<C> OpList<C> {
    pub fn new(ops: Vec<Op<C>>) -> Self {
        OpList {
            ops: ops.into_iter(),
        }
    }
}

impl<C, R> RankProgram<C, R> for OpList<C> {
    fn next_op(&mut self, _rank: RankId, _last: &OpResult<R>) -> Op<C> {
        self.ops.next().unwrap_or(Op::Exit)
    }
}

/// Run several programs back to back as one rank program: when part *k*
/// returns [`Op::Exit`], part *k+1* starts (receiving [`OpResult::Start`]).
/// Only the final part's `Exit` terminates the rank. Used to wrap an
/// application with prologue/epilogue jobs (e.g. LANL-Trace's pre/post
/// clock-sampling MPI jobs).
pub struct Seq<C, R> {
    parts: Vec<Box<dyn RankProgram<C, R>>>,
    idx: usize,
}

impl<C, R> Seq<C, R> {
    pub fn new(parts: Vec<Box<dyn RankProgram<C, R>>>) -> Self {
        assert!(!parts.is_empty(), "Seq needs at least one part");
        Seq { parts, idx: 0 }
    }
}

impl<C, R> RankProgram<C, R> for Seq<C, R> {
    fn next_op(&mut self, rank: RankId, last: &OpResult<R>) -> Op<C> {
        loop {
            let op = self.parts[self.idx].next_op(rank, last);
            if matches!(op, Op::Exit) && self.idx + 1 < self.parts.len() {
                self.idx += 1;
                // The next part begins fresh.
                let op = self.parts[self.idx].next_op(rank, &OpResult::Start);
                if matches!(op, Op::Exit) && self.idx + 1 < self.parts.len() {
                    continue;
                }
                return op;
            }
            return op;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_chains_parts() {
        let a: OpList<()> = OpList::new(vec![Op::Compute(SimDur::from_secs(1))]);
        let b: OpList<()> = OpList::new(vec![Op::Compute(SimDur::from_secs(2))]);
        let mut s: Seq<(), ()> = Seq::new(vec![Box::new(a), Box::new(b)]);
        let r: OpResult<()> = OpResult::Start;
        assert_eq!(s.next_op(RankId(0), &r), Op::Compute(SimDur::from_secs(1)));
        // part a exits -> part b starts transparently
        assert_eq!(s.next_op(RankId(0), &r), Op::Compute(SimDur::from_secs(2)));
        assert_eq!(s.next_op(RankId(0), &r), Op::Exit);
        assert_eq!(s.next_op(RankId(0), &r), Op::Exit);
    }

    #[test]
    fn seq_skips_empty_middle_parts() {
        let a: OpList<()> = OpList::new(vec![]);
        let b: OpList<()> = OpList::new(vec![]);
        let c: OpList<()> = OpList::new(vec![Op::Compute(SimDur::from_secs(3))]);
        let mut s: Seq<(), ()> = Seq::new(vec![Box::new(a), Box::new(b), Box::new(c)]);
        let r: OpResult<()> = OpResult::Start;
        assert_eq!(s.next_op(RankId(0), &r), Op::Compute(SimDur::from_secs(3)));
        assert_eq!(s.next_op(RankId(0), &r), Op::Exit);
    }

    #[test]
    fn oplist_exhausts_to_exit() {
        let mut p: OpList<()> = OpList::new(vec![Op::Compute(SimDur::from_secs(1))]);
        let r: OpResult<()> = OpResult::Start;
        assert_eq!(
            RankProgram::<(), ()>::next_op(&mut p, RankId(0), &r),
            Op::Compute(SimDur::from_secs(1))
        );
        assert_eq!(
            RankProgram::<(), ()>::next_op(&mut p, RankId(0), &r),
            Op::Exit
        );
        assert_eq!(
            RankProgram::<(), ()>::next_op(&mut p, RankId(0), &r),
            Op::Exit
        );
    }

    #[test]
    fn closure_is_a_program() {
        let mut calls = 0;
        {
            let mut prog = |_rank: RankId, _last: &OpResult<()>| -> Op<()> {
                calls += 1;
                Op::Exit
            };
            let _ = prog.next_op(RankId(3), &OpResult::Start);
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn io_accessor() {
        let r: OpResult<u32> = OpResult::Io(9);
        assert_eq!(r.io(), Some(&9));
        let s: OpResult<u32> = OpResult::Computed;
        assert_eq!(s.io(), None);
    }
}
