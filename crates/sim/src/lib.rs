//! # iotrace-sim — deterministic discrete-event HPC cluster
//!
//! The substrate every experiment in this workspace runs on: a simulated
//! parallel cluster with MPI-style ranks, barriers and point-to-point
//! messages, per-node clocks exhibiting skew and drift, and a pluggable
//! [`engine::Executor`] for I/O operations.
//!
//! The design goal is *determinism*: the engine is single-threaded,
//! tie-breaks simultaneous events by insertion order, and draws randomness
//! only from [`rng::DetRng`]. Running the same programs twice yields
//! bit-identical [`engine::RunReport`]s — the property that makes
//! //TRACE-style throttling experiments (diffing a perturbed run against a
//! baseline run) meaningful.
//!
//! ## Quick tour
//!
//! ```
//! use iotrace_sim::prelude::*;
//!
//! // Two ranks, ideal network; each computes then meets at a barrier.
//! let cfg = ClusterConfig::new(2).with_net(NetworkParams::ideal());
//! let mut engine = Engine::new(cfg, NullExecutor);
//! let mk = |ms| -> Box<dyn RankProgram<(), ()>> {
//!     Box::new(OpList::new(vec![
//!         Op::Compute(SimDur::from_millis(ms)),
//!         Op::Barrier(CommId::WORLD),
//!         Op::Exit,
//!     ]))
//! };
//! let report = engine.run(vec![mk(10), mk(30)]);
//! assert!(report.is_clean());
//! assert_eq!(report.elapsed, SimDur::from_millis(30));
//! ```

pub mod checkpoint;
pub mod clock;
pub mod engine;
pub mod fault;
pub mod ids;
pub mod net;
pub mod pool;
pub mod program;
pub mod rng;
pub mod shard;
pub mod time;

/// One-stop imports for downstream crates and examples.
pub mod prelude {
    // `checkpoint::Checkpoint` is deliberately NOT in the prelude: the
    // name collides with the `Checkpoint` workload re-exported through
    // the umbrella crate's prelude. Use the full path.
    pub use crate::checkpoint::CheckpointError;
    pub use crate::clock::NodeClock;
    pub use crate::engine::{
        BarrierEntry, BarrierRecord, ClusterConfig, Engine, EngineObserver, ExecCtx, ExecOutcome,
        Executor, NullExecutor, NullObserver, RankStats, RunLimits, RunReport,
    };
    pub use crate::fault::{DegradedWindow, Fault, FaultPlan};
    pub use crate::ids::{CommId, NodeId, RankId, ANY_SOURCE, ANY_TAG};
    pub use crate::net::NetworkParams;
    pub use crate::program::{Op, OpList, OpResult, RankProgram, Seq};
    pub use crate::rng::DetRng;
    pub use crate::time::{SimDur, SimTime};
}
