//! Deterministic fault injection.
//!
//! The paper's taxonomy scores tracing frameworks on how they behave when
//! tracing goes *wrong* — LANL-Trace per-rank files get lost or truncated,
//! Tracefs buffers overflow, //TRACE dependency discovery misses edges,
//! and the parallel file system's storage servers slow down or drop out.
//! A [`FaultPlan`] schedules those events at simulated timestamps. Plans
//! are plain data: each consuming layer (fsmodel, the tracers, the
//! harness) queries the plan for the faults it knows how to apply.
//!
//! Determinism is the point. Canned plans are generated from a seed via
//! [`crate::rng::DetRng`], so the same seed always produces the same
//! fault sequence, and a faulted run is as bit-for-bit reproducible as a
//! clean one.

use crate::rng::DetRng;
use crate::time::{SimDur, SimTime};

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq)]
pub enum Fault {
    /// The node dies at `at`: its trace records past that point are lost.
    NodeCrash { node: u32, at: SimTime },
    /// A storage server serves requests `factor`× slower inside the window.
    StorageSlowdown {
        server: usize,
        from: SimTime,
        until: SimTime,
        factor: f64,
    },
    /// A storage server answers nothing inside the window; clients retry
    /// per their [`RetryPolicy`](DegradedWindow) and eventually block.
    StorageUnavailable {
        server: usize,
        from: SimTime,
        until: SimTime,
    },
    /// The tracer's in-memory buffer overflows on `node` at `at`; records
    /// buffered but not yet flushed are dropped (Tracefs-style loss).
    TracerOverflow { node: u32, at: SimTime },
    /// A whole per-rank trace file is lost (LANL-Trace-style loss).
    TraceFileLoss { rank: u32 },
    /// A per-rank trace file is truncated, keeping only the leading
    /// `keep` fraction of its records.
    TraceTruncation { rank: u32, keep: f64 },
    /// //TRACE dependency discovery loses this fraction of its edges.
    DepEdgeLoss { fraction: f64 },
    /// The whole capture run is killed after `at_event` simulation events
    /// (kill -9 of the workbench itself). Checkpoint/resume turns this
    /// into an end-to-end crash-recovery test: sealed journal segments
    /// and the last checkpoint survive, everything else is lost.
    RunAbort { at_event: u64 },
    /// A collector client vanishes mid-frame after sending `at_frame`
    /// frames — the connection dies with a half-written frame on the
    /// wire, no `Bye`. The collector must detect the torn frame, seal
    /// what arrived, and mark the session degraded.
    ClientDisconnect { client: u32, at_frame: u64 },
    /// The collector's drain side runs `factor`× slower during the tick
    /// window — a slow consumer. The bounded ingest queue fills and
    /// clients see explicit backpressure (and back off per their
    /// `RetryPolicy`).
    SlowConsumer {
        from_tick: u64,
        until_tick: u64,
        factor: f64,
    },
    /// The collector process itself is killed after draining `at_frame`
    /// frames. Every live session's journal is torn mid-segment; restart
    /// recovery (`iotrace serve` startup fsck) must salvage all sealed
    /// segments and stamp accurate completeness.
    CollectorKill { at_frame: u64 },
    /// `client`'s live session is drained from its source collector and
    /// re-handshaken onto the federation partner once `at_frame` record
    /// frames have been applied: the source seals its spool and ships
    /// the sealed segments plus the session card over the channel
    /// protocol (`Migrate`/`Handoff` frames).
    CollectorMigrate { client: u32, at_frame: u64 },
    /// The federation *partner* collector (the migration destination) is
    /// killed after draining `at_frame` frames — mid-handoff when timed
    /// inside the migration window. Federated recovery must reunite the
    /// session from the two spools without losing a sealed record.
    CollectorPartnerKill { at_frame: u64 },
}

/// A degradation window over one striped storage server, derived from
/// the storage faults of a plan. `slowdown` multiplies service time;
/// `unavailable` means requests fail until the window closes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradedWindow {
    pub server: usize,
    pub from: SimTime,
    pub until: SimTime,
    pub slowdown: f64,
    pub unavailable: bool,
}

impl DegradedWindow {
    /// Whether the window covers instant `t`.
    pub fn covers(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// A seeded, deterministic fault schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    pub faults: Vec<Fault>,
}

/// Names accepted by [`FaultPlan::named`], in display order.
pub const CANNED_PLANS: &[&str] = &[
    "clean",
    "lossy-tracer",
    "degraded-storage",
    "collector-chaos",
    "federation-chaos",
];

/// Every fault kind the plan-file parser accepts, sorted — printed
/// verbatim by unknown-kind errors so a typo'd plan line names its own
/// fix (the same UX as `lint --only`'s unknown-pass error).
pub const FAULT_KINDS: &[&str] = &[
    "client-disconnect",
    "collector-kill",
    "collector-migrate",
    "collector-partner-kill",
    "dep-edge-loss",
    "node-crash",
    "run-abort",
    "slow-consumer",
    "storage-slowdown",
    "storage-unavailable",
    "trace-file-loss",
    "trace-truncation",
    "tracer-overflow",
];

impl FaultPlan {
    /// The empty plan: nothing goes wrong.
    pub fn clean() -> Self {
        FaultPlan::default()
    }

    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
    }

    /// A canned plan by name (`clean`, `lossy-tracer`, `degraded-storage`),
    /// generated for the standard demo cluster (4 ranks, 28 servers).
    pub fn named(name: &str, seed: u64) -> Option<Self> {
        match name {
            "clean" => Some(FaultPlan::clean()),
            "lossy-tracer" => Some(FaultPlan::lossy_tracer(seed, 4)),
            "degraded-storage" => Some(FaultPlan::degraded_storage(seed, 28)),
            "collector-chaos" => Some(FaultPlan::collector_chaos(seed, 16)),
            "federation-chaos" => Some(FaultPlan::federation_chaos(seed, 16)),
            _ => None,
        }
    }

    /// Canned plan: every tracer loses data somewhere. One rank's file is
    /// lost outright, another's is truncated, one node's buffer overflows,
    /// and dependency discovery drops a fraction of its edges.
    pub fn lossy_tracer(seed: u64, ranks: u32) -> Self {
        let ranks = ranks.max(2);
        let mut rng = DetRng::new(seed).fork(0x1055);
        let lost = rng.below(ranks as u64) as u32;
        let truncated = (lost + 1 + rng.below(ranks as u64 - 1) as u32) % ranks;
        let keep = 0.3 + 0.5 * rng.unit_f64();
        let overflow_node = rng.below(ranks as u64) as u32;
        let overflow_at = SimTime::from_millis(20 + rng.below(180));
        let fraction = 0.1 + 0.3 * rng.unit_f64();
        FaultPlan {
            seed,
            faults: vec![
                Fault::TraceFileLoss { rank: lost },
                Fault::TraceTruncation {
                    rank: truncated,
                    keep,
                },
                Fault::TracerOverflow {
                    node: overflow_node,
                    at: overflow_at,
                },
                Fault::DepEdgeLoss { fraction },
            ],
        }
    }

    /// Canned plan: the parallel file system misbehaves. One server slows
    /// down for a long window and another drops out entirely for a short
    /// one, exercising the retry/backoff path.
    pub fn degraded_storage(seed: u64, servers: usize) -> Self {
        let servers = servers.max(2);
        let mut rng = DetRng::new(seed).fork(0xdeb7);
        let slow = rng.below(servers as u64) as usize;
        let dead = (slow + 1 + rng.below(servers as u64 - 1) as usize) % servers;
        let factor = 2.0 + 6.0 * rng.unit_f64();
        let slow_from = SimTime::from_millis(rng.below(50));
        let slow_until = slow_from + SimDur::from_millis(200 + rng.below(400));
        let dead_from = SimTime::from_millis(10 + rng.below(100));
        let dead_until = dead_from + SimDur::from_millis(30 + rng.below(80));
        FaultPlan {
            seed,
            faults: vec![
                Fault::StorageSlowdown {
                    server: slow,
                    from: slow_from,
                    until: slow_until,
                    factor,
                },
                Fault::StorageUnavailable {
                    server: dead,
                    from: dead_from,
                    until: dead_until,
                },
            ],
        }
    }

    /// Canned plan: the collector has a bad day. Two clients vanish
    /// mid-frame at different points, and the drain side stalls through
    /// a slow-consumer window so every surviving client tastes
    /// backpressure. No collector kill — a chaos soak still completes;
    /// add `collector-kill at-frame=N` (or `--kill-at-frame`) on top to
    /// exercise restart recovery.
    pub fn collector_chaos(seed: u64, clients: u32) -> Self {
        let clients = clients.max(3);
        let mut rng = DetRng::new(seed).fork(0xc011);
        let gone_a = rng.below(clients as u64) as u32;
        let gone_b = (gone_a + 1 + rng.below(clients as u64 - 1) as u32) % clients;
        let frame_a = 2 + rng.below(30);
        let frame_b = 2 + rng.below(30);
        let from_tick = 10 + rng.below(40);
        let until_tick = from_tick + 30 + rng.below(120);
        let factor = 3.0 + 5.0 * rng.unit_f64();
        FaultPlan {
            seed,
            faults: vec![
                Fault::ClientDisconnect {
                    client: gone_a,
                    at_frame: frame_a,
                },
                Fault::ClientDisconnect {
                    client: gone_b,
                    at_frame: frame_b,
                },
                Fault::SlowConsumer {
                    from_tick,
                    until_tick,
                    factor,
                },
            ],
        }
    }

    /// Canned plan: a two-collector federation shuffles work around.
    /// Three distinct clients migrate to the partner collector at
    /// different frame counts, and the drain side stalls through a
    /// slow-consumer window so handoffs contend with backpressure. No
    /// kill — a federation soak still completes; layer
    /// `collector-partner-kill at-frame=N` (or the harness's
    /// source-kill knob) on top to exercise split-spool recovery.
    pub fn federation_chaos(seed: u64, clients: u32) -> Self {
        let clients = clients.max(4);
        let mut rng = DetRng::new(seed).fork(0xfed0);
        let move_a = rng.below(clients as u64) as u32;
        let move_b = (move_a + 1 + rng.below(clients as u64 - 1) as u32) % clients;
        let mut move_c = (move_b + 1 + rng.below(clients as u64 - 1) as u32) % clients;
        if move_c == move_a {
            move_c = (move_c + 1) % clients;
            if move_c == move_b {
                move_c = (move_c + 1) % clients;
            }
        }
        let frame_a = 2 + rng.below(20);
        let frame_b = 2 + rng.below(20);
        let frame_c = 2 + rng.below(20);
        let from_tick = 10 + rng.below(40);
        let until_tick = from_tick + 30 + rng.below(120);
        let factor = 3.0 + 5.0 * rng.unit_f64();
        FaultPlan {
            seed,
            faults: vec![
                Fault::CollectorMigrate {
                    client: move_a,
                    at_frame: frame_a,
                },
                Fault::CollectorMigrate {
                    client: move_b,
                    at_frame: frame_b,
                },
                Fault::CollectorMigrate {
                    client: move_c,
                    at_frame: frame_c,
                },
                Fault::SlowConsumer {
                    from_tick,
                    until_tick,
                    factor,
                },
            ],
        }
    }

    /// An independent random stream tied to this plan's seed. Consumers
    /// salt with a domain constant so their draws never interfere.
    pub fn rng(&self, salt: u64) -> DetRng {
        DetRng::new(self.seed).fork(salt)
    }

    // ----- per-layer queries -----

    /// Storage-server degradation windows, for `fsmodel`.
    pub fn storage_windows(&self) -> Vec<DegradedWindow> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::StorageSlowdown {
                    server,
                    from,
                    until,
                    factor,
                } => Some(DegradedWindow {
                    server,
                    from,
                    until,
                    slowdown: factor,
                    unavailable: false,
                }),
                Fault::StorageUnavailable {
                    server,
                    from,
                    until,
                } => Some(DegradedWindow {
                    server,
                    from,
                    until,
                    slowdown: 1.0,
                    unavailable: true,
                }),
                _ => None,
            })
            .collect()
    }

    /// When (if ever) `node` crashes.
    pub fn crash_time(&self, node: u32) -> Option<SimTime> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::NodeCrash { node: n, at } if n == node => Some(at),
                _ => None,
            })
            .min()
    }

    /// Buffer-overflow instants scheduled for `node`, ascending.
    pub fn overflow_times(&self, node: u32) -> Vec<SimTime> {
        let mut v: Vec<SimTime> = self
            .faults
            .iter()
            .filter_map(|f| match *f {
                Fault::TracerOverflow { node: n, at } if n == node => Some(at),
                _ => None,
            })
            .collect();
        v.sort();
        v
    }

    /// Whether `rank`'s whole trace file is lost.
    pub fn file_lost(&self, rank: u32) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(*f, Fault::TraceFileLoss { rank: r } if r == rank))
    }

    /// The keep-fraction for `rank`'s truncated file, if truncated.
    pub fn truncation(&self, rank: u32) -> Option<f64> {
        self.faults.iter().find_map(|f| match *f {
            Fault::TraceTruncation { rank: r, keep } if r == rank => Some(keep),
            _ => None,
        })
    }

    /// The event index at which the run is killed, if any ([`Fault::RunAbort`];
    /// earliest wins when several are scheduled).
    pub fn abort_event(&self) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::RunAbort { at_event } => Some(at_event),
                _ => None,
            })
            .min()
    }

    /// This plan with every [`Fault::RunAbort`] removed — what the resumed
    /// run executes, since the kill already happened.
    pub fn without_aborts(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            faults: self
                .faults
                .iter()
                .filter(|f| !matches!(f, Fault::RunAbort { .. }))
                .cloned()
                .collect(),
        }
    }

    /// The frame count after which `client` vanishes mid-frame, if it
    /// does ([`Fault::ClientDisconnect`]; earliest wins).
    pub fn disconnect_frame(&self, client: u32) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::ClientDisconnect {
                    client: c,
                    at_frame,
                } if c == client => Some(at_frame),
                _ => None,
            })
            .min()
    }

    /// Slow-consumer windows for the collector's drain loop, as
    /// `(from_tick, until_tick, factor)` triples.
    pub fn consumer_stalls(&self) -> Vec<(u64, u64, f64)> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::SlowConsumer {
                    from_tick,
                    until_tick,
                    factor,
                } => Some((from_tick, until_tick, factor)),
                _ => None,
            })
            .collect()
    }

    /// The drained-frame count at which the collector is killed, if it
    /// is ([`Fault::CollectorKill`]; earliest wins).
    pub fn collector_kill_frame(&self) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::CollectorKill { at_frame } => Some(at_frame),
                _ => None,
            })
            .min()
    }

    /// The applied-frame count after which `client`'s session migrates
    /// to the federation partner, if it does ([`Fault::CollectorMigrate`];
    /// earliest wins).
    pub fn migrate_frame(&self, client: u32) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::CollectorMigrate {
                    client: c,
                    at_frame,
                } if c == client => Some(at_frame),
                _ => None,
            })
            .min()
    }

    /// The drained-frame count at which the federation *partner*
    /// collector is killed, if it is ([`Fault::CollectorPartnerKill`];
    /// earliest wins).
    pub fn partner_kill_frame(&self) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::CollectorPartnerKill { at_frame } => Some(at_frame),
                _ => None,
            })
            .min()
    }

    /// The fraction of dependency edges //TRACE loses (0.0 when none).
    pub fn edge_loss(&self) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::DepEdgeLoss { fraction } => Some(fraction),
                _ => None,
            })
            .fold(0.0, f64::max)
            .clamp(0.0, 1.0)
    }

    // ----- text form -----

    /// Serialize to the plan file format parsed by [`FaultPlan::parse`].
    pub fn to_text(&self) -> String {
        let mut out = String::from("# iotrace fault plan v1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        for f in &self.faults {
            match *f {
                Fault::NodeCrash { node, at } => {
                    out.push_str(&format!(
                        "node-crash node={} at={}ns\n",
                        node,
                        at.as_nanos()
                    ));
                }
                Fault::StorageSlowdown {
                    server,
                    from,
                    until,
                    factor,
                } => {
                    out.push_str(&format!(
                        "storage-slowdown server={} from={}ns until={}ns factor={}\n",
                        server,
                        from.as_nanos(),
                        until.as_nanos(),
                        factor
                    ));
                }
                Fault::StorageUnavailable {
                    server,
                    from,
                    until,
                } => {
                    out.push_str(&format!(
                        "storage-unavailable server={} from={}ns until={}ns\n",
                        server,
                        from.as_nanos(),
                        until.as_nanos()
                    ));
                }
                Fault::TracerOverflow { node, at } => {
                    out.push_str(&format!(
                        "tracer-overflow node={} at={}ns\n",
                        node,
                        at.as_nanos()
                    ));
                }
                Fault::TraceFileLoss { rank } => {
                    out.push_str(&format!("trace-file-loss rank={}\n", rank));
                }
                Fault::TraceTruncation { rank, keep } => {
                    out.push_str(&format!("trace-truncation rank={} keep={}\n", rank, keep));
                }
                Fault::DepEdgeLoss { fraction } => {
                    out.push_str(&format!("dep-edge-loss fraction={}\n", fraction));
                }
                Fault::RunAbort { at_event } => {
                    out.push_str(&format!("run-abort at-event={}\n", at_event));
                }
                Fault::ClientDisconnect { client, at_frame } => {
                    out.push_str(&format!(
                        "client-disconnect client={} at-frame={}\n",
                        client, at_frame
                    ));
                }
                Fault::SlowConsumer {
                    from_tick,
                    until_tick,
                    factor,
                } => {
                    out.push_str(&format!(
                        "slow-consumer from-tick={} until-tick={} factor={}\n",
                        from_tick, until_tick, factor
                    ));
                }
                Fault::CollectorKill { at_frame } => {
                    out.push_str(&format!("collector-kill at-frame={}\n", at_frame));
                }
                Fault::CollectorMigrate { client, at_frame } => {
                    out.push_str(&format!(
                        "collector-migrate client={} at-frame={}\n",
                        client, at_frame
                    ));
                }
                Fault::CollectorPartnerKill { at_frame } => {
                    out.push_str(&format!("collector-partner-kill at-frame={}\n", at_frame));
                }
            }
        }
        out
    }

    /// Parse a plan file. Lines are `<kind> key=value ...`; `#` comments
    /// and blank lines are ignored. Durations accept `ns`/`us`/`ms`/`s`
    /// suffixes (bare integers are nanoseconds).
    pub fn parse(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::clean();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = idx + 1;
            let err = |message: String, token: &str| PlanParseError {
                line: lineno,
                message,
                token: Some(token.to_string()),
            };
            let mut parts = line.split_whitespace();
            let kind = parts.next().unwrap_or("");
            if kind == "seed" {
                let v = parts
                    .next()
                    .ok_or_else(|| err("seed needs a value".into(), kind))?;
                plan.seed = v.parse().map_err(|_| err(format!("bad seed `{v}`"), v))?;
                continue;
            }
            let mut fields = Fields::default();
            for part in parts {
                let (k, v) = part
                    .split_once('=')
                    .ok_or_else(|| err(format!("expected key=value, got `{part}`"), part))?;
                fields.pairs.push((k.to_string(), v.to_string()));
            }
            match kind {
                "node-crash" => plan.faults.push(Fault::NodeCrash {
                    node: fields.int(lineno, "node")? as u32,
                    at: fields.time(lineno, "at")?,
                }),
                "storage-slowdown" => plan.faults.push(Fault::StorageSlowdown {
                    server: fields.int(lineno, "server")? as usize,
                    from: fields.time(lineno, "from")?,
                    until: fields.time(lineno, "until")?,
                    factor: fields.float(lineno, "factor")?,
                }),
                "storage-unavailable" => plan.faults.push(Fault::StorageUnavailable {
                    server: fields.int(lineno, "server")? as usize,
                    from: fields.time(lineno, "from")?,
                    until: fields.time(lineno, "until")?,
                }),
                "tracer-overflow" => plan.faults.push(Fault::TracerOverflow {
                    node: fields.int(lineno, "node")? as u32,
                    at: fields.time(lineno, "at")?,
                }),
                "trace-file-loss" => plan.faults.push(Fault::TraceFileLoss {
                    rank: fields.int(lineno, "rank")? as u32,
                }),
                "trace-truncation" => plan.faults.push(Fault::TraceTruncation {
                    rank: fields.int(lineno, "rank")? as u32,
                    keep: fields.float(lineno, "keep")?,
                }),
                "dep-edge-loss" => plan.faults.push(Fault::DepEdgeLoss {
                    fraction: fields.float(lineno, "fraction")?,
                }),
                "run-abort" => plan.faults.push(Fault::RunAbort {
                    at_event: fields.int(lineno, "at-event")?,
                }),
                "client-disconnect" => plan.faults.push(Fault::ClientDisconnect {
                    client: fields.int(lineno, "client")? as u32,
                    at_frame: fields.int(lineno, "at-frame")?,
                }),
                "slow-consumer" => plan.faults.push(Fault::SlowConsumer {
                    from_tick: fields.int(lineno, "from-tick")?,
                    until_tick: fields.int(lineno, "until-tick")?,
                    factor: fields.float(lineno, "factor")?,
                }),
                "collector-kill" => plan.faults.push(Fault::CollectorKill {
                    at_frame: fields.int(lineno, "at-frame")?,
                }),
                "collector-migrate" => plan.faults.push(Fault::CollectorMigrate {
                    client: fields.int(lineno, "client")? as u32,
                    at_frame: fields.int(lineno, "at-frame")?,
                }),
                "collector-partner-kill" => plan.faults.push(Fault::CollectorPartnerKill {
                    at_frame: fields.int(lineno, "at-frame")?,
                }),
                other => {
                    return Err(PlanParseError {
                        line: lineno,
                        message: format!(
                            "unknown fault kind `{other}` (known: {})",
                            FAULT_KINDS.join(", ")
                        ),
                        token: Some(other.to_string()),
                    })
                }
            }
        }
        Ok(plan)
    }

    /// A human-oriented summary for `iotrace faults`.
    pub fn describe(&self) -> String {
        let mut out = format!("fault plan (seed {}):\n", self.seed);
        if self.is_clean() {
            out.push_str("  clean — no faults scheduled\n");
            return out;
        }
        for f in &self.faults {
            let line = match *f {
                Fault::NodeCrash { node, at } => {
                    format!("node {} crashes at {:.3}s", node, at.as_secs_f64())
                }
                Fault::StorageSlowdown {
                    server,
                    from,
                    until,
                    factor,
                } => format!(
                    "storage server {} runs {:.1}x slower during [{:.3}s, {:.3}s)",
                    server,
                    factor,
                    from.as_secs_f64(),
                    until.as_secs_f64()
                ),
                Fault::StorageUnavailable {
                    server,
                    from,
                    until,
                } => format!(
                    "storage server {} unavailable during [{:.3}s, {:.3}s)",
                    server,
                    from.as_secs_f64(),
                    until.as_secs_f64()
                ),
                Fault::TracerOverflow { node, at } => format!(
                    "tracer buffer on node {} overflows at {:.3}s (buffered records dropped)",
                    node,
                    at.as_secs_f64()
                ),
                Fault::TraceFileLoss { rank } => {
                    format!("rank {} trace file lost entirely", rank)
                }
                Fault::TraceTruncation { rank, keep } => format!(
                    "rank {} trace file truncated to the leading {:.0}% of records",
                    rank,
                    keep * 100.0
                ),
                Fault::DepEdgeLoss { fraction } => format!(
                    "dependency discovery loses {:.0}% of causal edges",
                    fraction * 100.0
                ),
                Fault::RunAbort { at_event } => {
                    format!("capture run killed after {} simulation events", at_event)
                }
                Fault::ClientDisconnect { client, at_frame } => format!(
                    "collector client {} vanishes mid-frame after {} frames (no Bye)",
                    client, at_frame
                ),
                Fault::SlowConsumer {
                    from_tick,
                    until_tick,
                    factor,
                } => format!(
                    "collector drains {:.1}x slower during ticks [{}, {}) (backpressure)",
                    factor, from_tick, until_tick
                ),
                Fault::CollectorKill { at_frame } => format!(
                    "collector process killed after draining {} frames (journals torn)",
                    at_frame
                ),
                Fault::CollectorMigrate { client, at_frame } => format!(
                    "client {} migrates to the partner collector after {} applied frames",
                    client, at_frame
                ),
                Fault::CollectorPartnerKill { at_frame } => format!(
                    "partner collector killed after draining {} frames (handoff torn)",
                    at_frame
                ),
            };
            out.push_str("  - ");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// A plan file failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanParseError {
    pub line: usize,
    pub message: String,
    /// The offending token, when one can be pinned down (a bad value, an
    /// unknown kind, a malformed pair) — shown so the user can grep the
    /// plan file for it.
    pub token: Option<String>,
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)?;
        if let Some(t) = &self.token {
            write!(f, " (offending token: `{t}`)")?;
        }
        Ok(())
    }
}

impl std::error::Error for PlanParseError {}

#[derive(Default)]
struct Fields {
    pairs: Vec<(String, String)>,
}

impl Fields {
    fn get(&self, line: usize, key: &str) -> Result<&str, PlanParseError> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| PlanParseError {
                line,
                message: format!("missing field `{key}`"),
                token: Some(key.to_string()),
            })
    }

    fn int(&self, line: usize, key: &str) -> Result<u64, PlanParseError> {
        let v = self.get(line, key)?;
        v.parse().map_err(|_| PlanParseError {
            line,
            message: format!("bad integer `{v}` for `{key}`"),
            token: Some(v.to_string()),
        })
    }

    fn float(&self, line: usize, key: &str) -> Result<f64, PlanParseError> {
        let v = self.get(line, key)?;
        v.parse().map_err(|_| PlanParseError {
            line,
            message: format!("bad number `{v}` for `{key}`"),
            token: Some(v.to_string()),
        })
    }

    fn time(&self, line: usize, key: &str) -> Result<SimTime, PlanParseError> {
        let v = self.get(line, key)?;
        let (digits, scale) = if let Some(d) = v.strip_suffix("ns") {
            (d, 1u64)
        } else if let Some(d) = v.strip_suffix("us") {
            (d, 1_000)
        } else if let Some(d) = v.strip_suffix("ms") {
            (d, 1_000_000)
        } else if let Some(d) = v.strip_suffix('s') {
            (d, 1_000_000_000)
        } else {
            (v, 1)
        };
        let n: u64 = digits.parse().map_err(|_| PlanParseError {
            line,
            message: format!("bad duration `{v}` for `{key}`"),
            token: Some(v.to_string()),
        })?;
        Ok(SimTime::from_nanos(n.saturating_mul(scale)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_plans_are_seed_deterministic() {
        for name in CANNED_PLANS {
            let a = FaultPlan::named(name, 42).expect("canned plan exists");
            let b = FaultPlan::named(name, 42).expect("canned plan exists");
            assert_eq!(a, b, "{name} must be reproducible");
            assert_eq!(a.to_text(), b.to_text());
        }
        let a = FaultPlan::lossy_tracer(1, 4);
        let b = FaultPlan::lossy_tracer(2, 4);
        assert_ne!(a, b, "different seeds should give different plans");
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let plan = FaultPlan {
            seed: 9,
            faults: vec![
                Fault::NodeCrash {
                    node: 2,
                    at: SimTime::from_millis(250),
                },
                Fault::StorageSlowdown {
                    server: 5,
                    from: SimTime::ZERO,
                    until: SimTime::from_millis(800),
                    factor: 4.0,
                },
                Fault::StorageUnavailable {
                    server: 3,
                    from: SimTime::from_millis(100),
                    until: SimTime::from_millis(300),
                },
                Fault::TracerOverflow {
                    node: 1,
                    at: SimTime::from_millis(150),
                },
                Fault::TraceFileLoss { rank: 3 },
                Fault::TraceTruncation { rank: 1, keep: 0.6 },
                Fault::DepEdgeLoss { fraction: 0.25 },
                Fault::RunAbort { at_event: 4096 },
                Fault::ClientDisconnect {
                    client: 7,
                    at_frame: 12,
                },
                Fault::SlowConsumer {
                    from_tick: 30,
                    until_tick: 90,
                    factor: 4.5,
                },
                Fault::CollectorKill { at_frame: 200 },
                Fault::CollectorMigrate {
                    client: 5,
                    at_frame: 18,
                },
                Fault::CollectorPartnerKill { at_frame: 64 },
            ],
        };
        let text = plan.to_text();
        let parsed = FaultPlan::parse(&text).expect("roundtrip parse");
        assert_eq!(parsed, plan);
    }

    #[test]
    fn collector_fault_queries() {
        let plan = FaultPlan {
            seed: 1,
            faults: vec![
                Fault::ClientDisconnect {
                    client: 3,
                    at_frame: 9,
                },
                Fault::ClientDisconnect {
                    client: 3,
                    at_frame: 4,
                },
                Fault::SlowConsumer {
                    from_tick: 5,
                    until_tick: 25,
                    factor: 8.0,
                },
                Fault::CollectorKill { at_frame: 77 },
                Fault::CollectorKill { at_frame: 50 },
            ],
        };
        assert_eq!(plan.disconnect_frame(3), Some(4), "earliest wins");
        assert_eq!(plan.disconnect_frame(0), None);
        assert_eq!(plan.consumer_stalls(), vec![(5, 25, 8.0)]);
        assert_eq!(plan.collector_kill_frame(), Some(50), "earliest wins");
        assert_eq!(FaultPlan::clean().collector_kill_frame(), None);
    }

    #[test]
    fn collector_chaos_is_canned_and_seed_deterministic() {
        let a = FaultPlan::named("collector-chaos", 42).expect("canned");
        let b = FaultPlan::collector_chaos(42, 16);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::collector_chaos(43, 16));
        assert_eq!(a.faults.len(), 3);
        assert!(a.collector_kill_frame().is_none(), "chaos soaks complete");
        assert_eq!(a.consumer_stalls().len(), 1);
        // The two disconnecting clients are distinct.
        let gone: Vec<u32> = a
            .faults
            .iter()
            .filter_map(|f| match *f {
                Fault::ClientDisconnect { client, .. } => Some(client),
                _ => None,
            })
            .collect();
        assert_eq!(gone.len(), 2);
        assert_ne!(gone[0], gone[1]);
    }

    #[test]
    fn federation_fault_queries() {
        let plan = FaultPlan {
            seed: 2,
            faults: vec![
                Fault::CollectorMigrate {
                    client: 4,
                    at_frame: 11,
                },
                Fault::CollectorMigrate {
                    client: 4,
                    at_frame: 6,
                },
                Fault::CollectorPartnerKill { at_frame: 33 },
                Fault::CollectorPartnerKill { at_frame: 21 },
            ],
        };
        assert_eq!(plan.migrate_frame(4), Some(6), "earliest wins");
        assert_eq!(plan.migrate_frame(0), None);
        assert_eq!(plan.partner_kill_frame(), Some(21), "earliest wins");
        assert_eq!(FaultPlan::clean().partner_kill_frame(), None);
    }

    #[test]
    fn federation_chaos_is_canned_and_seed_deterministic() {
        let a = FaultPlan::named("federation-chaos", 42).expect("canned");
        let b = FaultPlan::federation_chaos(42, 16);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::federation_chaos(43, 16));
        assert_eq!(a.faults.len(), 4);
        assert!(a.partner_kill_frame().is_none(), "chaos soaks complete");
        assert_eq!(a.consumer_stalls().len(), 1);
        // The three migrating clients are pairwise distinct.
        let moved: Vec<u32> = a
            .faults
            .iter()
            .filter_map(|f| match *f {
                Fault::CollectorMigrate { client, .. } => Some(client),
                _ => None,
            })
            .collect();
        assert_eq!(moved.len(), 3);
        assert_ne!(moved[0], moved[1]);
        assert_ne!(moved[1], moved[2]);
        assert_ne!(moved[0], moved[2]);
    }

    #[test]
    fn unknown_kind_error_lists_the_sorted_kinds() {
        let err = FaultPlan::parse("colector-kill at-frame=3\n").unwrap_err();
        assert!(err.message.contains("unknown fault kind `colector-kill`"));
        for kind in FAULT_KINDS {
            assert!(err.message.contains(kind), "error must list {kind}");
        }
        let mut sorted = FAULT_KINDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, FAULT_KINDS, "FAULT_KINDS stays sorted");
        // Every kind the list promises actually parses (with the right
        // fields) — the list and the parser cannot drift apart.
        let probe = "client-disconnect client=0 at-frame=1\n\
                     collector-kill at-frame=1\n\
                     collector-migrate client=0 at-frame=1\n\
                     collector-partner-kill at-frame=1\n\
                     dep-edge-loss fraction=0.1\n\
                     node-crash node=0 at=1ms\n\
                     run-abort at-event=1\n\
                     slow-consumer from-tick=0 until-tick=1 factor=2\n\
                     storage-slowdown server=0 from=0 until=1ms factor=2\n\
                     storage-unavailable server=0 from=0 until=1ms\n\
                     trace-file-loss rank=0\n\
                     trace-truncation rank=0 keep=0.5\n\
                     tracer-overflow node=0 at=1ms\n";
        let plan = FaultPlan::parse(probe).expect("every listed kind parses");
        assert_eq!(plan.faults.len(), FAULT_KINDS.len());
    }

    #[test]
    fn run_abort_queries_and_stripping() {
        let plan = FaultPlan {
            seed: 3,
            faults: vec![
                Fault::RunAbort { at_event: 900 },
                Fault::TraceFileLoss { rank: 0 },
                Fault::RunAbort { at_event: 120 },
            ],
        };
        assert_eq!(plan.abort_event(), Some(120), "earliest abort wins");
        let resumed = plan.without_aborts();
        assert_eq!(resumed.abort_event(), None);
        assert_eq!(resumed.seed, 3);
        assert_eq!(resumed.faults, vec![Fault::TraceFileLoss { rank: 0 }]);
        assert_eq!(FaultPlan::clean().abort_event(), None);
    }

    #[test]
    fn parse_accepts_suffixes_and_comments() {
        let plan = FaultPlan::parse(
            "# comment\n\nseed 7\nstorage-unavailable server=1 from=5ms until=1s\n",
        )
        .expect("parse");
        assert_eq!(plan.seed, 7);
        assert_eq!(
            plan.faults,
            vec![Fault::StorageUnavailable {
                server: 1,
                from: SimTime::from_millis(5),
                until: SimTime::from_secs(1),
            }]
        );
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let err = FaultPlan::parse("seed 1\nbogus-kind rank=1\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = FaultPlan::parse("trace-file-loss\n").unwrap_err();
        assert!(err.message.contains("rank"));
    }

    #[test]
    fn parse_errors_carry_the_offending_token() {
        let err = FaultPlan::parse("seed 1\nbogus-kind rank=1\n").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("bogus-kind"));
        assert!(err.to_string().contains("line 2"));
        assert!(err.to_string().contains("`bogus-kind`"));

        let err = FaultPlan::parse("trace-truncation rank=0 keep=lots\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.token.as_deref(), Some("lots"));

        let err = FaultPlan::parse("node-crash node=1 at\n").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("at"));

        let err = FaultPlan::parse("run-abort at-event=soon\n").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("soon"));

        let err = FaultPlan::parse("tracer-overflow node=0 at=4x\n").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("4x"));

        let err = FaultPlan::parse("trace-file-loss\n").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("rank"));
    }

    #[test]
    fn queries_pick_out_the_right_faults() {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![
                Fault::StorageSlowdown {
                    server: 2,
                    from: SimTime::ZERO,
                    until: SimTime::from_millis(10),
                    factor: 3.0,
                },
                Fault::StorageUnavailable {
                    server: 4,
                    from: SimTime::from_millis(1),
                    until: SimTime::from_millis(2),
                },
                Fault::TraceFileLoss { rank: 1 },
                Fault::TraceTruncation { rank: 2, keep: 0.5 },
                Fault::TracerOverflow {
                    node: 0,
                    at: SimTime::from_millis(3),
                },
                Fault::NodeCrash {
                    node: 3,
                    at: SimTime::from_millis(9),
                },
                Fault::DepEdgeLoss { fraction: 0.4 },
            ],
        };
        let windows = plan.storage_windows();
        assert_eq!(windows.len(), 2);
        assert!(!windows[0].unavailable && windows[0].slowdown == 3.0);
        assert!(windows[1].unavailable);
        assert!(windows[1].covers(SimTime::from_millis(1)));
        assert!(!windows[1].covers(SimTime::from_millis(2)));
        assert!(plan.file_lost(1) && !plan.file_lost(0));
        assert_eq!(plan.truncation(2), Some(0.5));
        assert_eq!(plan.truncation(1), None);
        assert_eq!(plan.overflow_times(0), vec![SimTime::from_millis(3)]);
        assert!(plan.overflow_times(1).is_empty());
        assert_eq!(plan.crash_time(3), Some(SimTime::from_millis(9)));
        assert_eq!(plan.crash_time(0), None);
        assert_eq!(plan.edge_loss(), 0.4);
        assert!(FaultPlan::clean().edge_loss() == 0.0);
    }

    #[test]
    fn plan_rng_streams_are_stable() {
        let plan = FaultPlan {
            seed: 11,
            ..FaultPlan::clean()
        };
        let mut r1 = plan.rng(0xE);
        let mut r2 = plan.rng(0xE);
        for _ in 0..8 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
        let mut other = plan.rng(0xF);
        assert_ne!(r1.next_u64(), other.next_u64());
    }
}
