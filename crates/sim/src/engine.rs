//! The discrete-event engine.
//!
//! Ranks are cooperatively-scheduled state machines ([`crate::program`]);
//! the engine advances a single global virtual clock, executing whichever
//! rank becomes runnable earliest. Custom (I/O) operations are delegated to
//! an [`Executor`] — in this workspace, `iotrace-ioapi` installs an
//! executor that routes operations through the simulated file systems and
//! charges any installed tracing framework's per-event costs. Because the
//! engine is single-threaded and tie-breaks by insertion sequence, runs are
//! fully deterministic: re-running the same programs yields identical
//! timings, which is what lets //TRACE-style throttling experiments
//! attribute *every* timing shift to the injected delay.

use std::collections::VecDeque;

use crate::clock::NodeClock;
use crate::ids::{CommId, NodeId, RankId, ANY_SOURCE, ANY_TAG};
use crate::net::NetworkParams;
use crate::pool::EventQueue;
use crate::program::{Op, OpResult, RankProgram};
use crate::rng::DetRng;
use crate::time::{SimDur, SimTime};

/// Executes custom (I/O) operations on behalf of the engine.
pub trait Executor {
    /// The custom operation type (e.g. a POSIX-like syscall description).
    type Op: std::fmt::Debug;
    /// The result type handed back to programs.
    type Res: std::fmt::Debug;

    /// Execute `op` for `rank` starting at `now`, returning when it
    /// completes and with what result. Implementations may keep arbitrary
    /// shared state (storage queues, tracer buffers, …).
    fn execute(&mut self, ctx: ExecCtx<'_>, op: &Self::Op) -> ExecOutcome<Self::Res>;

    /// Called once when a run starts, with the number of ranks.
    fn begin_run(&mut self, _world: usize) {}
    /// Called once when a run ends, at final time `now`.
    fn end_run(&mut self, _now: SimTime) {}
}

/// Context handed to [`Executor::execute`].
#[derive(Debug)]
pub struct ExecCtx<'a> {
    pub rank: RankId,
    pub node: NodeId,
    pub now: SimTime,
    pub clock: &'a NodeClock,
}

/// Completion report from an executor.
#[derive(Debug)]
pub struct ExecOutcome<R> {
    /// Absolute completion time; must be `>= ctx.now`.
    pub finish: SimTime,
    pub result: R,
}

/// An executor with no custom operations, for pure compute/comm tests.
pub struct NullExecutor;
impl Executor for NullExecutor {
    type Op = ();
    type Res = ();
    fn execute(&mut self, ctx: ExecCtx<'_>, _op: &()) -> ExecOutcome<()> {
        ExecOutcome {
            finish: ctx.now,
            result: (),
        }
    }
}

/// Per-rank timing for one completed barrier.
#[derive(Clone, Debug)]
pub struct BarrierEntry {
    pub rank: RankId,
    pub node: NodeId,
    pub entered: SimTime,
    pub exited: SimTime,
    pub entered_obs: SimTime,
    pub exited_obs: SimTime,
}

/// One completed barrier across a communicator.
#[derive(Clone, Debug)]
pub struct BarrierRecord {
    pub comm: CommId,
    /// Sequence number of this barrier within the run (global order).
    pub seq: u64,
    pub entries: Vec<BarrierEntry>,
}

/// Observer hooks for engine-level events (barriers, messages, rank
/// lifecycle). Tracing frameworks mostly hook the I/O executor instead;
/// this exists for analysis tooling and tests.
pub trait EngineObserver {
    fn on_barrier(&mut self, _rec: &BarrierRecord) {}
    fn on_message(
        &mut self,
        _src: RankId,
        _dst: RankId,
        _bytes: u64,
        _tag: u32,
        _deliver: SimTime,
    ) {
    }
    fn on_rank_finished(&mut self, _rank: RankId, _at: SimTime) {}
}

/// A no-op observer.
pub struct NullObserver;
impl EngineObserver for NullObserver {}

/// Static description of the simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Per-node clock models.
    pub clocks: Vec<NodeClock>,
    /// Ranks hosted per node (rank r runs on node r / ranks_per_node).
    pub ranks_per_node: usize,
    pub net: NetworkParams,
    /// Extra communicators beyond WORLD, by member ranks.
    pub extra_comms: Vec<Vec<RankId>>,
}

impl ClusterConfig {
    /// `n_nodes` nodes with perfect clocks, one rank per node, 2006-era
    /// gigabit interconnect.
    pub fn new(n_nodes: usize) -> Self {
        ClusterConfig {
            clocks: vec![NodeClock::PERFECT; n_nodes.max(1)],
            ranks_per_node: 1,
            net: NetworkParams::gige_2006(),
            extra_comms: Vec::new(),
        }
    }

    pub fn with_net(mut self, net: NetworkParams) -> Self {
        self.net = net;
        self
    }

    pub fn with_ranks_per_node(mut self, k: usize) -> Self {
        self.ranks_per_node = k.max(1);
        self
    }

    /// Give every node a randomly sampled skew/drift (deterministic in the
    /// seed). Mirrors an un-NTP-disciplined cluster.
    pub fn with_sampled_clocks(mut self, seed: u64, max_skew_ns: i64, max_drift_ppm: f64) -> Self {
        let mut rng = DetRng::new(seed);
        for c in &mut self.clocks {
            *c = NodeClock::sample(&mut rng, max_skew_ns, max_drift_ppm);
        }
        self
    }

    /// Register an extra communicator; returns its id.
    pub fn add_comm(&mut self, members: Vec<RankId>) -> CommId {
        self.extra_comms.push(members);
        CommId(self.extra_comms.len() as u32)
    }

    pub fn node_of(&self, rank: RankId) -> NodeId {
        NodeId((rank.0 as usize / self.ranks_per_node % self.clocks.len()) as u32)
    }

    pub fn clock_of(&self, rank: RankId) -> &NodeClock {
        &self.clocks[self.node_of(rank).index()]
    }
}

/// Execution limits for a controlled run: abort after a fixed number of
/// processed events (deterministic kill injection) and/or invoke a
/// checkpoint hook every `checkpoint_every` events. The default is an
/// unlimited run with no checkpoints — exactly [`Engine::run_observed`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunLimits {
    /// Stop (abort) the run after this many events have been processed.
    pub max_events: Option<u64>,
    /// Invoke the checkpoint hook every N processed events.
    pub checkpoint_every: Option<u64>,
}

/// Statistics for one rank after a run.
#[derive(Clone, Debug, Default)]
pub struct RankStats {
    pub ops_issued: u64,
    pub io_ops: u64,
    pub compute_time: SimDur,
    pub barriers: u64,
    pub messages_sent: u64,
    pub messages_received: u64,
    pub bytes_sent: u64,
    pub finished_at: SimTime,
}

/// Outcome of a run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Wall-clock (virtual) time from start to last rank exit.
    pub elapsed: SimDur,
    pub per_rank: Vec<RankStats>,
    pub barriers: Vec<BarrierRecord>,
    /// Ranks that were still blocked when the event queue drained
    /// (deadlock); empty on a clean run.
    pub deadlocked: Vec<RankId>,
    /// Total events (rank op-polls) processed.
    pub events: u64,
    /// True when the run was killed by [`RunLimits::max_events`] before the
    /// event queue drained. An aborted run never saw `end_run`: tracer
    /// buffers were left unflushed, exactly as a real `kill -9` leaves them.
    pub aborted: bool,
}

impl RunReport {
    pub fn is_clean(&self) -> bool {
        self.deadlocked.is_empty() && !self.aborted
    }
}

#[derive(Debug)]
enum RankState {
    /// Has a heap entry; will run at the scheduled time.
    Scheduled,
    /// Blocked in a barrier; the comm id is kept for Debug output when a
    /// deadlocked run is reported.
    WaitingBarrier(#[allow(dead_code)] CommId),
    WaitingRecv {
        src: RankId,
        tag: u32,
    },
    Finished,
    /// Transient marker while the rank's program is being polled.
    Polling,
}

#[derive(Debug)]
struct Message {
    src: RankId,
    tag: u32,
    bytes: u64,
    deliver: SimTime,
}

struct BarrierState {
    members: Vec<RankId>,
    arrived: Vec<Option<SimTime>>, // indexed by position in members
    count: usize,
}

/// The discrete-event engine; see module docs.
pub struct Engine<E: Executor> {
    cfg: ClusterConfig,
    executor: E,
    /// Global id of this engine's first rank. Zero for a whole-world
    /// engine; a shard of a larger world ([`crate::shard`]) hosts ranks
    /// `rank_base .. rank_base + programs.len()` so records, node
    /// mapping and clocks all use the *global* rank id and the shard's
    /// output is indistinguishable from the same ranks run unsharded.
    rank_base: u32,
}

impl<E: Executor> Engine<E> {
    pub fn new(cfg: ClusterConfig, executor: E) -> Self {
        Engine {
            cfg,
            executor,
            rank_base: 0,
        }
    }

    /// Offset this engine's ranks: program `i` runs as global rank
    /// `base + i`. Cross-shard communication is impossible by
    /// construction — a `Send`/`Recv`/`Barrier` naming a rank outside
    /// the shard panics — so sharding is only valid for workloads whose
    /// communication stays inside each rank group (see [`crate::shard`]).
    pub fn with_rank_base(mut self, base: u32) -> Self {
        self.rank_base = base;
        self
    }

    pub fn rank_base(&self) -> u32 {
        self.rank_base
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn executor(&self) -> &E {
        &self.executor
    }

    pub fn executor_mut(&mut self) -> &mut E {
        &mut self.executor
    }

    /// Consume the engine, returning the executor (to harvest trace state
    /// accumulated during the run).
    pub fn into_executor(self) -> E {
        self.executor
    }

    /// Run `programs` (one per rank) to completion with a no-op observer.
    pub fn run(&mut self, programs: Vec<Box<dyn RankProgram<E::Op, E::Res>>>) -> RunReport {
        self.run_observed(programs, &mut NullObserver)
    }

    /// Run with an observer receiving engine-level events.
    pub fn run_observed(
        &mut self,
        programs: Vec<Box<dyn RankProgram<E::Op, E::Res>>>,
        observer: &mut dyn EngineObserver,
    ) -> RunReport {
        self.run_controlled(programs, observer, RunLimits::default(), &mut |_, _, _| {})
    }

    /// Run under [`RunLimits`]: the checkpoint hook fires with the executor,
    /// the event count and the simulated time every `checkpoint_every`
    /// events, and the run aborts mid-flight after `max_events`. Because the
    /// engine is deterministic, re-running the same programs up to the same
    /// event index reproduces the aborted run's state exactly — the basis of
    /// checkpoint/resume.
    pub fn run_controlled(
        &mut self,
        mut programs: Vec<Box<dyn RankProgram<E::Op, E::Res>>>,
        observer: &mut dyn EngineObserver,
        limits: RunLimits,
        on_checkpoint: &mut dyn FnMut(&mut E, u64, SimTime),
    ) -> RunReport {
        let world = programs.len();
        assert!(world > 0, "need at least one rank program");
        let base = self.rank_base;
        // Shard-local index of a global rank id.
        let local = |rid: u32| -> usize {
            debug_assert!(
                rid >= base && ((rid - base) as usize) < world,
                "rank {rid} outside shard {base}..{}",
                base as usize + world
            );
            (rid - base) as usize
        };
        self.executor.begin_run(world);

        // Communicator member lists: WORLD (this engine's ranks) plus
        // extras. A sharded engine's "world" is its rank group.
        let mut comms: Vec<BarrierState> = Vec::with_capacity(1 + self.cfg.extra_comms.len());
        comms.push(BarrierState::new(
            (base..base + world as u32).map(RankId).collect(),
        ));
        for members in &self.cfg.extra_comms {
            for m in members {
                assert!(
                    m.0 >= base && ((m.0 - base) as usize) < world,
                    "communicator member {m:?} outside shard {base}..{}",
                    base as usize + world
                );
            }
            comms.push(BarrierState::new(members.clone()));
        }

        let mut states: Vec<RankState> = (0..world).map(|_| RankState::Scheduled).collect();
        let mut pending: Vec<Option<OpResult<E::Res>>> =
            (0..world).map(|_| Some(OpResult::Start)).collect();
        let mut stats: Vec<RankStats> = vec![RankStats::default(); world];
        let mut mailboxes: Vec<VecDeque<Message>> = (0..world).map(|_| VecDeque::new()).collect();
        let mut barrier_enter: Vec<SimTime> = vec![SimTime::ZERO; world];
        let mut barrier_records: Vec<BarrierRecord> = Vec::new();
        let mut barrier_seq: u64 = 0;

        // Ready queue: pooled pairing heap, ordered by (time, seq) for
        // determinism (seq is unique, so the order is total).
        let mut heap = EventQueue::with_capacity(world);
        let mut seq: u64 = 0;
        for r in 0..world as u32 {
            heap.push(SimTime::ZERO, seq, base + r);
            seq += 1;
        }

        let mut now = SimTime::ZERO;
        let mut finished = 0usize;
        let mut events: u64 = 0;
        let mut aborted = false;

        while let Some(ev) = heap.pop() {
            let (t, ridx) = (ev.time, ev.rank);
            debug_assert!(t >= now, "time went backwards");
            now = t;
            let rank = RankId(ridx);
            let ri = local(ridx);

            if matches!(states[ri], RankState::Finished) {
                continue;
            }
            // A rank woken by a barrier/message is rescheduled by the waker;
            // stale heap entries (none are generated today, but the guard is
            // cheap) are dropped here.
            if !matches!(states[ri], RankState::Scheduled) {
                continue;
            }
            if limits.max_events.is_some_and(|m| events >= m) {
                aborted = true;
                break;
            }

            let last = pending[ri].take().unwrap_or(OpResult::Computed);
            states[ri] = RankState::Polling;
            let op = programs[ri].next_op(rank, &last);
            stats[ri].ops_issued += 1;
            let node = self.cfg.node_of(rank);
            let clock = self.cfg.clocks[node.index()];

            match op {
                Op::Compute(d) => {
                    stats[ri].compute_time += d;
                    pending[ri] = Some(OpResult::Computed);
                    states[ri] = RankState::Scheduled;
                    heap.push(now + d, seq, ridx);
                    seq += 1;
                }
                Op::ReadClock => {
                    pending[ri] = Some(OpResult::Clock {
                        observed: clock.observe(now),
                        truth: now,
                    });
                    states[ri] = RankState::Scheduled;
                    heap.push(now, seq, ridx);
                    seq += 1;
                }
                Op::Barrier(comm) => {
                    let ci = comm.0 as usize;
                    assert!(ci < comms.len(), "unknown communicator {comm:?}");
                    barrier_enter[ri] = now;
                    states[ri] = RankState::WaitingBarrier(comm);
                    let complete = comms[ci].arrive(rank, now);
                    stats[ri].barriers += 1;
                    if complete {
                        let latest = comms[ci].latest_arrival();
                        let release = latest + self.cfg.net.barrier_cost(comms[ci].members.len());
                        let mut entries = Vec::with_capacity(comms[ci].members.len());
                        let members = comms[ci].members.clone();
                        for m in members {
                            let mi = local(m.0);
                            let mnode = self.cfg.node_of(m);
                            let mclock = self.cfg.clocks[mnode.index()];
                            let entered = barrier_enter[mi];
                            entries.push(BarrierEntry {
                                rank: m,
                                node: mnode,
                                entered,
                                exited: release,
                                entered_obs: mclock.observe(entered),
                                exited_obs: mclock.observe(release),
                            });
                            pending[mi] = Some(OpResult::BarrierDone {
                                entered,
                                exited: release,
                                entered_obs: mclock.observe(entered),
                                exited_obs: mclock.observe(release),
                            });
                            states[mi] = RankState::Scheduled;
                            heap.push(release, seq, m.0);
                            seq += 1;
                        }
                        let rec = BarrierRecord {
                            comm,
                            seq: barrier_seq,
                            entries,
                        };
                        barrier_seq += 1;
                        observer.on_barrier(&rec);
                        barrier_records.push(rec);
                        comms[ci].reset();
                    }
                }
                Op::Send { dst, bytes, tag } => {
                    assert!(
                        dst.0 >= base && ((dst.0 - base) as usize) < world,
                        "send to rank {dst:?} outside this engine's ranks {base}..{} \
                         (cross-shard communication is not supported)",
                        base as usize + world
                    );
                    let deliver = now + self.cfg.net.delivery_time(bytes);
                    observer.on_message(rank, dst, bytes, tag, deliver);
                    stats[ri].messages_sent += 1;
                    stats[ri].bytes_sent += bytes;
                    let di = local(dst.0);
                    mailboxes[di].push_back(Message {
                        src: rank,
                        tag,
                        bytes,
                        deliver,
                    });
                    // Wake the destination if it is blocked on a match.
                    if let RankState::WaitingRecv { src, tag: wtag } = states[di] {
                        if Self::matches(src, wtag, rank, tag) {
                            // Deliver the message it was waiting for.
                            let msg = Self::take_match(&mut mailboxes[di], src, wtag)
                                .expect("just pushed a matching message");
                            let at = msg.deliver;
                            pending[di] = Some(OpResult::Received {
                                from: msg.src,
                                bytes: msg.bytes,
                                tag: msg.tag,
                            });
                            stats[di].messages_received += 1;
                            states[di] = RankState::Scheduled;
                            heap.push(at, seq, dst.0);
                            seq += 1;
                        }
                    }
                    pending[ri] = Some(OpResult::Sent);
                    states[ri] = RankState::Scheduled;
                    heap.push(now + self.cfg.net.send_overhead, seq, ridx);
                    seq += 1;
                }
                Op::Recv { src, tag } => {
                    if let Some(msg) = Self::take_match(&mut mailboxes[ri], src, tag) {
                        let at = msg.deliver.max_of(now);
                        pending[ri] = Some(OpResult::Received {
                            from: msg.src,
                            bytes: msg.bytes,
                            tag: msg.tag,
                        });
                        stats[ri].messages_received += 1;
                        states[ri] = RankState::Scheduled;
                        heap.push(at, seq, ridx);
                        seq += 1;
                    } else {
                        states[ri] = RankState::WaitingRecv { src, tag };
                    }
                }
                Op::Io(custom) => {
                    stats[ri].io_ops += 1;
                    let outcome = self.executor.execute(
                        ExecCtx {
                            rank,
                            node,
                            now,
                            clock: &clock,
                        },
                        &custom,
                    );
                    debug_assert!(outcome.finish >= now, "executor moved time backwards");
                    pending[ri] = Some(OpResult::Io(outcome.result));
                    states[ri] = RankState::Scheduled;
                    heap.push(outcome.finish.max_of(now), seq, ridx);
                    seq += 1;
                }
                Op::Exit => {
                    states[ri] = RankState::Finished;
                    stats[ri].finished_at = now;
                    finished += 1;
                    observer.on_rank_finished(rank, now);
                }
            }

            events += 1;
            if limits
                .checkpoint_every
                .is_some_and(|k| k > 0 && events.is_multiple_of(k))
            {
                on_checkpoint(&mut self.executor, events, now);
            }
        }

        // A killed run never reaches end_run: whatever the tracers held in
        // volatile buffers dies with the process.
        let deadlocked: Vec<RankId> = if aborted {
            Vec::new()
        } else {
            self.executor.end_run(now);
            let d: Vec<RankId> = states
                .iter()
                .enumerate()
                .filter(|(_, s)| !matches!(s, RankState::Finished))
                .map(|(i, _)| RankId(base + i as u32))
                .collect();
            debug_assert_eq!(finished + d.len(), world);
            d
        };

        RunReport {
            elapsed: now.since(SimTime::ZERO),
            per_rank: stats,
            barriers: barrier_records,
            deadlocked,
            events,
            aborted,
        }
    }

    fn matches(want_src: RankId, want_tag: u32, src: RankId, tag: u32) -> bool {
        (want_src == ANY_SOURCE || want_src == src) && (want_tag == ANY_TAG || want_tag == tag)
    }

    fn take_match(mb: &mut VecDeque<Message>, src: RankId, tag: u32) -> Option<Message> {
        let pos = mb
            .iter()
            .position(|m| Self::matches(src, tag, m.src, m.tag))?;
        mb.remove(pos)
    }
}

impl BarrierState {
    fn new(members: Vec<RankId>) -> Self {
        let n = members.len();
        BarrierState {
            members,
            arrived: vec![None; n],
            count: 0,
        }
    }

    /// Record arrival; returns true when all members have arrived.
    fn arrive(&mut self, rank: RankId, at: SimTime) -> bool {
        let pos = self
            .members
            .iter()
            .position(|&m| m == rank)
            .unwrap_or_else(|| panic!("rank {rank:?} not in communicator"));
        assert!(self.arrived[pos].is_none(), "rank {rank:?} double-arrived");
        self.arrived[pos] = Some(at);
        self.count += 1;
        self.count == self.members.len()
    }

    fn latest_arrival(&self) -> SimTime {
        self.arrived
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    fn reset(&mut self) {
        self.arrived.iter_mut().for_each(|a| *a = None);
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::OpList;
    use std::cell::RefCell;
    use std::rc::Rc;

    type P = Box<dyn RankProgram<(), ()>>;

    fn compute_prog(secs: u64) -> P {
        Box::new(OpList::new(vec![
            Op::Compute(SimDur::from_secs(secs)),
            Op::Exit,
        ]))
    }

    #[test]
    fn elapsed_is_max_rank_time() {
        let cfg = ClusterConfig::new(2).with_net(NetworkParams::ideal());
        let mut eng = Engine::new(cfg, NullExecutor);
        let report = eng.run(vec![compute_prog(1), compute_prog(3)]);
        assert!(report.is_clean());
        assert_eq!(report.elapsed, SimDur::from_secs(3));
        assert_eq!(report.per_rank[0].finished_at, SimTime::from_secs(1));
        assert_eq!(report.per_rank[1].finished_at, SimTime::from_secs(3));
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        let cfg = ClusterConfig::new(2).with_net(NetworkParams::ideal());
        let mut eng = Engine::new(cfg, NullExecutor);
        let mk = |secs| -> P {
            Box::new(OpList::new(vec![
                Op::Compute(SimDur::from_secs(secs)),
                Op::Barrier(CommId::WORLD),
                Op::Exit,
            ]))
        };
        let report = eng.run(vec![mk(1), mk(5)]);
        assert!(report.is_clean());
        // Both ranks exit the barrier when the slowest arrives.
        assert_eq!(report.elapsed, SimDur::from_secs(5));
        assert_eq!(report.barriers.len(), 1);
        let rec = &report.barriers[0];
        assert_eq!(rec.entries.len(), 2);
        assert_eq!(rec.entries[0].entered, SimTime::from_secs(1));
        assert_eq!(rec.entries[1].entered, SimTime::from_secs(5));
        assert_eq!(rec.entries[0].exited, rec.entries[1].exited);
    }

    #[test]
    fn barrier_cost_is_charged() {
        let mut net = NetworkParams::ideal();
        net.barrier_base = SimDur::from_micros(100);
        let cfg = ClusterConfig::new(2).with_net(net);
        let mut eng = Engine::new(cfg, NullExecutor);
        let mk = || -> P { Box::new(OpList::new(vec![Op::Barrier(CommId::WORLD), Op::Exit])) };
        let report = eng.run(vec![mk(), mk()]);
        assert_eq!(report.elapsed, SimDur::from_micros(100));
    }

    #[test]
    fn send_recv_delivers_payload() {
        let cfg = ClusterConfig::new(2); // real network costs
        let mut eng = Engine::new(cfg, NullExecutor);
        let sender: P = Box::new(OpList::new(vec![
            Op::Send {
                dst: RankId(1),
                bytes: 1 << 20,
                tag: 7,
            },
            Op::Exit,
        ]));
        let got: Rc<RefCell<Option<(RankId, u64, u32)>>> = Rc::new(RefCell::new(None));
        let sink = Rc::clone(&got);
        let receiver = move |_r: RankId, last: &OpResult<()>| -> Op<()> {
            match last {
                OpResult::Start => Op::Recv {
                    src: RankId(0),
                    tag: 7,
                },
                OpResult::Received { from, bytes, tag } => {
                    *sink.borrow_mut() = Some((*from, *bytes, *tag));
                    Op::Exit
                }
                _ => Op::Exit,
            }
        };
        let report = eng.run(vec![sender, Box::new(receiver)]);
        assert!(report.is_clean());
        assert_eq!(report.per_rank[0].messages_sent, 1);
        assert_eq!(report.per_rank[1].messages_received, 1);
        assert_eq!(report.per_rank[0].bytes_sent, 1 << 20);
        assert_eq!(*got.borrow(), Some((RankId(0), 1 << 20, 7)));
        // Receiver finishes after delivery: latency + 1MiB transfer.
        assert!(report.per_rank[1].finished_at > SimTime::from_micros(55));
    }

    #[test]
    fn recv_before_send_blocks_until_delivery() {
        let cfg = ClusterConfig::new(2).with_net(NetworkParams::ideal());
        let mut eng = Engine::new(cfg, NullExecutor);
        let sender: P = Box::new(OpList::new(vec![
            Op::Compute(SimDur::from_secs(2)),
            Op::Send {
                dst: RankId(1),
                bytes: 8,
                tag: 0,
            },
            Op::Exit,
        ]));
        let receiver: P = Box::new(OpList::new(vec![
            Op::Recv {
                src: RankId(0),
                tag: 0,
            },
            Op::Exit,
        ]));
        let report = eng.run(vec![sender, receiver]);
        assert!(report.is_clean());
        assert_eq!(report.per_rank[1].finished_at, SimTime::from_secs(2));
    }

    #[test]
    fn wildcard_recv_matches_any_source_and_tag() {
        let cfg = ClusterConfig::new(3).with_net(NetworkParams::ideal());
        let mut eng = Engine::new(cfg, NullExecutor);
        let sender: P = Box::new(OpList::new(vec![
            Op::Send {
                dst: RankId(2),
                bytes: 4,
                tag: 99,
            },
            Op::Exit,
        ]));
        let idle: P = Box::new(OpList::new(vec![Op::Exit]));
        let receiver: P = Box::new(OpList::new(vec![
            Op::Recv {
                src: ANY_SOURCE,
                tag: ANY_TAG,
            },
            Op::Exit,
        ]));
        let report = eng.run(vec![sender, idle, receiver]);
        assert!(report.is_clean());
        assert_eq!(report.per_rank[2].messages_received, 1);
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let cfg = ClusterConfig::new(2).with_net(NetworkParams::ideal());
        let mut eng = Engine::new(cfg, NullExecutor);
        let waiter: P = Box::new(OpList::new(vec![
            Op::Recv {
                src: RankId(1),
                tag: 0,
            },
            Op::Exit,
        ]));
        let quitter: P = Box::new(OpList::new(vec![Op::Exit]));
        let report = eng.run(vec![waiter, quitter]);
        assert!(!report.is_clean());
        assert_eq!(report.deadlocked, vec![RankId(0)]);
    }

    #[test]
    fn readclock_reports_observed_and_truth() {
        let mut cfg = ClusterConfig::new(1).with_net(NetworkParams::ideal());
        cfg.clocks[0] = NodeClock::new(1_000_000, 0.0);
        let mut eng = Engine::new(cfg, NullExecutor);
        let seen: Rc<RefCell<Option<(SimTime, SimTime)>>> = Rc::new(RefCell::new(None));
        let sink = Rc::clone(&seen);
        let prog = move |_r: RankId, last: &OpResult<()>| -> Op<()> {
            match last {
                OpResult::Start => Op::Compute(SimDur::from_secs(1)),
                OpResult::Computed => Op::ReadClock,
                OpResult::Clock { observed, truth } => {
                    *sink.borrow_mut() = Some((*observed, *truth));
                    Op::Exit
                }
                _ => Op::Exit,
            }
        };
        let report = eng.run(vec![Box::new(prog)]);
        assert!(report.is_clean());
        let (obs, truth) = seen.borrow().expect("clock was read");
        assert_eq!(truth, SimTime::from_secs(1));
        assert_eq!(obs, SimTime::from_secs(1) + SimDur::from_millis(1));
    }

    #[test]
    fn determinism_same_programs_same_report() {
        let run_once = || {
            let cfg = ClusterConfig::new(4).with_sampled_clocks(9, 1_000_000, 50.0);
            let mut eng = Engine::new(cfg, NullExecutor);
            let mk = |secs| -> P {
                Box::new(OpList::new(vec![
                    Op::Compute(SimDur::from_millis(secs)),
                    Op::Barrier(CommId::WORLD),
                    Op::Compute(SimDur::from_millis(secs * 2)),
                    Op::Barrier(CommId::WORLD),
                    Op::Exit,
                ]))
            };
            let rep = eng.run(vec![mk(10), mk(20), mk(30), mk(40)]);
            (
                rep.elapsed,
                rep.per_rank
                    .iter()
                    .map(|s| s.finished_at)
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn sub_communicator_barrier_only_involves_members() {
        let mut cfg = ClusterConfig::new(3).with_net(NetworkParams::ideal());
        let sub = cfg.add_comm(vec![RankId(0), RankId(1)]);
        let mut eng = Engine::new(cfg, NullExecutor);
        let mk = |secs, comm| -> P {
            Box::new(OpList::new(vec![
                Op::Compute(SimDur::from_secs(secs)),
                Op::Barrier(comm),
                Op::Exit,
            ]))
        };
        // rank 2 computes 100s but is NOT in the sub-communicator.
        let slow: P = Box::new(OpList::new(vec![
            Op::Compute(SimDur::from_secs(100)),
            Op::Exit,
        ]));
        let report = eng.run(vec![mk(1, sub), mk(2, sub), slow]);
        assert!(report.is_clean());
        assert_eq!(report.per_rank[0].finished_at, SimTime::from_secs(2));
        assert_eq!(report.per_rank[1].finished_at, SimTime::from_secs(2));
        assert_eq!(report.per_rank[2].finished_at, SimTime::from_secs(100));
    }

    #[test]
    fn ranks_map_to_nodes_in_blocks() {
        let cfg = ClusterConfig::new(2).with_ranks_per_node(2);
        assert_eq!(cfg.node_of(RankId(0)), NodeId(0));
        assert_eq!(cfg.node_of(RankId(1)), NodeId(0));
        assert_eq!(cfg.node_of(RankId(2)), NodeId(1));
        assert_eq!(cfg.node_of(RankId(3)), NodeId(1));
    }

    #[test]
    fn observer_sees_barriers_and_exits() {
        #[derive(Default)]
        struct Counting {
            barriers: usize,
            finished: usize,
        }
        impl EngineObserver for Counting {
            fn on_barrier(&mut self, _r: &BarrierRecord) {
                self.barriers += 1;
            }
            fn on_rank_finished(&mut self, _r: RankId, _t: SimTime) {
                self.finished += 1;
            }
        }
        let cfg = ClusterConfig::new(2).with_net(NetworkParams::ideal());
        let mut eng = Engine::new(cfg, NullExecutor);
        let mk = || -> P { Box::new(OpList::new(vec![Op::Barrier(CommId::WORLD), Op::Exit])) };
        let mut obs = Counting::default();
        let report = eng.run_observed(vec![mk(), mk()], &mut obs);
        assert!(report.is_clean());
        assert_eq!(obs.barriers, 1);
        assert_eq!(obs.finished, 2);
    }

    fn long_progs() -> Vec<P> {
        (0..3u64)
            .map(|r| -> P {
                Box::new(OpList::new(
                    (0..20)
                        .map(|i| Op::Compute(SimDur::from_millis(1 + (r + i) % 7)))
                        .chain(std::iter::once(Op::Exit))
                        .collect(),
                ))
            })
            .collect()
    }

    #[test]
    fn max_events_aborts_mid_run() {
        let cfg = ClusterConfig::new(3).with_net(NetworkParams::ideal());
        let mut eng = Engine::new(cfg, NullExecutor);
        let full = eng.run(long_progs());
        assert!(full.is_clean());
        assert_eq!(full.events, 63); // 3 ranks x (20 computes + exit)

        let mut eng = Engine::new(
            ClusterConfig::new(3).with_net(NetworkParams::ideal()),
            NullExecutor,
        );
        let limits = RunLimits {
            max_events: Some(10),
            checkpoint_every: None,
        };
        let cut = eng.run_controlled(long_progs(), &mut NullObserver, limits, &mut |_, _, _| {});
        assert!(cut.aborted);
        assert!(!cut.is_clean());
        assert_eq!(cut.events, 10, "aborts after exactly max_events events");
        assert!(cut.deadlocked.is_empty(), "an abort is not a deadlock");
    }

    #[test]
    fn checkpoint_hook_fires_on_cadence_and_deterministically() {
        let capture = |every: u64, max: Option<u64>| {
            let cfg = ClusterConfig::new(3).with_net(NetworkParams::ideal());
            let mut eng = Engine::new(cfg, NullExecutor);
            let mut seen: Vec<(u64, SimTime)> = Vec::new();
            let limits = RunLimits {
                max_events: max,
                checkpoint_every: Some(every),
            };
            eng.run_controlled(long_progs(), &mut NullObserver, limits, &mut |_, e, t| {
                seen.push((e, t))
            });
            seen
        };
        let full = capture(8, None);
        assert_eq!(
            full.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![8, 16, 24, 32, 40, 48, 56]
        );
        assert_eq!(full, capture(8, None), "hook sequence is deterministic");
        // A run killed at event 24 saw exactly the first three checkpoints,
        // each identical to the uninterrupted run's.
        let cut = capture(8, Some(24));
        assert_eq!(cut.as_slice(), &full[..3]);
    }
}
