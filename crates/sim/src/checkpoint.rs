//! Deterministic run checkpoints.
//!
//! The engine is a single-threaded deterministic simulator, so a
//! checkpoint does not need to serialize the event heap or the rank
//! program closures (which are arbitrary boxed state machines): it is a
//! *replay recipe* — everything needed to re-execute the run up to the
//! checkpointed event — plus *verification state* — per-node clock
//! parameters and per-framework tracer digests that the resumed run must
//! reproduce bit-for-bit before its output can be trusted. If any digest
//! diverges on resume, the environment changed and the checkpoint is
//! rejected rather than silently producing a different trace.
//!
//! The format is line-oriented text sealed by a trailing FNV-1a 64
//! checksum, so a torn checkpoint write is detected the same way a torn
//! journal segment is.

use crate::time::SimTime;

/// A serialized run checkpoint. See the module docs for the philosophy;
/// the fields are exactly what `iotrace resume` needs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Checkpoint {
    /// Which pipeline produced this checkpoint (today: `demo`).
    pub scenario: String,
    /// Output directory the interrupted run was writing into.
    pub out_dir: String,
    /// The full fault-plan text the run was executing (including the
    /// abort fault that killed it).
    pub plan_text: String,
    /// Checkpoint cadence the run was using.
    pub checkpoint_every: u64,
    /// Events processed when this checkpoint was taken.
    pub events: u64,
    /// Simulated time at the checkpoint.
    pub sim_time_ns: u64,
    /// Per-node clock state as `(skew_ns, drift_ppm.to_bits())` — bits,
    /// not decimal, so drift survives the text roundtrip bit-exactly.
    pub clocks: Vec<(i64, u64)>,
    /// One [`TracerSnapshot`](super) line per active framework, in a
    /// stable order (the snapshot format lives in `iotrace-model`; the
    /// sim layer treats the lines as opaque).
    pub tracer_state: Vec<String>,
}

/// A checkpoint file failed to load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Missing magic line, unknown key, or a bad value.
    Malformed(String),
    /// The trailing seal is missing or does not match the content — the
    /// file was torn mid-write or edited.
    BadSeal,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::BadSeal => {
                write!(f, "checkpoint seal mismatch (torn write or edited file)")
            }
        }
    }
}
impl std::error::Error for CheckpointError {}

const MAGIC_LINE: &str = "# iotrace checkpoint v1";

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

impl Checkpoint {
    pub fn sim_time(&self) -> SimTime {
        SimTime::from_nanos(self.sim_time_ns)
    }

    /// Serialize to the sealed text form parsed by [`Checkpoint::parse`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC_LINE);
        out.push('\n');
        out.push_str(&format!("scenario {}\n", self.scenario));
        out.push_str(&format!("out-dir {}\n", self.out_dir));
        out.push_str(&format!("checkpoint-every {}\n", self.checkpoint_every));
        out.push_str(&format!("events {}\n", self.events));
        out.push_str(&format!("sim-time-ns {}\n", self.sim_time_ns));
        for (i, (skew, drift_bits)) in self.clocks.iter().enumerate() {
            out.push_str(&format!(
                "clock {i} skew={skew} drift-bits={drift_bits:#018x}\n"
            ));
        }
        for line in self.plan_text.lines() {
            out.push_str(&format!("plan {line}\n"));
        }
        for line in &self.tracer_state {
            out.push_str(&format!("tracer-state {line}\n"));
        }
        let seal = fnv64(out.as_bytes());
        out.push_str(&format!("seal {seal:#018x}\n"));
        out
    }

    /// Parse and verify a sealed checkpoint file.
    pub fn parse(text: &str) -> Result<Checkpoint, CheckpointError> {
        let bad = |m: &str| CheckpointError::Malformed(m.to_string());
        // Seal first: everything before the `seal` line must hash to its
        // value, or the file cannot be trusted at all.
        let body_end = text.rfind("seal ").ok_or(CheckpointError::BadSeal)?;
        if body_end == 0 || text.as_bytes()[body_end - 1] != b'\n' {
            return Err(CheckpointError::BadSeal);
        }
        let seal_line = text[body_end..].trim_end();
        let stored = seal_line
            .strip_prefix("seal 0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or(CheckpointError::BadSeal)?;
        if fnv64(&text.as_bytes()[..body_end]) != stored {
            return Err(CheckpointError::BadSeal);
        }

        let mut ckpt = Checkpoint::default();
        let mut lines = text[..body_end].lines();
        if lines.next() != Some(MAGIC_LINE) {
            return Err(bad("missing magic line"));
        }
        for line in lines {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            // Values may be empty (e.g. a blank out-dir), in which case the
            // trailing space was trimmed with the line ending.
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "scenario" => ckpt.scenario = rest.to_string(),
                "out-dir" => ckpt.out_dir = rest.to_string(),
                "checkpoint-every" => {
                    ckpt.checkpoint_every = rest.parse().map_err(|_| bad("bad checkpoint-every"))?
                }
                "events" => ckpt.events = rest.parse().map_err(|_| bad("bad events"))?,
                "sim-time-ns" => {
                    ckpt.sim_time_ns = rest.parse().map_err(|_| bad("bad sim-time-ns"))?
                }
                "clock" => {
                    let mut skew = None;
                    let mut drift = None;
                    for part in rest.split_whitespace().skip(1) {
                        match part.split_once('=') {
                            Some(("skew", v)) => skew = v.parse::<i64>().ok(),
                            Some(("drift-bits", v)) => {
                                drift = v
                                    .strip_prefix("0x")
                                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                            }
                            _ => return Err(bad("bad clock field")),
                        }
                    }
                    ckpt.clocks.push((
                        skew.ok_or_else(|| bad("clock missing skew"))?,
                        drift.ok_or_else(|| bad("clock missing drift-bits"))?,
                    ));
                }
                "plan" => {
                    ckpt.plan_text.push_str(rest);
                    ckpt.plan_text.push('\n');
                }
                "tracer-state" => ckpt.tracer_state.push(rest.to_string()),
                other => return Err(bad(&format!("unknown key `{other}`"))),
            }
        }
        if ckpt.scenario.is_empty() {
            return Err(bad("missing scenario"));
        }
        Ok(ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            scenario: "demo".into(),
            out_dir: "/tmp/iotrace demo out".into(),
            plan_text: "seed 42\ntrace-file-loss rank=1\nrun-abort at-event=300\n".into(),
            checkpoint_every: 64,
            events: 256,
            sim_time_ns: 123_456_789,
            clocks: vec![
                (812_345, 35.25f64.to_bits()),
                (-44_000, (-3.5f64).to_bits()),
            ],
            tracer_state: vec![
                "tracer=lanl-trace records=40 buffered=512 digest=0x00000000deadbeef".into(),
            ],
        }
    }

    #[test]
    fn roundtrips_bit_exactly() {
        let c = sample();
        let parsed = Checkpoint::parse(&c.to_text()).expect("roundtrip");
        assert_eq!(parsed, c);
        // The drift f64 comes back bit-identical, not merely close.
        assert_eq!(f64::from_bits(parsed.clocks[0].1), 35.25);
        assert_eq!(f64::from_bits(parsed.clocks[1].1), -3.5);
        assert_eq!(parsed.sim_time(), SimTime::from_nanos(123_456_789));
    }

    #[test]
    fn any_tampered_body_byte_breaks_the_seal() {
        let text = c_text();
        let body_end = text.rfind("seal ").unwrap();
        for i in 0..body_end {
            let mut t = text.clone().into_bytes();
            t[i] ^= 0x20;
            let Ok(t) = String::from_utf8(t) else {
                continue;
            };
            assert_eq!(
                Checkpoint::parse(&t),
                Err(CheckpointError::BadSeal),
                "flip at byte {i} must break the seal"
            );
        }
    }

    fn c_text() -> String {
        sample().to_text()
    }

    #[test]
    fn truncation_is_a_bad_seal() {
        let text = c_text();
        for cut in [0, 1, text.len() / 2, text.len() - 2] {
            let r = Checkpoint::parse(&text[..cut]);
            assert!(r.is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        for t in ["", "seal 0x0", "# iotrace checkpoint v1\nseal 0xzz\n"] {
            assert!(Checkpoint::parse(t).is_err());
        }
        let c = Checkpoint {
            scenario: "demo".into(),
            ..Default::default()
        };
        assert_eq!(Checkpoint::parse(&c.to_text()).unwrap(), c);
    }
}
