//! Pooled event queue for the discrete-event engine.
//!
//! The engine's original ready queue was a `BinaryHeap<Reverse<(SimTime,
//! u64, u32)>>`: correct, but every push/pop sifts through the backing
//! Vec comparing 24-byte tuples, and at 10⁸ events the sift traffic
//! dominates the scheduler. [`EventQueue`] replaces it with a pairing
//! heap whose nodes live in one slab ([`u32`] index handles, free-list
//! reuse — no per-event allocation ever): push is O(1) (one meld), pop
//! is amortized O(log n) over a two-pass sibling merge, and the arena
//! keeps the hot nodes in a few cache lines instead of scattered boxes.
//!
//! Ordering is **identical** to the old heap: events pop strictly by
//! `(time, seq)`, and `seq` is unique per push, so the pop sequence is a
//! total order independent of the heap's internal shape. That is the
//! determinism invariant the whole engine rests on — same programs, same
//! pop order, same run — and it is what lets the sharded engine
//! ([`crate::shard`]) claim byte-identical output at any shard count.

use crate::time::SimTime;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    time: SimTime,
    seq: u64,
    rank: u32,
    /// First child in the pairing heap, or `NIL`.
    child: u32,
    /// Next sibling under the same parent, or the free-list link.
    sibling: u32,
}

/// One scheduled engine event, as popped from the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    pub time: SimTime,
    pub seq: u64,
    pub rank: u32,
}

/// Slab-backed pairing heap keyed by `(time, seq)`. See module docs.
#[derive(Debug, Default)]
pub struct EventQueue {
    nodes: Vec<Node>,
    /// Free-list head (`NIL` when the slab is fully live).
    free: u32,
    /// Heap root (`NIL` when empty).
    root: u32,
    len: usize,
    /// Scratch for the pop-time pairwise merge, reused across pops.
    scratch: Vec<u32>,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Pre-size the slab (typically the rank count: the engine keeps at
    /// most one scheduled event per runnable rank).
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            nodes: Vec::with_capacity(cap),
            free: NIL,
            root: NIL,
            len: 0,
            scratch: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slab slots currently allocated (live + free): the queue's whole
    /// memory footprint, for tests asserting reuse.
    pub fn slots(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn alloc(&mut self, time: SimTime, seq: u64, rank: u32) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let n = &mut self.nodes[idx as usize];
            self.free = n.sibling;
            *n = Node {
                time,
                seq,
                rank,
                child: NIL,
                sibling: NIL,
            };
            idx
        } else {
            let idx = u32::try_from(self.nodes.len()).expect("event pool exceeds u32 handles");
            assert_ne!(idx, NIL, "event pool exceeds u32 handles");
            self.nodes.push(Node {
                time,
                seq,
                rank,
                child: NIL,
                sibling: NIL,
            });
            idx
        }
    }

    /// Meld two heap roots; the smaller `(time, seq)` wins. Both must
    /// have `sibling == NIL` conceptually owned by the caller.
    #[inline]
    fn meld(&mut self, a: u32, b: u32) -> u32 {
        let (na, nb) = (self.nodes[a as usize], self.nodes[b as usize]);
        let (parent, child) = if (na.time, na.seq) <= (nb.time, nb.seq) {
            (a, b)
        } else {
            (b, a)
        };
        let first = self.nodes[parent as usize].child;
        self.nodes[child as usize].sibling = first;
        self.nodes[parent as usize].child = child;
        parent
    }

    /// Schedule `(time, seq, rank)`. O(1).
    #[inline]
    pub fn push(&mut self, time: SimTime, seq: u64, rank: u32) {
        let n = self.alloc(time, seq, rank);
        self.root = if self.root == NIL {
            n
        } else {
            self.meld(self.root, n)
        };
        self.len += 1;
    }

    /// Pop the earliest event (smallest `(time, seq)`). Amortized
    /// O(log n): two-pass pairwise merge of the root's children.
    pub fn pop(&mut self) -> Option<Event> {
        if self.root == NIL {
            return None;
        }
        let root = self.root;
        let n = self.nodes[root as usize];
        let ev = Event {
            time: n.time,
            seq: n.seq,
            rank: n.rank,
        };

        // Pass 1: meld children pairwise, left to right.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let mut cur = n.child;
        while cur != NIL {
            let next = self.nodes[cur as usize].sibling;
            self.nodes[cur as usize].sibling = NIL;
            if next != NIL {
                let after = self.nodes[next as usize].sibling;
                self.nodes[next as usize].sibling = NIL;
                scratch.push(self.meld(cur, next));
                cur = after;
            } else {
                scratch.push(cur);
                cur = NIL;
            }
        }
        // Pass 2: meld the pairs right to left into one root.
        let mut new_root = NIL;
        while let Some(h) = scratch.pop() {
            new_root = if new_root == NIL {
                h
            } else {
                self.meld(h, new_root)
            };
        }
        self.scratch = scratch;
        self.root = new_root;

        // Return the popped node to the free list.
        self.nodes[root as usize].sibling = self.free;
        self.free = root;
        self.len -= 1;
        Some(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_seq_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 0, 3);
        q.push(t(10), 1, 1);
        q.push(t(20), 2, 2);
        q.push(t(10), 3, 4);
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time.as_nanos(), e.seq))
            .collect();
        assert_eq!(order, vec![(10, 1), (10, 3), (20, 2), (30, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn matches_binary_heap_on_random_workload() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = EventQueue::new();
        let mut h: BinaryHeap<Reverse<(SimTime, u64, u32)>> = BinaryHeap::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut seq = 0u64;
        for round in 0..2_000u64 {
            // Interleave pushes and pops like the engine: mostly push
            // one / pop one, with occasional bursts.
            let pushes = 1 + next() % 3;
            for _ in 0..pushes {
                let time = t(next() % 1_000);
                let rank = (next() % 64) as u32;
                q.push(time, seq, rank);
                h.push(Reverse((time, seq, rank)));
                seq += 1;
            }
            let pops = if round % 5 == 0 { 2 } else { 1 };
            for _ in 0..pops {
                let a = q.pop();
                let b = h
                    .pop()
                    .map(|Reverse((time, s, rank))| Event { time, seq: s, rank });
                assert_eq!(a, b);
            }
        }
        // Drain both completely.
        loop {
            let a = q.pop();
            let b = h
                .pop()
                .map(|Reverse((time, s, rank))| Event { time, seq: s, rank });
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut q = EventQueue::new();
        for i in 0..8u64 {
            q.push(t(i), i, i as u32);
        }
        for _ in 0..8 {
            q.pop();
        }
        // Steady-state push/pop cycles must not grow the slab.
        for i in 0..10_000u64 {
            q.push(t(i), 8 + i, 0);
            q.pop();
        }
        assert_eq!(q.slots(), 8, "free-list reuse failed: slab grew");
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q = EventQueue::new();
        assert_eq!(q.pop(), None);
        q.push(t(1), 0, 0);
        assert!(q.pop().is_some());
        assert_eq!(q.pop(), None);
    }
}
