//! Simulated time: nanosecond-resolution instants and durations.
//!
//! The whole workbench runs in *virtual* time. Every cost charged by the
//! storage model, the network model or a tracing framework is a [`SimDur`];
//! the engine advances a global [`SimTime`] as events complete. Keeping
//! these as distinct newtypes (instead of bare `u64`s) has caught several
//! unit bugs in practice, so all public APIs trade exclusively in them.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds since the start of
/// the simulation ("true" cluster time — see [`crate::clock`] for per-node
/// observed clocks).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(pub u64);

pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    pub fn as_nanos(self) -> u64 {
        self.0
    }
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }
    pub fn max_of(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDur {
    pub const ZERO: SimDur = SimDur(0);

    pub fn from_nanos(ns: u64) -> Self {
        SimDur(ns)
    }
    pub fn as_nanos(self) -> u64 {
        self.0
    }
    pub fn from_micros(us: u64) -> Self {
        SimDur(us * 1_000)
    }
    pub fn from_millis(ms: u64) -> Self {
        SimDur(ms * 1_000_000)
    }
    pub fn from_secs(s: u64) -> Self {
        SimDur(s * NANOS_PER_SEC)
    }
    /// Build from fractional seconds, rounding to the nearest nanosecond.
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDur(0);
        }
        SimDur((s * NANOS_PER_SEC as f64).round() as u64)
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    pub fn saturating_sub(self, other: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(other.0))
    }
    /// Scale by a non-negative factor (clamped), rounding to nearest ns.
    pub fn mul_f64(self, k: f64) -> SimDur {
        SimDur::from_secs_f64(self.as_secs_f64() * k.max(0.0))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}
impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        *self = *self + rhs;
    }
}
impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDur) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}
impl Add for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_add(rhs.0))
    }
}
impl AddAssign for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        *self = *self + rhs;
    }
}
impl Sub for SimDur {
    type Output = SimDur;
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(rhs.0))
    }
}
impl SubAssign for SimDur {
    fn sub_assign(&mut self, rhs: SimDur) {
        *self = *self - rhs;
    }
}
impl Mul<u64> for SimDur {
    type Output = SimDur;
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0.saturating_mul(rhs))
    }
}
impl Div<u64> for SimDur {
    type Output = SimDur;
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs.max(1))
    }
}
impl Sum for SimDur {
    fn sum<I: Iterator<Item = SimDur>>(iter: I) -> SimDur {
        iter.fold(SimDur::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}
impl fmt::Debug for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}
impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDur::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.since(a), SimDur::from_secs(1));
        assert_eq!(a.since(b), SimDur::ZERO);
    }

    #[test]
    fn arithmetic_saturates_at_extremes() {
        assert_eq!(SimTime::MAX + SimDur::from_secs(1), SimTime::MAX);
        assert_eq!(SimDur::ZERO.saturating_sub(SimDur(5)), SimDur::ZERO);
        assert_eq!(SimDur(u64::MAX) * 3, SimDur(u64::MAX));
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDur::from_secs_f64(-1.0), SimDur::ZERO);
        assert_eq!(SimDur::from_secs_f64(f64::NAN), SimDur::ZERO);
        assert_eq!(SimDur::from_secs_f64(f64::INFINITY), SimDur::ZERO);
        assert_eq!(SimDur::from_secs_f64(1.5), SimDur(1_500_000_000));
    }

    #[test]
    fn dur_scaling() {
        let d = SimDur::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDur::from_secs(5));
        assert_eq!(d / 2, SimDur::from_secs(5));
        assert_eq!(d / 0, d, "div by zero clamps divisor to 1");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDur = (1..=4).map(SimDur::from_secs).sum();
        assert_eq!(total, SimDur::from_secs(10));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000");
        assert_eq!(format!("{}", SimDur::from_micros(250)), "0.000250");
    }
}
