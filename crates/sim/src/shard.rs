//! Sharded engine runs: N independent per-rank-group engines on scoped
//! threads.
//!
//! The engine is single-threaded by design — determinism comes from one
//! global `(time, seq)` pop order. To scale past one core without
//! giving that up, the world is split into contiguous rank groups and
//! each group runs on its *own* engine (own clock, own event pool) with
//! [`crate::engine::Engine::with_rank_base`] keeping global rank ids,
//! node mapping and per-node clocks exactly as the unsharded engine
//! would assign them.
//!
//! The invariant this buys: for workloads whose communication stays
//! inside each rank group (no cross-shard `Send`/`Recv`/`Barrier` —
//! violations panic, they do not silently skew), every rank's event
//! sequence, timings and executor-observed records are **byte-identical
//! to the single-shard run at any shard count**. Shards only ever
//! differ in how ranks are partitioned onto engines, never in what a
//! rank computes; the deterministic k-way merge downstream reunites the
//! per-rank outputs into one timeline, and the result cannot depend on
//! the worker count. `bench-pipeline` and the `scale` proptests check
//! exactly this digest equality.

use crate::engine::{ClusterConfig, Engine, Executor, RunReport};
use crate::ids::RankId;
use crate::program::RankProgram;

/// One shard's contiguous rank range: global ranks `base .. base + count`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    pub base: u32,
    pub count: u32,
}

impl ShardSpec {
    pub fn ranks(&self) -> impl Iterator<Item = RankId> + '_ {
        (self.base..self.base + self.count).map(RankId)
    }
}

/// Partition `world` ranks into contiguous groups of (at most) `group`.
pub fn shard_ranges(world: u32, group: u32) -> Vec<ShardSpec> {
    let group = group.clamp(1, world.max(1));
    let mut out = Vec::with_capacity(world.div_ceil(group) as usize);
    let mut base = 0;
    while base < world {
        let count = group.min(world - base);
        out.push(ShardSpec { base, count });
        base += count;
    }
    out
}

/// One shard's results: the rank range it ran, the engine report, and
/// the executor (harvest captured traces from it).
#[derive(Debug)]
pub struct ShardOutcome<E> {
    pub spec: ShardSpec,
    pub report: RunReport,
    pub executor: E,
}

/// Run `world` ranks as `ceil(world / group)` independent engines on
/// scoped threads (one per shard; idle shards cost nothing on a small
/// machine because each thread is pure compute with no locks shared).
///
/// `make_executor` builds each shard's executor from its spec;
/// `make_program` builds the program for one global rank. Both are
/// called *inside* the worker thread, so neither the executor nor the
/// programs need to cross threads — only the finished outcome does.
///
/// Outcomes return in shard order (ascending rank base), whatever order
/// threads finish in: the caller sees a deterministic layout.
pub fn run_sharded<E, MkE, MkP>(
    cfg: &ClusterConfig,
    world: u32,
    group: u32,
    make_executor: MkE,
    make_program: MkP,
) -> Vec<ShardOutcome<E>>
where
    E: Executor + Send,
    MkE: Fn(ShardSpec) -> E + Sync,
    MkP: Fn(RankId) -> Box<dyn RankProgram<E::Op, E::Res>> + Sync,
{
    assert!(world > 0, "need at least one rank");
    let specs = shard_ranges(world, group);
    if specs.len() == 1 {
        // Single shard: run inline, no thread round-trip.
        let spec = specs[0];
        return vec![run_one(cfg, spec, &make_executor, &make_program)];
    }

    let mut outcomes: Vec<Option<ShardOutcome<E>>> = Vec::new();
    outcomes.resize_with(specs.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(specs.len());
        for &spec in &specs {
            let (mk_e, mk_p) = (&make_executor, &make_program);
            handles.push(scope.spawn(move || run_one(cfg, spec, mk_e, mk_p)));
        }
        for (slot, h) in outcomes.iter_mut().zip(handles) {
            match h.join() {
                Ok(o) => *slot = Some(o),
                // Re-raise with the original payload so the engine's
                // cross-shard diagnostics reach the caller intact.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    outcomes.into_iter().map(|o| o.expect("joined")).collect()
}

fn run_one<E, MkE, MkP>(
    cfg: &ClusterConfig,
    spec: ShardSpec,
    make_executor: &MkE,
    make_program: &MkP,
) -> ShardOutcome<E>
where
    E: Executor,
    MkE: Fn(ShardSpec) -> E,
    MkP: Fn(RankId) -> Box<dyn RankProgram<E::Op, E::Res>>,
{
    let mut engine = Engine::new(cfg.clone(), make_executor(spec)).with_rank_base(spec.base);
    let programs = spec.ranks().map(make_program).collect();
    let report = engine.run(programs);
    ShardOutcome {
        spec,
        report,
        executor: engine.into_executor(),
    }
}

/// Fold per-shard reports into one world-level report: per-rank stats
/// concatenate in rank order, `elapsed` is the slowest shard, `events`
/// sum, barrier records keep shard order with globally re-assigned
/// sequence numbers (each shard's barriers are independent by the
/// no-cross-shard invariant, so any fixed order is consistent; shard
/// order is the deterministic one).
pub fn merge_reports<E>(outcomes: &[ShardOutcome<E>]) -> RunReport {
    let mut merged = RunReport {
        elapsed: Default::default(),
        per_rank: Vec::new(),
        barriers: Vec::new(),
        deadlocked: Vec::new(),
        events: 0,
        aborted: false,
    };
    let mut seq = 0u64;
    for o in outcomes {
        merged.elapsed = merged.elapsed.max(o.report.elapsed);
        merged.per_rank.extend(o.report.per_rank.iter().cloned());
        for b in &o.report.barriers {
            let mut b = b.clone();
            b.seq = seq;
            seq += 1;
            merged.barriers.push(b);
        }
        merged
            .deadlocked
            .extend(o.report.deadlocked.iter().copied());
        merged.events += o.report.events;
        merged.aborted |= o.report.aborted;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ExecCtx, ExecOutcome};
    use crate::program::{Op, OpResult};
    use crate::time::SimDur;

    /// Executor that records (rank, time-ns) for every op it executes.
    struct Recording {
        log: Vec<(u32, u64)>,
    }
    impl Executor for Recording {
        type Op = u64;
        type Res = ();
        fn execute(&mut self, ctx: ExecCtx<'_>, op: &u64) -> ExecOutcome<()> {
            self.log.push((ctx.rank.0, ctx.now.as_nanos()));
            ExecOutcome {
                finish: ctx.now + SimDur::from_nanos(*op),
                result: (),
            }
        }
    }

    fn program(rank: RankId) -> Box<dyn RankProgram<u64, ()>> {
        let mut step = 0u32;
        let r = rank.0 as u64;
        Box::new(move |_rank: RankId, _last: &OpResult<()>| -> Op<u64> {
            step += 1;
            match step {
                1..=5 => Op::Compute(SimDur::from_nanos(100 + r * 7)),
                6..=10 => Op::Io(50 + r * 3),
                _ => Op::Exit,
            }
        })
    }

    fn harvest(world: u32, group: u32) -> (Vec<Vec<(u32, u64)>>, RunReport) {
        let cfg = ClusterConfig::new(4).with_ranks_per_node(2);
        let outcomes = run_sharded(
            &cfg,
            world,
            group,
            |_spec| Recording { log: Vec::new() },
            program,
        );
        let report = merge_reports(&outcomes);
        let logs = outcomes.into_iter().map(|o| o.executor.log).collect();
        (logs, report)
    }

    #[test]
    fn shard_ranges_partition_world() {
        assert_eq!(
            shard_ranges(10, 4),
            vec![
                ShardSpec { base: 0, count: 4 },
                ShardSpec { base: 4, count: 4 },
                ShardSpec { base: 8, count: 2 },
            ]
        );
        assert_eq!(shard_ranges(4, 64), vec![ShardSpec { base: 0, count: 4 }]);
        assert_eq!(shard_ranges(1, 1), vec![ShardSpec { base: 0, count: 1 }]);
    }

    #[test]
    fn sharded_equals_single_shard() {
        let world = 12u32;
        let (single_logs, single_rep) = harvest(world, world);
        let flat_single: Vec<(u32, u64)> = single_logs.into_iter().flatten().collect();
        for group in [1u32, 2, 4, 8] {
            let (logs, rep) = harvest(world, group);
            // Per-rank streams are identical; concatenating shard logs in
            // shard order must give a permutation that sorts identically
            // per rank. Compare per-rank filtered sequences.
            let flat: Vec<(u32, u64)> = logs.into_iter().flatten().collect();
            for r in 0..world {
                let a: Vec<u64> = flat_single
                    .iter()
                    .filter(|(rr, _)| *rr == r)
                    .map(|(_, t)| *t)
                    .collect();
                let b: Vec<u64> = flat
                    .iter()
                    .filter(|(rr, _)| *rr == r)
                    .map(|(_, t)| *t)
                    .collect();
                assert_eq!(a, b, "rank {r} diverged at group size {group}");
            }
            assert_eq!(rep.events, single_rep.events);
            assert_eq!(rep.elapsed, single_rep.elapsed);
            assert_eq!(rep.per_rank.len(), world as usize);
            for (s, m) in single_rep.per_rank.iter().zip(&rep.per_rank) {
                assert_eq!(s.finished_at, m.finished_at);
                assert_eq!(s.ops_issued, m.ops_issued);
            }
        }
    }

    #[test]
    fn rank_base_preserves_node_mapping() {
        // Rank 5 on a 4-node, 2-ranks-per-node cluster lives on node 2
        // whether it runs in a whole-world engine or in shard base=4.
        let cfg = ClusterConfig::new(4).with_ranks_per_node(2);
        let outcomes = run_sharded(&cfg, 8, 4, |_spec| Recording { log: Vec::new() }, program);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[1].spec, ShardSpec { base: 4, count: 4 });
        // Rank ids in the second shard's log are global (4..8), not 0..4.
        assert!(outcomes[1].executor.log.iter().all(|(r, _)| *r >= 4));
    }

    #[test]
    #[should_panic(expected = "outside this engine's ranks")]
    fn cross_shard_send_panics() {
        let cfg = ClusterConfig::new(2);
        let _ = run_sharded(
            &cfg,
            4,
            2,
            |_spec| crate::engine::NullExecutor,
            |rank| {
                let first = rank.0 == 0;
                Box::new(move |_r: RankId, _last: &OpResult<()>| -> Op<()> {
                    if first {
                        // Rank 0 (shard 0) sends to rank 3 (shard 1).
                        Op::Send {
                            dst: RankId(3),
                            bytes: 8,
                            tag: 0,
                        }
                    } else {
                        Op::Exit
                    }
                })
            },
        );
    }
}
