//! Per-node clocks with skew and drift.
//!
//! The paper's taxonomy has an explicit axis "accounts for time skew and
//! drift": *time skew* is the difference between distributed clocks at a
//! single instant, *time drift* is the change of that skew over time
//! (paper §3.1). To make that axis testable, every simulated node owns a
//! [`NodeClock`] mapping true simulation time to the node's *observed*
//! time. Tracing frameworks record observed timestamps; analysis tooling
//! (`iotrace-analysis::skew`) then has real skew/drift to estimate and
//! correct, exactly as LANL-Trace's pre/post barrier job intends.

use crate::rng::DetRng;
use crate::time::SimTime;

/// An affine model of a node's local clock:
/// `observed(t) = t + skew + drift_ppm * t / 1e6`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeClock {
    /// Constant offset from true time, in nanoseconds. May be negative
    /// (node clock behind true time).
    pub skew_ns: i64,
    /// Linear drift in parts-per-million of elapsed true time. Real
    /// quartz oscillators sit in the ±50 ppm range.
    pub drift_ppm: f64,
}

impl NodeClock {
    /// A perfect clock: observed time equals true time.
    pub const PERFECT: NodeClock = NodeClock {
        skew_ns: 0,
        drift_ppm: 0.0,
    };

    pub fn new(skew_ns: i64, drift_ppm: f64) -> Self {
        NodeClock { skew_ns, drift_ppm }
    }

    /// Sample a plausible cluster clock: skew uniform in ±`max_skew_ns`,
    /// drift uniform in ±`max_drift_ppm`.
    pub fn sample(rng: &mut DetRng, max_skew_ns: i64, max_drift_ppm: f64) -> Self {
        let skew = rng.range_i64(-max_skew_ns, max_skew_ns);
        let drift = (rng.unit_f64() * 2.0 - 1.0) * max_drift_ppm;
        NodeClock::new(skew, drift)
    }

    /// Map true simulation time to this node's observed time.
    ///
    /// Observed time is clamped at zero: a node whose clock is behind at
    /// boot reports zero rather than underflowing (mirrors a clock that
    /// was stepped forward at boot by NTP).
    pub fn observe(&self, truth: SimTime) -> SimTime {
        let t = truth.as_nanos() as i128;
        let drifted = (t as f64 * self.drift_ppm / 1_000_000.0) as i128;
        let obs = t + self.skew_ns as i128 + drifted;
        SimTime::from_nanos(obs.clamp(0, u64::MAX as i128) as u64)
    }

    /// Invert [`observe`](Self::observe): recover true time from an
    /// observed timestamp. Exact up to rounding of the drift term.
    pub fn recover_truth(&self, observed: SimTime) -> SimTime {
        let obs = observed.as_nanos() as i128 - self.skew_ns as i128;
        let t = obs as f64 / (1.0 + self.drift_ppm / 1_000_000.0);
        SimTime::from_nanos(t.max(0.0) as u64)
    }

    /// Instantaneous offset (observed − true) at a given true time, ns.
    pub fn offset_at(&self, truth: SimTime) -> i64 {
        let obs = self.observe(truth).as_nanos() as i128;
        (obs - truth.as_nanos() as i128) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_is_identity() {
        let c = NodeClock::PERFECT;
        for s in [0u64, 1, 1_000_000, 3_600 * 1_000_000_000] {
            assert_eq!(c.observe(SimTime(s)), SimTime(s));
        }
    }

    #[test]
    fn positive_skew_shifts_forward() {
        let c = NodeClock::new(5_000, 0.0);
        assert_eq!(c.observe(SimTime(100)), SimTime(5_100));
    }

    #[test]
    fn negative_skew_clamps_at_zero() {
        let c = NodeClock::new(-1_000, 0.0);
        assert_eq!(c.observe(SimTime(100)), SimTime::ZERO);
        assert_eq!(c.observe(SimTime(2_000)), SimTime(1_000));
    }

    #[test]
    fn drift_grows_linearly() {
        // 100 ppm over 1 second = 100 µs.
        let c = NodeClock::new(0, 100.0);
        let t = SimTime::from_secs(1);
        assert_eq!(c.offset_at(t), 100_000);
        // and over 10 seconds, 1 ms
        assert_eq!(c.offset_at(SimTime::from_secs(10)), 1_000_000);
    }

    #[test]
    fn recover_truth_inverts_observe() {
        let c = NodeClock::new(123_456, -37.5);
        for secs in [0u64, 1, 17, 3_600] {
            let t = SimTime::from_secs(secs);
            let back = c.recover_truth(c.observe(t));
            let err = (back.as_nanos() as i128 - t.as_nanos() as i128).unsigned_abs();
            assert!(err <= 2, "round-trip error {err} ns at {secs}s");
        }
    }

    #[test]
    fn sample_respects_bounds() {
        let mut rng = DetRng::new(77);
        for _ in 0..100 {
            let c = NodeClock::sample(&mut rng, 1_000_000, 50.0);
            assert!(c.skew_ns.abs() <= 1_000_000);
            assert!(c.drift_ppm.abs() <= 50.0);
        }
    }
}
