//! Deterministic pseudo-random numbers for the simulation.
//!
//! The engine must be bit-for-bit reproducible across runs and platforms so
//! that //TRACE-style throttling experiments (which diff two runs of the
//! same program) see *only* the injected perturbation. We therefore use a
//! self-contained splitmix64/xoshiro256** generator rather than an
//! external crate's unspecified-by-default algorithms.

/// xoshiro256** seeded via splitmix64. Public domain algorithm
/// (Blackman & Vigna).
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create a generator from a 64-bit seed. Two generators built from the
    /// same seed produce identical streams forever.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derive an independent child stream, e.g. one per rank, so that
    /// adding draws on one rank never shifts another rank's stream.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi]` (inclusive); `lo > hi` yields `lo`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        if lo >= hi {
            return lo;
        }
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }
}

impl DetRng {
    /// High 32 bits of the next draw.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice from the stream (little-endian 64-bit chunks).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = DetRng::new(99);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_i64_inclusive_and_degenerate() {
        let mut r = DetRng::new(8);
        for _ in 0..500 {
            let v = r.range_i64(-5, 5);
            assert!((-5..=5).contains(&v));
        }
        assert_eq!(r.range_i64(3, 3), 3);
        assert_eq!(r.range_i64(9, 2), 9);
    }

    #[test]
    fn fork_is_independent_of_parent_consumption() {
        // fork(salt) must depend only on parent state at fork time.
        let mut a = DetRng::new(11);
        let mut b = DetRng::new(11);
        let fa = a.fork(1).next_u64();
        let fb = b.fork(1).next_u64();
        assert_eq!(fa, fb);
        // different salts give different children
        let mut c = DetRng::new(11);
        assert_ne!(fa, c.fork(2).next_u64());
    }

    #[test]
    fn rngcore_fill_bytes_covers_partial_chunks() {
        let mut r = DetRng::new(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
