//! Tracefs mount options and in-kernel cost constants.

use iotrace_model::binary::FieldSel;
use iotrace_model::xtea::Key;
use iotrace_sim::time::SimDur;

use crate::filter::FilterPolicy;

/// Options chosen at mount time (paper §2.2/§4.2: granularity policy,
/// binary output with optional checksumming, compression, encryption,
/// buffering; the kernel module needs root; stacking on a parallel FS
/// needs a patch the stock release lacks).
#[derive(Clone, Debug)]
pub struct TracefsOptions {
    pub policy: FilterPolicy,
    pub checksum: bool,
    pub compress: bool,
    pub encrypt: Option<(Key, FieldSel)>,
    /// In-kernel buffer before a flush to the trace device.
    pub buffer_bytes: usize,
    /// Keep per-op aggregation counters.
    pub counters: bool,
    /// Installer has root (loading a kernel module requires it).
    pub as_root: bool,
    /// Apply the out-of-tree patch that lets Tracefs stack on the
    /// parallel file system (the paper found stock Tracefs incompatible).
    pub parallel_patch: bool,
}

impl Default for TracefsOptions {
    fn default() -> Self {
        TracefsOptions {
            policy: FilterPolicy::trace_all(),
            checksum: false,
            compress: false,
            encrypt: None,
            buffer_bytes: 64 * 1024,
            counters: true,
            as_root: true,
            parallel_patch: false,
        }
    }
}

/// Per-operation and per-byte in-kernel costs.
#[derive(Clone, Copy, Debug)]
pub struct TracefsCosts {
    /// Policy evaluation per VFS op (paid even when the op is omitted).
    pub filter_check: SimDur,
    /// Record capture + encode for a traced op.
    pub capture: SimDur,
    /// Trace-device write setup per flush.
    pub flush_latency: SimDur,
    /// Trace-device streaming bandwidth (bytes/s).
    pub device_bps: f64,
    /// Extra per trace byte when checksumming.
    pub checksum_ns_per_byte: f64,
    /// Extra per trace byte when compressing.
    pub compress_ns_per_byte: f64,
    /// Extra per trace byte when encrypting selected fields.
    pub encrypt_ns_per_byte: f64,
}

impl TracefsCosts {
    pub fn lanl_2007() -> Self {
        TracefsCosts {
            filter_check: SimDur::from_nanos(160),
            capture: SimDur::from_nanos(1_400),
            // The flush hands the buffer to an async trace device; the
            // synchronous part is the in-kernel copy.
            flush_latency: SimDur::from_micros(60),
            device_bps: 1.2e9,
            checksum_ns_per_byte: 0.9,
            compress_ns_per_byte: 14.0,
            encrypt_ns_per_byte: 26.0,
        }
    }

    /// CPU time to post-process one flushed block of `bytes`.
    pub fn feature_cost(&self, bytes: u64, opts: &TracefsOptions) -> SimDur {
        let mut ns = 0.0;
        if opts.checksum {
            ns += bytes as f64 * self.checksum_ns_per_byte;
        }
        if opts.compress {
            ns += bytes as f64 * self.compress_ns_per_byte;
        }
        if opts.encrypt.is_some() {
            ns += bytes as f64 * self.encrypt_ns_per_byte;
        }
        SimDur::from_nanos(ns as u64)
    }

    /// Time to write a flushed block to the trace device.
    pub fn flush_cost(&self, bytes: u64) -> SimDur {
        self.flush_latency + SimDur::from_secs_f64(bytes as f64 / self.device_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_costs_stack() {
        let c = TracefsCosts::lanl_2007();
        let base = TracefsOptions::default();
        assert_eq!(c.feature_cost(1 << 20, &base), SimDur::ZERO);
        let chk = TracefsOptions {
            checksum: true,
            ..base.clone()
        };
        let all = TracefsOptions {
            checksum: true,
            compress: true,
            encrypt: Some((Key::from_passphrase("k"), FieldSel::ALL)),
            ..base
        };
        assert!(c.feature_cost(1 << 20, &all) > c.feature_cost(1 << 20, &chk));
    }

    #[test]
    fn flush_cost_scales() {
        let c = TracefsCosts::lanl_2007();
        assert!(c.flush_cost(1 << 20) > c.flush_cost(1 << 10));
    }
}
