//! The stackable tracing layer: a [`FileSystem`] that wraps a lower file
//! system, forwards every operation, and — for operations the granularity
//! policy selects — captures a record and charges the in-kernel costs on
//! the operation's completion time.
//!
//! This is the faithful rendition of Tracefs's architecture (paper \[1\],
//! built on FiST stackable file systems \[7\]): the tracer *is* the file
//! system layer, so there is no per-event ptrace stop — which is exactly
//! why its overhead stays under ~12% where LANL-Trace's reaches 200%+.

use std::sync::Arc;

use crate::sync::Mutex;

use iotrace_fs::cost::FsKind;
use iotrace_fs::data::WritePayload;
use iotrace_fs::error::FsResult;
use iotrace_fs::fs::{FileSystem, IoReply, OpenFlags};
use iotrace_fs::inode::{FileMeta, FileStat, InodeId, Namespace};
use iotrace_sim::ids::NodeId;
use iotrace_sim::time::{SimDur, SimTime};

use iotrace_model::event::{IoCall, TraceRecord};

use std::collections::BTreeMap;

use crate::filter::{FsOpKind, OpFacts};
use crate::options::{TracefsCosts, TracefsOptions};

/// Shared capture state, harvested by the front-end after a run.
#[derive(Default)]
pub struct Capture {
    pub records: Vec<TraceRecord>,
    /// Aggregation "event counters" (paper §2.2).
    pub counters: BTreeMap<FsOpKind, u64>,
    /// Bytes of encoded trace data produced.
    pub encoded_bytes: u64,
    /// Flushes to the trace device.
    pub flushes: u64,
    /// Ops evaluated (traced or not).
    pub ops_seen: u64,
    /// Records lost to in-kernel buffer overflows.
    pub dropped: u64,
    /// Overflow events suffered.
    pub overflows: u64,
    buffered: u64,
    /// Records sitting in the current unflushed buffer — exactly what an
    /// overflow loses.
    buffered_records: usize,
    /// Injected overflow instants still pending, sorted descending so the
    /// next one is `last()`.
    overflow_at: Vec<SimTime>,
}

impl Capture {
    /// Schedule injected buffer-overflow faults. When the simulated clock
    /// passes one of these instants, the current unflushed buffer is lost
    /// (the trace device could not keep up), exactly like the real
    /// module's ring buffer wrapping under load.
    pub fn schedule_overflows(&mut self, mut times: Vec<SimTime>) {
        self.overflow_at.append(&mut times);
        self.overflow_at.sort_unstable_by(|a, b| b.cmp(a));
    }

    /// Bytes sitting in the unflushed in-kernel buffer — what a crash or
    /// overflow loses.
    pub fn buffered_bytes(&self) -> u64 {
        self.buffered
    }

    /// Drop the current buffer's records, accounting for the loss.
    fn overflow(&mut self) {
        let lost = self.buffered_records;
        let keep = self.records.len().saturating_sub(lost);
        self.records.truncate(keep);
        self.dropped += lost as u64;
        self.overflows += 1;
        self.buffered = 0;
        self.buffered_records = 0;
    }
}

pub type SharedCapture = Arc<Mutex<Capture>>;

/// See module docs.
pub struct TracefsLayer {
    lower: Box<dyn FileSystem>,
    opts: TracefsOptions,
    costs: TracefsCosts,
    capture: SharedCapture,
    label: String,
}

impl TracefsLayer {
    pub fn new(
        lower: Box<dyn FileSystem>,
        opts: TracefsOptions,
        costs: TracefsCosts,
        capture: SharedCapture,
    ) -> Self {
        let label = format!("tracefs({})", lower.label());
        TracefsLayer {
            lower,
            opts,
            costs,
            capture,
            label,
        }
    }

    /// Estimated encoded size of a record (varint binary format).
    fn encoded_len(call: &IoCall) -> u64 {
        18 + call.path().map(|p| p.len() as u64).unwrap_or(2)
    }

    /// Evaluate the policy and, if selected, record + charge. Returns the
    /// op's new completion time.
    #[allow(clippy::too_many_arguments)]
    fn observe(
        &mut self,
        node: NodeId,
        kind: FsOpKind,
        path: &str,
        size: u64,
        uid: u32,
        gid: u32,
        call: IoCall,
        result: i64,
        start: SimTime,
        mut finish: SimTime,
    ) -> SimTime {
        let mut cap = self.capture.lock();
        cap.ops_seen += 1;
        finish += self.costs.filter_check;
        let facts = OpFacts {
            kind,
            path,
            uid,
            gid,
            size,
        };
        if !self.opts.policy.matches(&facts) {
            return finish;
        }
        finish += self.costs.capture;
        if self.opts.counters {
            *cap.counters.entry(kind).or_insert(0) += 1;
        }
        let enc = Self::encoded_len(&call);
        cap.encoded_bytes += enc;
        cap.buffered += enc;
        cap.buffered_records += 1;
        cap.records.push(TraceRecord {
            ts: start,
            dur: finish.since(start),
            rank: node.0, // kernel-level capture: rank unknown, node id recorded
            node: node.0,
            pid: 0,
            uid,
            gid,
            call,
            result,
        });
        while cap.overflow_at.last().is_some_and(|t| *t <= finish) {
            cap.overflow_at.pop();
            cap.overflow();
        }
        if cap.buffered >= self.opts.buffer_bytes as u64 {
            let block = cap.buffered;
            cap.buffered = 0;
            cap.buffered_records = 0;
            cap.flushes += 1;
            finish += self.costs.feature_cost(block, &self.opts);
            finish += self.costs.flush_cost(block);
        }
        finish
    }

    fn meta_of(&self, ino: InodeId) -> (u32, u32) {
        self.lower
            .namespace()
            .stat(ino)
            .map(|s| (s.meta.uid, s.meta.gid))
            .unwrap_or((0, 0))
    }

    fn path_of(&self, ino: InodeId) -> String {
        // Inode→path reverse lookup is not tracked; record the inode id
        // the way real kernel tracers often must.
        format!("<ino:{}>", ino.0)
    }
}

impl FileSystem for TracefsLayer {
    fn kind(&self) -> FsKind {
        FsKind::Stacked
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn open(
        &mut self,
        node: NodeId,
        p: &str,
        flags: OpenFlags,
        meta: FileMeta,
        now: SimTime,
    ) -> FsResult<(InodeId, SimTime)> {
        let (uid, gid) = (meta.uid, meta.gid);
        let res = self.lower.open(node, p, flags, meta, now);
        match res {
            Ok((ino, finish)) => {
                let f = self.observe(
                    node,
                    FsOpKind::Open,
                    p,
                    0,
                    uid,
                    gid,
                    IoCall::Open {
                        path: p.to_string(),
                        flags: flags.0,
                        mode: 0o644,
                    },
                    ino.0 as i64,
                    now,
                    finish,
                );
                Ok((ino, f))
            }
            Err(e) => Err(e),
        }
    }

    fn close(&mut self, node: NodeId, ino: InodeId, now: SimTime) -> FsResult<SimTime> {
        let (uid, gid) = self.meta_of(ino);
        let finish = self.lower.close(node, ino, now)?;
        Ok(self.observe(
            node,
            FsOpKind::Close,
            &self.path_of(ino),
            0,
            uid,
            gid,
            IoCall::Close { fd: ino.0 as i64 },
            0,
            now,
            finish,
        ))
    }

    fn read(
        &mut self,
        node: NodeId,
        ino: InodeId,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> FsResult<IoReply> {
        let (uid, gid) = self.meta_of(ino);
        let rep = self.lower.read(node, ino, offset, len, now)?;
        let path = self.path_of(ino);
        let finish = self.observe(
            node,
            FsOpKind::Read,
            &path.clone(),
            rep.bytes,
            uid,
            gid,
            IoCall::VfsReadPage {
                path,
                offset,
                len: rep.bytes,
            },
            rep.bytes as i64,
            now,
            rep.finish,
        );
        Ok(IoReply {
            bytes: rep.bytes,
            finish,
        })
    }

    fn write(
        &mut self,
        node: NodeId,
        ino: InodeId,
        offset: u64,
        payload: &WritePayload,
        now: SimTime,
    ) -> FsResult<IoReply> {
        let (uid, gid) = self.meta_of(ino);
        let rep = self.lower.write(node, ino, offset, payload, now)?;
        let path = self.path_of(ino);
        let finish = self.observe(
            node,
            FsOpKind::Write,
            &path.clone(),
            rep.bytes,
            uid,
            gid,
            IoCall::VfsWritePage {
                path,
                offset,
                len: rep.bytes,
            },
            rep.bytes as i64,
            now,
            rep.finish,
        );
        Ok(IoReply {
            bytes: rep.bytes,
            finish,
        })
    }

    fn fsync(&mut self, node: NodeId, ino: InodeId, now: SimTime) -> FsResult<SimTime> {
        let (uid, gid) = self.meta_of(ino);
        let finish = self.lower.fsync(node, ino, now)?;
        Ok(self.observe(
            node,
            FsOpKind::Fsync,
            &self.path_of(ino),
            0,
            uid,
            gid,
            IoCall::Fsync { fd: ino.0 as i64 },
            0,
            now,
            finish,
        ))
    }

    fn stat(&mut self, node: NodeId, p: &str, now: SimTime) -> FsResult<(FileStat, SimTime)> {
        let (st, finish) = self.lower.stat(node, p, now)?;
        let f = self.observe(
            node,
            FsOpKind::Stat,
            p,
            0,
            st.meta.uid,
            st.meta.gid,
            IoCall::Stat {
                path: p.to_string(),
            },
            0,
            now,
            finish,
        );
        Ok((st, f))
    }

    fn mkdir(&mut self, node: NodeId, p: &str, meta: FileMeta, now: SimTime) -> FsResult<SimTime> {
        let (uid, gid) = (meta.uid, meta.gid);
        let finish = self.lower.mkdir(node, p, meta, now)?;
        Ok(self.observe(
            node,
            FsOpKind::Mkdir,
            p,
            0,
            uid,
            gid,
            IoCall::Mkdir {
                path: p.to_string(),
                mode: 0o755,
            },
            0,
            now,
            finish,
        ))
    }

    fn unlink(&mut self, node: NodeId, p: &str, now: SimTime) -> FsResult<SimTime> {
        let finish = self.lower.unlink(node, p, now)?;
        Ok(self.observe(
            node,
            FsOpKind::Unlink,
            p,
            0,
            0,
            0,
            IoCall::Unlink {
                path: p.to_string(),
            },
            0,
            now,
            finish,
        ))
    }

    fn readdir(&mut self, node: NodeId, p: &str, now: SimTime) -> FsResult<(Vec<String>, SimTime)> {
        let (names, finish) = self.lower.readdir(node, p, now)?;
        let f = self.observe(
            node,
            FsOpKind::Readdir,
            p,
            0,
            0,
            0,
            IoCall::Readdir {
                path: p.to_string(),
            },
            names.len() as i64,
            now,
            finish,
        );
        Ok((names, f))
    }

    fn rename(&mut self, node: NodeId, from: &str, to: &str, now: SimTime) -> FsResult<SimTime> {
        let finish = self.lower.rename(node, from, to, now)?;
        Ok(self.observe(
            node,
            FsOpKind::Rename,
            from,
            0,
            0,
            0,
            IoCall::Rename {
                from: from.to_string(),
                to: to.to_string(),
            },
            0,
            now,
            finish,
        ))
    }

    fn truncate(
        &mut self,
        node: NodeId,
        ino: InodeId,
        size: u64,
        now: SimTime,
    ) -> FsResult<SimTime> {
        let (uid, gid) = self.meta_of(ino);
        let finish = self.lower.truncate(node, ino, size, now)?;
        Ok(self.observe(
            node,
            FsOpKind::Truncate,
            &self.path_of(ino),
            size,
            uid,
            gid,
            IoCall::Fcntl {
                fd: ino.0 as i64,
                cmd: 0,
            },
            0,
            now,
            finish,
        ))
    }

    fn namespace(&self) -> &Namespace {
        self.lower.namespace()
    }

    fn namespace_mut(&mut self) -> &mut Namespace {
        self.lower.namespace_mut()
    }

    fn unwrap_lower(self: Box<Self>) -> Box<dyn FileSystem> {
        self.lower
    }

    fn degrade_storage(
        &mut self,
        windows: &[iotrace_sim::fault::DegradedWindow],
        policy: iotrace_fs::params::RetryPolicy,
    ) {
        // Degradation targets the storage under the tracer, not the
        // tracing layer itself.
        self.lower.degrade_storage(windows, policy);
    }
}

/// Final-flush cost, exposed so the front-end can account for the last
/// partial buffer at unmount.
pub fn final_flush(capture: &SharedCapture, costs: &TracefsCosts, opts: &TracefsOptions) -> SimDur {
    let mut cap = capture.lock();
    if cap.buffered == 0 {
        return SimDur::ZERO;
    }
    let block = cap.buffered;
    cap.buffered = 0;
    cap.buffered_records = 0;
    cap.flushes += 1;
    costs.feature_cost(block, opts) + costs.flush_cost(block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterPolicy;
    use iotrace_fs::fs::mem_fs;

    fn layer(policy: &str) -> (TracefsLayer, SharedCapture) {
        let cap: SharedCapture = Arc::default();
        let opts = TracefsOptions {
            policy: FilterPolicy::parse(policy).unwrap(),
            ..Default::default()
        };
        (
            TracefsLayer::new(
                mem_fs("lower"),
                opts,
                TracefsCosts::lanl_2007(),
                cap.clone(),
            ),
            cap,
        )
    }

    #[test]
    fn traced_ops_are_recorded_and_charged() {
        let (mut l, cap) = layer("trace all;");
        let (ino, t1) = l
            .open(
                NodeId(0),
                "/f",
                OpenFlags::RDWR | OpenFlags::CREAT,
                FileMeta::default(),
                SimTime::ZERO,
            )
            .unwrap();
        assert!(t1 > SimTime::ZERO, "capture cost charged");
        let rep = l
            .write(NodeId(0), ino, 0, &WritePayload::Synthetic(4096), t1)
            .unwrap();
        assert!(rep.finish > t1);
        let cap = cap.lock();
        assert_eq!(cap.records.len(), 2);
        assert_eq!(cap.counters[&FsOpKind::Open], 1);
        assert_eq!(cap.counters[&FsOpKind::Write], 1);
    }

    #[test]
    fn omitted_ops_pay_only_filter_check() {
        let (mut l, cap) = layer("trace read;"); // writes omitted
        let (ino, t1) = l
            .open(
                NodeId(0),
                "/f",
                OpenFlags::RDWR | OpenFlags::CREAT,
                FileMeta::default(),
                SimTime::ZERO,
            )
            .unwrap();
        let rep = l
            .write(NodeId(0), ino, 0, &WritePayload::Synthetic(4096), t1)
            .unwrap();
        let costs = TracefsCosts::lanl_2007();
        // write finish = lower (free for mem fs) + filter check only
        assert_eq!(rep.finish, t1 + costs.filter_check);
        assert!(cap.lock().records.is_empty());
        assert_eq!(cap.lock().ops_seen, 2);
    }

    #[test]
    fn unwrap_lower_returns_wrapped_fs() {
        let (l, _cap) = layer("trace all;");
        let lower = Box::new(l).unwrap_lower();
        assert_eq!(lower.label(), "lower");
    }

    #[test]
    fn buffering_counts_flushes() {
        let cap: SharedCapture = Arc::default();
        let opts = TracefsOptions {
            policy: FilterPolicy::trace_all(),
            buffer_bytes: 32, // tiny: flush almost every record
            ..Default::default()
        };
        let mut l = TracefsLayer::new(mem_fs("x"), opts, TracefsCosts::lanl_2007(), cap.clone());
        let (ino, mut t) = l
            .open(
                NodeId(0),
                "/f",
                OpenFlags::RDWR | OpenFlags::CREAT,
                FileMeta::default(),
                SimTime::ZERO,
            )
            .unwrap();
        for i in 0..10 {
            t = l
                .write(NodeId(0), ino, i * 100, &WritePayload::Synthetic(100), t)
                .unwrap()
                .finish;
        }
        assert!(cap.lock().flushes >= 5);
    }

    #[test]
    fn injected_overflow_drops_only_the_buffered_records() {
        let cap: SharedCapture = Arc::default();
        let opts = TracefsOptions {
            policy: FilterPolicy::trace_all(),
            buffer_bytes: 64, // ~3 records per flush
            ..Default::default()
        };
        let mut l = TracefsLayer::new(mem_fs("x"), opts, TracefsCosts::lanl_2007(), cap.clone());
        let (ino, mut t) = l
            .open(
                NodeId(0),
                "/f",
                OpenFlags::RDWR | OpenFlags::CREAT,
                FileMeta::default(),
                SimTime::ZERO,
            )
            .unwrap();
        for i in 0..6 {
            t = l
                .write(NodeId(0), ino, i * 100, &WritePayload::Synthetic(100), t)
                .unwrap()
                .finish;
        }
        let flushed = cap.lock().records.len();
        assert!(cap.lock().flushes >= 1, "records reached the trace device");
        // Schedule an overflow in the past: the very next traced op drops
        // whatever is buffered at that point, but never flushed records.
        cap.lock()
            .schedule_overflows(vec![SimTime::ZERO + SimDur::from_nanos(1)]);
        for i in 6..8 {
            t = l
                .write(NodeId(0), ino, i * 100, &WritePayload::Synthetic(100), t)
                .unwrap()
                .finish;
        }
        let cap = cap.lock();
        assert_eq!(cap.overflows, 1);
        assert!(cap.dropped >= 1);
        assert!(cap.records.len() >= flushed.saturating_sub(3));
        assert!(cap.overflow_at.is_empty(), "instant consumed");
    }

    #[test]
    fn final_flush_drains_buffer() {
        let (mut l, cap) = layer("trace all;");
        let (_ino, _t) = l
            .open(
                NodeId(0),
                "/f",
                OpenFlags::RDWR | OpenFlags::CREAT,
                FileMeta::default(),
                SimTime::ZERO,
            )
            .unwrap();
        let opts = TracefsOptions::default();
        let d = final_flush(&cap, &TracefsCosts::lanl_2007(), &opts);
        assert!(d > SimDur::ZERO);
        let d2 = final_flush(&cap, &TracefsCosts::lanl_2007(), &opts);
        assert_eq!(d2, SimDur::ZERO);
    }
}
