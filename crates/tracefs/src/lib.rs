//! # iotrace-tracefs — Tracefs, the stackable tracing file system
//!
//! The paper's second surveyed framework (§2.2, §4.2; Aranya, Wright &
//! Zadok, FAST'04): a kernel-module file system that stacks over ext3,
//! NFS, etc., and traces VFS operations with a rich feature set —
//! declarative granularity control ([`filter`]), binary output with
//! optional checksumming / compression / per-field encryption /
//! buffering, and aggregation counters.
//!
//! Faithfully reproduced pain points: mounting requires root
//! ([`framework::Tracefs::mount`]), and stacking on the parallel file
//! system fails without an out-of-tree patch — both of which the
//! taxonomy's "ease of installation" and "parallel file system
//! compatibility" axes capture.

pub mod filter;
pub mod framework;
pub mod layer;
pub mod options;
pub mod sync;

pub mod prelude {
    pub use crate::filter::{FilterPolicy, FsOpKind, OpFacts};
    pub use crate::framework::Tracefs;
    pub use crate::layer::{Capture, SharedCapture, TracefsLayer};
    pub use crate::options::{TracefsCosts, TracefsOptions};
}
