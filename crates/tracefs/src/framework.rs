//! The Tracefs front-end: mount/unmount lifecycle, compatibility and
//! permission checks, and trace harvesting.

use std::sync::Arc;

use iotrace_fs::cost::FsKind;
use iotrace_fs::error::{FsError, FsResult};
use iotrace_fs::vfs::Vfs;
use iotrace_model::binary::{encode_binary, BinaryOptions};
use iotrace_model::event::{Trace, TraceMeta};
use iotrace_sim::fault::{Fault, FaultPlan};

use crate::filter::FsOpKind;
use crate::layer::{final_flush, Capture, SharedCapture, TracefsLayer};
use crate::options::{TracefsCosts, TracefsOptions};

/// A mounted (or mountable) Tracefs instance.
pub struct Tracefs {
    pub opts: TracefsOptions,
    pub costs: TracefsCosts,
    capture: SharedCapture,
    mounted_at: Option<String>,
}

impl Tracefs {
    pub fn new(opts: TracefsOptions) -> Self {
        Tracefs {
            opts,
            costs: TracefsCosts::lanl_2007(),
            capture: Arc::default(),
            mounted_at: None,
        }
    }

    /// Stack Tracefs over the file system mounted at `prefix`.
    ///
    /// Fails with:
    /// * [`FsError::PermissionDenied`] without root — loading a kernel
    ///   module needs privileges (the paper's "ease of installation"
    ///   complaint);
    /// * [`FsError::Incompatible`] when the lower FS is the parallel file
    ///   system and the compatibility patch isn't applied (paper §2.2:
    ///   "not compatible out of the box with our parallel file system").
    pub fn mount(&mut self, vfs: &mut Vfs, prefix: &str) -> FsResult<()> {
        if self.mounted_at.is_some() {
            return Err(FsError::AlreadyExists("tracefs already mounted".into()));
        }
        if !self.opts.as_root {
            return Err(FsError::PermissionDenied(
                "loading the tracefs kernel module requires root on every compute node".into(),
            ));
        }
        let parallel_patch = self.opts.parallel_patch;
        let opts = self.opts.clone();
        let costs = self.costs;
        let capture = Arc::clone(&self.capture);
        vfs.stack(
            prefix,
            |lower| {
                if lower.kind() == FsKind::Parallel && !parallel_patch {
                    return Err(FsError::Incompatible(
                        "tracefs does not stack on the parallel file system out of the box".into(),
                    ));
                }
                if lower.kind() == FsKind::Stacked {
                    return Err(FsError::AlreadyExists("already stacked".into()));
                }
                Ok(())
            },
            move |lower| {
                Box::new(TracefsLayer::new(
                    lower,
                    opts.clone(),
                    costs,
                    Arc::clone(&capture),
                ))
            },
        )?;
        self.mounted_at = Some(prefix.to_string());
        Ok(())
    }

    /// Unstack, restoring the lower file system(s). Flushes the last
    /// buffer.
    pub fn unmount(&mut self, vfs: &mut Vfs) -> FsResult<()> {
        let prefix = self
            .mounted_at
            .take()
            .ok_or(FsError::Unsupported("tracefs is not mounted"))?;
        let _ = final_flush(&self.capture, &self.costs, &self.opts);
        vfs.unstack(&prefix)
    }

    pub fn is_mounted(&self) -> bool {
        self.mounted_at.is_some()
    }

    /// Direct access to the capture state.
    pub fn capture(&self) -> crate::sync::MutexGuard<'_, Capture> {
        self.capture.lock()
    }

    /// The aggregation counters (paper: "aggregation (via event
    /// counters)").
    pub fn counters(&self) -> Vec<(FsOpKind, u64)> {
        self.capture
            .lock()
            .counters
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    /// Schedule the fault plan's tracer-buffer overflows on this mount.
    /// When the simulated clock passes an overflow instant, the unflushed
    /// in-kernel buffer is lost; [`Tracefs::trace`] stamps the resulting
    /// record loss into `meta.completeness`.
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        let times: Vec<_> = plan
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::TracerOverflow { at, .. } => Some(*at),
                _ => None,
            })
            .collect();
        if !times.is_empty() {
            self.capture.lock().schedule_overflows(times);
        }
    }

    /// Harvest the captured records as a `Trace` (kernel-side capture:
    /// one trace for the whole mount).
    pub fn trace(&self, app: &str) -> Trace {
        let cap = self.capture.lock();
        let mut meta = TraceMeta::new(app, 0, 0, "tracefs");
        if cap.dropped > 0 {
            meta.record_loss(cap.records.len(), cap.records.len() + cap.dropped as usize);
        }
        Trace {
            meta,
            records: cap.records.clone(),
        }
    }

    /// Freeze this mount's capture state for a checkpoint: captured
    /// record count, bytes still in the in-kernel buffer (lost on a
    /// crash), and a digest for resume verification.
    pub fn snapshot(&self) -> iotrace_model::journal::TracerSnapshot {
        let cap = self.capture.lock();
        iotrace_model::journal::TracerSnapshot {
            tracer: "tracefs".into(),
            records: cap.records.len(),
            buffered_bytes: cap.buffered_bytes(),
            digest: iotrace_model::journal::records_digest(&cap.records),
        }
    }

    /// Encode the captured trace in Tracefs's binary format with the
    /// mount's options (checksum/compress/encrypt/buffering).
    pub fn encode(&self, app: &str) -> Vec<u8> {
        let opts = BinaryOptions {
            checksum: self.opts.checksum,
            compress: self.opts.compress,
            encrypt: self.opts.encrypt,
            block_records: (self.opts.buffer_bytes / 32).max(1),
        };
        encode_binary(&self.trace(app), &opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterPolicy;
    use iotrace_fs::fs::{mem_fs, striped_fs};
    use iotrace_fs::params::StripedParams;

    fn vfs() -> Vfs {
        let mut v = Vfs::new(2);
        v.mount_shared("/nfs", mem_fs("nfs-mem")).unwrap();
        v.mount_shared("/pfs", striped_fs("panfs", StripedParams::lanl_2007()))
            .unwrap();
        v
    }

    #[test]
    fn mount_requires_root() {
        let mut v = vfs();
        let mut t = Tracefs::new(TracefsOptions {
            as_root: false,
            ..Default::default()
        });
        assert!(matches!(
            t.mount(&mut v, "/nfs"),
            Err(FsError::PermissionDenied(_))
        ));
    }

    #[test]
    fn parallel_fs_incompatible_without_patch() {
        let mut v = vfs();
        let mut t = Tracefs::new(TracefsOptions::default());
        assert!(matches!(
            t.mount(&mut v, "/pfs"),
            Err(FsError::Incompatible(_))
        ));
        // the mount table is restored — the PFS still works
        assert_eq!(v.kind_of("/pfs/x").unwrap(), FsKind::Parallel);
        // with the patch it stacks fine
        let mut t2 = Tracefs::new(TracefsOptions {
            parallel_patch: true,
            ..Default::default()
        });
        t2.mount(&mut v, "/pfs").unwrap();
        assert_eq!(v.kind_of("/pfs/x").unwrap(), FsKind::Stacked);
        t2.unmount(&mut v).unwrap();
        assert_eq!(v.kind_of("/pfs/x").unwrap(), FsKind::Parallel);
    }

    #[test]
    fn mount_unmount_roundtrip_preserves_data() {
        let mut v = vfs();
        v.put_file(iotrace_sim::ids::NodeId(0), "/nfs/keep", b"data")
            .unwrap();
        let mut t = Tracefs::new(TracefsOptions::default());
        t.mount(&mut v, "/nfs").unwrap();
        assert!(t.is_mounted());
        // file still visible through the stack
        assert_eq!(
            v.fetch_file(iotrace_sim::ids::NodeId(0), "/nfs/keep")
                .unwrap(),
            b"data"
        );
        t.unmount(&mut v).unwrap();
        assert!(!t.is_mounted());
        assert_eq!(
            v.fetch_file(iotrace_sim::ids::NodeId(0), "/nfs/keep")
                .unwrap(),
            b"data"
        );
        assert!(t.unmount(&mut v).is_err(), "double unmount rejected");
    }

    #[test]
    fn double_mount_rejected() {
        let mut v = vfs();
        let mut t = Tracefs::new(TracefsOptions::default());
        t.mount(&mut v, "/nfs").unwrap();
        assert!(matches!(
            t.mount(&mut v, "/nfs"),
            Err(FsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn injected_overflow_shows_up_as_incomplete_trace() {
        let mut v = vfs();
        let mut t = Tracefs::new(TracefsOptions {
            buffer_bytes: 1 << 20, // never flush: everything stays buffered
            ..Default::default()
        });
        t.mount(&mut v, "/nfs").unwrap();
        let plan = FaultPlan {
            seed: 7,
            faults: vec![Fault::TracerOverflow {
                node: 0,
                at: iotrace_sim::time::SimTime::ZERO,
            }],
        };
        t.inject_faults(&plan);
        let node = iotrace_sim::ids::NodeId(0);
        let (vn, now) = v
            .open(
                node,
                "/nfs/a",
                iotrace_fs::fs::OpenFlags::RDWR | iotrace_fs::fs::OpenFlags::CREAT,
                iotrace_fs::inode::FileMeta::default(),
                iotrace_sim::time::SimTime::ZERO,
            )
            .unwrap();
        let now = v
            .write(
                node,
                vn,
                0,
                &iotrace_fs::data::WritePayload::Synthetic(128),
                now,
            )
            .unwrap()
            .finish;
        v.close(node, vn, now).unwrap();
        let trace = t.trace("app");
        assert!(trace.meta.completeness < 1.0, "loss stamped in metadata");
        assert!(t.capture().dropped > 0);

        // The same ops without the fault plan leave a complete trace.
        let mut v2 = vfs();
        let mut t2 = Tracefs::new(TracefsOptions::default());
        t2.mount(&mut v2, "/nfs").unwrap();
        let (vn, now) = v2
            .open(
                node,
                "/nfs/a",
                iotrace_fs::fs::OpenFlags::RDWR | iotrace_fs::fs::OpenFlags::CREAT,
                iotrace_fs::inode::FileMeta::default(),
                iotrace_sim::time::SimTime::ZERO,
            )
            .unwrap();
        v2.close(node, vn, now).unwrap();
        assert!(t2.trace("app").meta.is_complete());
        assert!(!t2.trace("app").records.is_empty());
    }

    #[test]
    fn policy_none_mount_records_nothing() {
        let mut v = vfs();
        let mut t = Tracefs::new(TracefsOptions {
            policy: FilterPolicy::trace_none(),
            ..Default::default()
        });
        t.mount(&mut v, "/nfs").unwrap();
        v.put_file(iotrace_sim::ids::NodeId(0), "/nfs/x", b"1")
            .unwrap();
        assert!(t.capture().records.is_empty());
    }
}
