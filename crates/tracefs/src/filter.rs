//! The Tracefs granularity-control language — "a flexible declarative
//! syntax … for user-level specification of file system operations to be
//! traced" (paper §4.2). This is the feature that earns Tracefs a
//! "5 (V. Advanced)" on the taxonomy's granularity axis.
//!
//! Grammar (rules evaluated in order, **last match wins**; the default is
//! to trace nothing, so an empty policy disables tracing):
//!
//! ```text
//! policy := rule (';' rule)* ';'?
//! rule   := ('trace' | 'omit') target ('where' cond)?
//! target := 'all' | 'data' | 'meta' | op (',' op)*
//! op     := 'open' | 'close' | 'read' | 'write' | 'fsync' | 'stat'
//!         | 'mkdir' | 'unlink' | 'readdir' | 'rename' | 'truncate'
//! cond   := or ; or := and ('or' and)* ; and := not ('and' not)*
//! not    := 'not' not | '(' cond ')' | atom
//! atom   := 'path' ('glob' | '==') STRING
//!         | ('uid' | 'gid') ('==' | '!=') NUM
//!         | 'size' ('>' | '<' | '>=' | '<=' | '==') NUM
//! ```
//!
//! Example: `trace data where path glob "/data/**"; omit write where size < 4096;`

use iotrace_fs::path::glob_match;
use std::fmt;

/// File-system operation kinds Tracefs can filter on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FsOpKind {
    Open,
    Close,
    Read,
    Write,
    Fsync,
    Stat,
    Mkdir,
    Unlink,
    Readdir,
    Rename,
    Truncate,
}

impl FsOpKind {
    pub const ALL: [FsOpKind; 11] = [
        FsOpKind::Open,
        FsOpKind::Close,
        FsOpKind::Read,
        FsOpKind::Write,
        FsOpKind::Fsync,
        FsOpKind::Stat,
        FsOpKind::Mkdir,
        FsOpKind::Unlink,
        FsOpKind::Readdir,
        FsOpKind::Rename,
        FsOpKind::Truncate,
    ];

    pub fn is_data(self) -> bool {
        matches!(self, FsOpKind::Read | FsOpKind::Write)
    }

    pub fn name(self) -> &'static str {
        match self {
            FsOpKind::Open => "open",
            FsOpKind::Close => "close",
            FsOpKind::Read => "read",
            FsOpKind::Write => "write",
            FsOpKind::Fsync => "fsync",
            FsOpKind::Stat => "stat",
            FsOpKind::Mkdir => "mkdir",
            FsOpKind::Unlink => "unlink",
            FsOpKind::Readdir => "readdir",
            FsOpKind::Rename => "rename",
            FsOpKind::Truncate => "truncate",
        }
    }

    fn from_name(s: &str) -> Option<FsOpKind> {
        FsOpKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// The facts a rule can condition on.
#[derive(Clone, Debug)]
pub struct OpFacts<'a> {
    pub kind: FsOpKind,
    pub path: &'a str,
    pub uid: u32,
    pub gid: u32,
    /// Bytes moved (0 for metadata ops).
    pub size: u64,
}

#[derive(Clone, Debug, PartialEq)]
enum Cond {
    True,
    PathGlob(String),
    PathEq(String),
    UidCmp(bool, u32), // (equal?, value)
    GidCmp(bool, u32),
    SizeCmp(Ordering2, u64),
    And(Box<Cond>, Box<Cond>),
    Or(Box<Cond>, Box<Cond>),
    Not(Box<Cond>),
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Ordering2 {
    Gt,
    Lt,
    Ge,
    Le,
    Eq,
}

impl Cond {
    fn eval(&self, f: &OpFacts<'_>) -> bool {
        match self {
            Cond::True => true,
            Cond::PathGlob(g) => glob_match(g, f.path),
            Cond::PathEq(p) => f.path == p,
            Cond::UidCmp(eq, v) => (f.uid == *v) == *eq,
            Cond::GidCmp(eq, v) => (f.gid == *v) == *eq,
            Cond::SizeCmp(o, v) => match o {
                Ordering2::Gt => f.size > *v,
                Ordering2::Lt => f.size < *v,
                Ordering2::Ge => f.size >= *v,
                Ordering2::Le => f.size <= *v,
                Ordering2::Eq => f.size == *v,
            },
            Cond::And(a, b) => a.eval(f) && b.eval(f),
            Cond::Or(a, b) => a.eval(f) || b.eval(f),
            Cond::Not(c) => !c.eval(f),
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
struct Rule {
    trace: bool,
    ops: Vec<FsOpKind>,
    cond: Cond,
}

/// A parsed filter policy.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FilterPolicy {
    rules: Vec<Rule>,
    source: String,
}

/// Parse failure with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilterError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "filter syntax error at byte {}: {}",
            self.pos, self.message
        )
    }
}
impl std::error::Error for FilterError {}

struct P<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, m: &str) -> Result<T, FilterError> {
        Err(FilterError {
            pos: self.pos,
            message: m.to_string(),
        })
    }

    fn ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek_word(&mut self) -> Option<&'a str> {
        self.ws();
        let start = self.pos;
        let mut end = start;
        while end < self.s.len() && (self.s[end].is_ascii_alphanumeric() || self.s[end] == b'_') {
            end += 1;
        }
        if end == start {
            None
        } else {
            std::str::from_utf8(&self.s[start..end]).ok()
        }
    }

    fn word(&mut self) -> Option<&'a str> {
        let w = self.peek_word()?;
        self.pos += w.len();
        Some(w)
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.peek_word() == Some(w) {
            self.pos += w.len();
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        self.ws();
        if self.s[self.pos..].starts_with(sym.as_bytes()) {
            self.pos += sym.len();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, FilterError> {
        self.ws();
        if self.pos >= self.s.len() || self.s[self.pos] != b'"' {
            return self.err("expected string literal");
        }
        self.pos += 1;
        let start = self.pos;
        while self.pos < self.s.len() && self.s[self.pos] != b'"' {
            self.pos += 1;
        }
        if self.pos >= self.s.len() {
            return self.err("unterminated string");
        }
        let out = std::str::from_utf8(&self.s[start..self.pos])
            .map_err(|_| FilterError {
                pos: start,
                message: "invalid utf8".into(),
            })?
            .to_string();
        self.pos += 1;
        Ok(out)
    }

    fn number(&mut self) -> Result<u64, FilterError> {
        self.ws();
        let start = self.pos;
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected number");
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| FilterError {
                pos: start,
                message: "number too large".into(),
            })
    }

    fn atom(&mut self) -> Result<Cond, FilterError> {
        if self.eat_word("not") {
            return Ok(Cond::Not(Box::new(self.atom()?)));
        }
        if self.eat_sym("(") {
            let c = self.cond()?;
            if !self.eat_sym(")") {
                return self.err("expected ')'");
            }
            return Ok(c);
        }
        match self.word() {
            Some("path") => {
                if self.eat_word("glob") {
                    Ok(Cond::PathGlob(self.string()?))
                } else if self.eat_sym("==") {
                    Ok(Cond::PathEq(self.string()?))
                } else {
                    self.err("expected 'glob' or '==' after path")
                }
            }
            Some(w @ ("uid" | "gid")) => {
                let eq = if self.eat_sym("==") {
                    true
                } else if self.eat_sym("!=") {
                    false
                } else {
                    return self.err("expected '==' or '!='");
                };
                let v = self.number()? as u32;
                Ok(if w == "uid" {
                    Cond::UidCmp(eq, v)
                } else {
                    Cond::GidCmp(eq, v)
                })
            }
            Some("size") => {
                let o = if self.eat_sym(">=") {
                    Ordering2::Ge
                } else if self.eat_sym("<=") {
                    Ordering2::Le
                } else if self.eat_sym("==") {
                    Ordering2::Eq
                } else if self.eat_sym(">") {
                    Ordering2::Gt
                } else if self.eat_sym("<") {
                    Ordering2::Lt
                } else {
                    return self.err("expected comparison after size");
                };
                Ok(Cond::SizeCmp(o, self.number()?))
            }
            _ => self.err("expected condition"),
        }
    }

    fn and(&mut self) -> Result<Cond, FilterError> {
        let mut c = self.atom()?;
        while self.eat_word("and") {
            c = Cond::And(Box::new(c), Box::new(self.atom()?));
        }
        Ok(c)
    }

    fn cond(&mut self) -> Result<Cond, FilterError> {
        let mut c = self.and()?;
        while self.eat_word("or") {
            c = Cond::Or(Box::new(c), Box::new(self.and()?));
        }
        Ok(c)
    }

    fn rule(&mut self) -> Result<Rule, FilterError> {
        let trace = if self.eat_word("trace") {
            true
        } else if self.eat_word("omit") {
            false
        } else {
            return self.err("expected 'trace' or 'omit'");
        };
        let ops = if self.eat_word("all") {
            FsOpKind::ALL.to_vec()
        } else if self.eat_word("data") {
            FsOpKind::ALL.into_iter().filter(|k| k.is_data()).collect()
        } else if self.eat_word("meta") {
            FsOpKind::ALL.into_iter().filter(|k| !k.is_data()).collect()
        } else {
            let mut ops = Vec::new();
            loop {
                let w = match self.word() {
                    Some(w) => w,
                    None => return self.err("expected op name"),
                };
                match FsOpKind::from_name(w) {
                    Some(k) => ops.push(k),
                    None => {
                        self.pos -= w.len();
                        return self.err(&format!("unknown op '{w}'"));
                    }
                }
                if !self.eat_sym(",") {
                    break;
                }
            }
            ops
        };
        let cond = if self.eat_word("where") {
            self.cond()?
        } else {
            Cond::True
        };
        Ok(Rule { trace, ops, cond })
    }
}

impl FilterPolicy {
    /// Trace every file system operation.
    pub fn trace_all() -> Self {
        FilterPolicy::parse("trace all;").unwrap()
    }

    /// Trace nothing (tracing disabled).
    pub fn trace_none() -> Self {
        FilterPolicy::default()
    }

    pub fn source(&self) -> &str {
        &self.source
    }

    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    pub fn parse(src: &str) -> Result<FilterPolicy, FilterError> {
        let mut p = P {
            s: src.as_bytes(),
            pos: 0,
        };
        let mut rules = Vec::new();
        loop {
            p.ws();
            if p.pos >= p.s.len() {
                break;
            }
            rules.push(p.rule()?);
            p.ws();
            if p.pos >= p.s.len() {
                break;
            }
            if !p.eat_sym(";") {
                return p.err("expected ';'");
            }
        }
        Ok(FilterPolicy {
            rules,
            source: src.to_string(),
        })
    }

    /// Should this operation be traced? Last matching rule wins.
    pub fn matches(&self, facts: &OpFacts<'_>) -> bool {
        let mut verdict = false;
        for r in &self.rules {
            if r.ops.contains(&facts.kind) && r.cond.eval(facts) {
                verdict = r.trace;
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(kind: FsOpKind, path: &str, size: u64) -> OpFacts<'_> {
        OpFacts {
            kind,
            path,
            uid: 1000,
            gid: 100,
            size,
        }
    }

    #[test]
    fn trace_all_matches_everything() {
        let p = FilterPolicy::trace_all();
        for k in FsOpKind::ALL {
            assert!(p.matches(&facts(k, "/any", 0)), "{k:?}");
        }
    }

    #[test]
    fn empty_policy_traces_nothing() {
        let p = FilterPolicy::trace_none();
        assert!(!p.matches(&facts(FsOpKind::Write, "/x", 10)));
    }

    #[test]
    fn op_list_targets() {
        let p = FilterPolicy::parse("trace read, write;").unwrap();
        assert!(p.matches(&facts(FsOpKind::Read, "/x", 1)));
        assert!(p.matches(&facts(FsOpKind::Write, "/x", 1)));
        assert!(!p.matches(&facts(FsOpKind::Open, "/x", 0)));
    }

    #[test]
    fn data_and_meta_groups() {
        let p = FilterPolicy::parse("trace meta;").unwrap();
        assert!(p.matches(&facts(FsOpKind::Stat, "/x", 0)));
        assert!(!p.matches(&facts(FsOpKind::Read, "/x", 1)));
        let q = FilterPolicy::parse("trace data;").unwrap();
        assert!(q.matches(&facts(FsOpKind::Read, "/x", 1)));
        assert!(!q.matches(&facts(FsOpKind::Mkdir, "/x", 0)));
    }

    #[test]
    fn path_glob_condition() {
        let p = FilterPolicy::parse(r#"trace all where path glob "/data/**";"#).unwrap();
        assert!(p.matches(&facts(FsOpKind::Write, "/data/a/b", 1)));
        assert!(!p.matches(&facts(FsOpKind::Write, "/home/x", 1)));
    }

    #[test]
    fn last_match_wins() {
        let p = FilterPolicy::parse(r#"trace all; omit write where size < 4096;"#).unwrap();
        assert!(p.matches(&facts(FsOpKind::Write, "/x", 8192)));
        assert!(!p.matches(&facts(FsOpKind::Write, "/x", 100)));
        assert!(p.matches(&facts(FsOpKind::Read, "/x", 100)));
        // reversed order: trace all overrides the omit
        let q = FilterPolicy::parse(r#"omit write where size < 4096; trace all;"#).unwrap();
        assert!(q.matches(&facts(FsOpKind::Write, "/x", 100)));
    }

    #[test]
    fn boolean_operators_and_parens() {
        let p = FilterPolicy::parse(
            r#"trace all where (uid == 1000 or gid == 55) and not path glob "/tmp/*";"#,
        )
        .unwrap();
        assert!(p.matches(&facts(FsOpKind::Write, "/data/x", 1)));
        assert!(!p.matches(&facts(FsOpKind::Write, "/tmp/x", 1)));
        let mut f = facts(FsOpKind::Write, "/data/x", 1);
        f.uid = 2000;
        assert!(!p.matches(&f));
        f.gid = 55;
        assert!(p.matches(&f));
    }

    #[test]
    fn uid_negation() {
        let p = FilterPolicy::parse("trace all where uid != 0;").unwrap();
        let mut f = facts(FsOpKind::Read, "/x", 1);
        assert!(p.matches(&f));
        f.uid = 0;
        assert!(!p.matches(&f));
    }

    #[test]
    fn size_comparisons() {
        for (src, size, expect) in [
            ("trace write where size > 10;", 11, true),
            ("trace write where size > 10;", 10, false),
            ("trace write where size >= 10;", 10, true),
            ("trace write where size < 10;", 9, true),
            ("trace write where size <= 9;", 9, true),
            ("trace write where size == 7;", 7, true),
            ("trace write where size == 7;", 8, false),
        ] {
            let p = FilterPolicy::parse(src).unwrap();
            assert_eq!(
                p.matches(&facts(FsOpKind::Write, "/x", size)),
                expect,
                "{src} size={size}"
            );
        }
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(FilterPolicy::parse("bogus all;").is_err());
        assert!(FilterPolicy::parse("trace flurble;").is_err());
        assert!(FilterPolicy::parse("trace all where path glob ;").is_err());
        assert!(FilterPolicy::parse(r#"trace all where path glob "unterminated;"#).is_err());
        assert!(FilterPolicy::parse("trace all where size ^ 4;").is_err());
        let e = FilterPolicy::parse("trace read trace write;").unwrap_err();
        assert!(e.message.contains("';'"), "{e}");
    }

    #[test]
    fn trailing_semicolon_optional() {
        assert!(FilterPolicy::parse("trace all").is_ok());
        assert!(FilterPolicy::parse("trace all;").is_ok());
        assert!(FilterPolicy::parse("  ").unwrap().rule_count() == 0);
    }

    #[test]
    fn source_is_preserved() {
        let src = "trace read;";
        assert_eq!(FilterPolicy::parse(src).unwrap().source(), src);
    }
}
