//! Minimal poison-free mutex, parking_lot-style.
//!
//! Capture state is shared between the stacked layer and the framework
//! handle; a panic mid-operation must not wedge later harvests, so locks
//! recover the inner value from poisoning instead of propagating it.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A `std::sync::Mutex` whose `lock()` never fails: poisoning is
/// recovered by taking the inner value (the capture buffers stay valid —
/// at worst one record from the panicking operation is missing).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
