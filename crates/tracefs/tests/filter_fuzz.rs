//! Filter-language robustness: arbitrary input never panics the parser,
//! and valid policies evaluate without panicking on arbitrary facts.

use iotrace_tracefs::filter::{FilterPolicy, FsOpKind, OpFacts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_survives_arbitrary_text(s in "[ -~\\n]{0,200}") {
        let _ = FilterPolicy::parse(&s);
    }

    #[test]
    fn parser_survives_arbitrary_bytes_as_lossy_utf8(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let s = String::from_utf8_lossy(&data);
        let _ = FilterPolicy::parse(&s);
    }

    /// Grammar-shaped random policies: parse, then evaluate on random
    /// facts without panicking.
    #[test]
    fn valid_policies_evaluate(
        verbs in prop::collection::vec(0usize..2, 1..5),
        targets in prop::collection::vec(0usize..4, 1..5),
        sizes in prop::collection::vec(0u64..1_000_000, 1..5),
        path in "/[a-z]{1,6}/[a-z]{1,6}",
        size in 0u64..1_000_000,
        uid: u32,
    ) {
        let mut src = String::new();
        for ((v, t), sz) in verbs.iter().zip(&targets).zip(&sizes) {
            let verb = ["trace", "omit"][*v];
            let target = ["all", "data", "meta", "read, write"][*t];
            src.push_str(&format!("{verb} {target} where size < {sz} or uid == {uid}; "));
        }
        let policy = FilterPolicy::parse(&src).expect("grammar-shaped policy parses");
        for kind in FsOpKind::ALL {
            let _ = policy.matches(&OpFacts { kind, path: &path, uid, gid: 0, size });
        }
    }

    /// Last-match-wins: appending `trace all` forces a match; appending
    /// `omit all` forces a miss.
    #[test]
    fn terminal_rule_dominates(prefix in "(trace|omit) (all|data|meta); {0,3}", size in 0u64..100) {
        let facts = OpFacts { kind: FsOpKind::Write, path: "/x", uid: 0, gid: 0, size };
        let yes = FilterPolicy::parse(&format!("{prefix} trace all;")).unwrap();
        prop_assert!(yes.matches(&facts));
        let no = FilterPolicy::parse(&format!("{prefix} omit all;")).unwrap();
        prop_assert!(!no.matches(&facts));
    }
}
