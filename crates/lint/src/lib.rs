//! `iotrace-lint`: multi-pass static analysis of I/O traces.
//!
//! The paper's taxonomy treats a trace as a publishable artifact — it is
//! replayed, mined for dependencies, anonymized, and shared. Every one of
//! those consumers silently misbehaves on a malformed trace: a replayer
//! deadlocks on a cyclic dependency map, skew correction is garbage when
//! timestamps run backwards, and an "anonymized" trace with raw paths is
//! a disclosure. This crate lints traces *before* they reach those
//! consumers, the way a compiler front-end rejects ill-formed programs.
//!
//! Eight passes ship by default (rule catalog in `DESIGN.md`):
//!
//! | pass | defect class |
//! |------|--------------|
//! | [`passes::fd_lifecycle`] | use-after-close, double-close, leaked fds |
//! | [`passes::causality`] | torn barriers, unordered overlapping writes |
//! | [`passes::clock`] | non-monotonic timestamps, skew beyond budget |
//! | [`passes::depgraph`] | cyclic or dangling dependency maps |
//! | [`passes::anonleak`] | raw identifiers under an anonymization claim |
//! | [`passes::conflict`] | byte-range races no dependency edge orders |
//! | [`passes::policy_flow`] | lineage flows violating a label policy |
//! | [`passes::lineage`] | reads whose bytes have no recorded producer |
//!
//! The last three are dataflow passes built on the
//! [`iotrace_provenance`] lineage graph; `policy-flow` only activates
//! when the caller attaches a [`Policy`](iotrace_provenance::Policy)
//! via [`LintInput::with_policy`].
//!
//! Drive it with [`Linter`]:
//!
//! ```
//! use iotrace_lint::{LintConfig, Linter, LintInput};
//! let traces: Vec<iotrace_model::event::Trace> = Vec::new();
//! let report = Linter::new(LintConfig::default()).run(&LintInput::from_traces(&traces));
//! assert!(!report.has_errors());
//! ```
//!
//! The CLI front-end is `iotrace lint`; `iotrace-replay` uses the same
//! passes as a pre-flight gate.

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod config;
pub mod diag;
pub mod passes;

pub use config::LintConfig;
pub use diag::{Diagnostic, LintReport, Severity};
pub use passes::{LintInput, LintPass};

use iotrace_model::event::Trace;
use iotrace_partrace::deps::DependencyMap;
use iotrace_partrace::replayable::ReplayableTrace;

/// Runs a configured set of passes over one input and collects a sorted
/// report.
pub struct Linter {
    cfg: LintConfig,
    passes: Vec<Box<dyn LintPass>>,
}

impl Linter {
    /// All default passes under `cfg`.
    pub fn new(cfg: LintConfig) -> Self {
        Linter {
            cfg,
            passes: passes::default_passes(),
        }
    }

    /// Restrict to the passes whose [`LintPass::name`] appears in
    /// `names`; unknown names are reported back as an error.
    pub fn keep_passes(mut self, names: &[&str]) -> Result<Self, String> {
        for n in names {
            if !self.passes.iter().any(|p| p.name() == *n) {
                let known: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
                return Err(format!(
                    "unknown lint pass \"{n}\" (known: {})",
                    known.join(", ")
                ));
            }
        }
        self.passes.retain(|p| names.contains(&p.name()));
        Ok(self)
    }

    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    pub fn run(&self, input: &LintInput<'_>) -> LintReport {
        let mut diagnostics = Vec::new();
        for pass in &self.passes {
            pass.run(input, &self.cfg, &mut diagnostics);
        }
        downgrade_for_documented_loss(input, &mut diagnostics);
        let mut report = LintReport { diagnostics };
        report.sort();
        report
    }
}

/// Rules whose findings are expected artifacts of documented record
/// loss: a "leaked" fd may have its close in the lost suffix, a
/// use-after-close may be missing an intervening reopen, and
/// happens-before evidence is structurally unreliable when records or
/// dependency edges are known to be missing.
const LOSS_TOLERANT_RULES: &[&str] = &[
    "fd-leak",
    "fd-unknown",
    "fd-reopen",
    "fd-double-close",
    "fd-use-after-close",
    "hb-barrier-mismatch",
    "hb-write-race",
    "hb-read-race",
    "conflict-write-write",
    "conflict-read-write",
];

/// Cap loss-tolerant findings at [`Severity::Warning`] when the trace
/// they point into documents incomplete capture
/// (`meta.completeness < 1.0`). A degraded trace is still worth linting,
/// but a gap the tracer itself disclosed must not hard-fail pipelines
/// (replay preflight, CI gates) the way true corruption does.
fn downgrade_for_documented_loss(input: &LintInput<'_>, diagnostics: &mut [Diagnostic]) {
    let incomplete: std::collections::BTreeSet<u32> = input
        .traces
        .iter()
        .filter(|t| !t.meta.is_complete())
        .map(|t| t.meta.rank)
        .collect();
    if incomplete.is_empty() {
        return;
    }
    for d in diagnostics.iter_mut() {
        if d.severity != Severity::Error || !LOSS_TOLERANT_RULES.contains(&d.rule) {
            continue;
        }
        // Rank-local findings downgrade only when their own trace is
        // incomplete; cross-rank findings downgrade if any trace is.
        let applies = match d.rank {
            Some(r) => incomplete.contains(&r),
            None => true,
        };
        if applies {
            d.severity = Severity::Warning;
            let note = "downgraded from error: the trace documents record loss \
                        (completeness < 1.0), so the contradicting evidence may \
                        sit in the lost records";
            d.hint = Some(match d.hint.take() {
                Some(h) => format!("{h}; {note}"),
                None => note.to_string(),
            });
        }
    }
}

/// Lint a set of per-rank traces (optionally with their dependency map)
/// using the default passes and configuration.
pub fn lint_traces(traces: &[Trace], deps: Option<&DependencyMap>) -> LintReport {
    Linter::new(LintConfig::default()).run(&LintInput {
        traces,
        deps,
        policy: None,
    })
}

/// Lint a //TRACE replayable capture with the default passes.
pub fn lint_replayable(rt: &ReplayableTrace) -> LintReport {
    Linter::new(LintConfig::default()).run(&LintInput::from_replayable(rt))
}

/// Shared constructors for pass unit tests.
#[cfg(test)]
pub(crate) mod testutil {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use iotrace_model::event::{IoCall, Trace, TraceMeta, TraceRecord};
    use iotrace_sim::time::{SimDur, SimTime};

    /// A record at time zero (fd-lifecycle and anonleak ignore time).
    pub fn rec(rank: u32, call: IoCall, result: i64) -> TraceRecord {
        rec_at(rank, 0, 0, call, result)
    }

    pub fn rec_at(rank: u32, ts_ns: u64, dur_ns: u64, call: IoCall, result: i64) -> TraceRecord {
        TraceRecord {
            ts: SimTime::from_nanos(ts_ns),
            dur: SimDur::from_nanos(dur_ns),
            rank,
            node: rank,
            pid: 100 + rank,
            uid: 0,
            gid: 0,
            call,
            result,
        }
    }

    /// A single-rank trace from (call, result) pairs, timestamps spaced
    /// 1 µs apart so the clock pass stays quiet.
    pub fn trace_of(rank: u32, calls: Vec<(IoCall, i64)>) -> Trace {
        trace_of_records(
            rank,
            calls
                .into_iter()
                .enumerate()
                .map(|(i, (call, result))| rec_at(rank, i as u64 * 1_000, 100, call, result))
                .collect(),
        )
    }

    pub fn trace_of_records(rank: u32, records: Vec<TraceRecord>) -> Trace {
        let mut t = Trace::new(TraceMeta::new("/app", rank, rank, "test"));
        t.records = records;
        t
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::testutil::trace_of;
    use iotrace_model::event::IoCall;

    #[test]
    fn default_linter_runs_all_eight_passes() {
        let names = Linter::new(LintConfig::default()).pass_names();
        assert_eq!(
            names,
            vec![
                "fd-lifecycle",
                "causality",
                "clock",
                "depgraph",
                "anonleak",
                "conflict",
                "policy-flow",
                "lineage"
            ]
        );
    }

    #[test]
    fn keep_passes_filters_and_rejects_unknown() {
        let l = Linter::new(LintConfig::default())
            .keep_passes(&["clock"])
            .unwrap();
        assert_eq!(l.pass_names(), vec!["clock"]);
        assert!(Linter::new(LintConfig::default())
            .keep_passes(&["nope"])
            .is_err());
    }

    #[test]
    fn report_is_sorted_errors_first() {
        // One leak (warning) in rank 0, one use-after-close (error) in
        // rank 1: the error must lead regardless of rank order.
        let a = trace_of(
            0,
            vec![(
                IoCall::Open {
                    path: "/f".into(),
                    flags: 0,
                    mode: 0,
                },
                3,
            )],
        );
        let b = trace_of(
            1,
            vec![
                (
                    IoCall::Open {
                        path: "/f".into(),
                        flags: 0,
                        mode: 0,
                    },
                    3,
                ),
                (IoCall::Close { fd: 3 }, 0),
                (IoCall::Read { fd: 3, len: 1 }, 1),
            ],
        );
        let report = lint_traces(&[a, b], None);
        assert!(report.has_errors());
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
        assert_eq!(report.diagnostics[0].rule, "fd-use-after-close");
    }

    #[test]
    fn documented_loss_downgrades_fd_and_causality_errors() {
        // use-after-close is normally an Error…
        let mk = || {
            trace_of(
                0,
                vec![
                    (
                        IoCall::Open {
                            path: "/f".into(),
                            flags: 0,
                            mode: 0,
                        },
                        3,
                    ),
                    (IoCall::Close { fd: 3 }, 0),
                    (IoCall::Read { fd: 3, len: 1 }, 1),
                ],
            )
        };
        let complete = lint_traces(&[mk()], None);
        assert!(complete.has_errors());

        // …but with documented record loss it caps at Warning.
        let mut t = mk();
        t.meta.record_loss(3, 4);
        let degraded = lint_traces(&[t], None);
        assert!(!degraded.has_errors(), "{}", degraded.render_human());
        let d = degraded
            .diagnostics
            .iter()
            .find(|d| d.rule == "fd-use-after-close")
            .unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.hint.as_deref().unwrap().contains("record loss"));
    }

    #[test]
    fn loss_in_one_rank_does_not_shield_another() {
        let bad = |rank| {
            trace_of(
                rank,
                vec![
                    (
                        IoCall::Open {
                            path: "/f".into(),
                            flags: 0,
                            mode: 0,
                        },
                        3,
                    ),
                    (IoCall::Close { fd: 3 }, 0),
                    (IoCall::Read { fd: 3, len: 1 }, 1),
                ],
            )
        };
        let mut lossy = bad(0);
        lossy.meta.record_loss(1, 2);
        let report = lint_traces(&[lossy, bad(1)], None);
        // Rank 0's finding downgrades, rank 1's stays an error.
        assert!(report.has_errors());
        for d in &report.diagnostics {
            if d.rule == "fd-use-after-close" {
                match d.rank {
                    Some(0) => assert_eq!(d.severity, Severity::Warning),
                    Some(1) => assert_eq!(d.severity, Severity::Error),
                    r => panic!("unexpected rank {r:?}"),
                }
            }
        }
    }

    #[test]
    fn clock_errors_are_not_excused_by_loss() {
        use crate::testutil::{rec_at, trace_of_records};
        // Timestamps running backwards are corruption, not loss.
        let mut t = trace_of_records(
            0,
            vec![
                rec_at(0, 2_000, 100, IoCall::Close { fd: 3 }, 0),
                rec_at(0, 1_000, 100, IoCall::Close { fd: 4 }, 0),
            ],
        );
        t.meta.record_loss(1, 2);
        let report = lint_traces(std::slice::from_ref(&t), None);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.rule == "clock-nonmonotonic" && d.severity == Severity::Error),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn clean_traces_produce_clean_report() {
        let t = trace_of(
            0,
            vec![
                (
                    IoCall::Open {
                        path: "/f".into(),
                        flags: 0,
                        mode: 0,
                    },
                    3,
                ),
                (IoCall::Write { fd: 3, len: 64 }, 64),
                (IoCall::Close { fd: 3 }, 0),
            ],
        );
        let report = lint_traces(std::slice::from_ref(&t), None);
        assert!(report.is_clean(), "{}", report.render_human());
    }
}
