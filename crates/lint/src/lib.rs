//! `iotrace-lint`: multi-pass static analysis of I/O traces.
//!
//! The paper's taxonomy treats a trace as a publishable artifact — it is
//! replayed, mined for dependencies, anonymized, and shared. Every one of
//! those consumers silently misbehaves on a malformed trace: a replayer
//! deadlocks on a cyclic dependency map, skew correction is garbage when
//! timestamps run backwards, and an "anonymized" trace with raw paths is
//! a disclosure. This crate lints traces *before* they reach those
//! consumers, the way a compiler front-end rejects ill-formed programs.
//!
//! Five passes ship by default (rule catalog in `DESIGN.md`):
//!
//! | pass | defect class |
//! |------|--------------|
//! | [`passes::fd_lifecycle`] | use-after-close, double-close, leaked fds |
//! | [`passes::causality`] | torn barriers, unordered overlapping writes |
//! | [`passes::clock`] | non-monotonic timestamps, skew beyond budget |
//! | [`passes::depgraph`] | cyclic or dangling dependency maps |
//! | [`passes::anonleak`] | raw identifiers under an anonymization claim |
//!
//! Drive it with [`Linter`]:
//!
//! ```
//! use iotrace_lint::{LintConfig, Linter, LintInput};
//! let traces: Vec<iotrace_model::event::Trace> = Vec::new();
//! let report = Linter::new(LintConfig::default()).run(&LintInput::from_traces(&traces));
//! assert!(!report.has_errors());
//! ```
//!
//! The CLI front-end is `iotrace lint`; `iotrace-replay` uses the same
//! passes as a pre-flight gate.

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod config;
pub mod diag;
pub mod passes;

pub use config::LintConfig;
pub use diag::{Diagnostic, LintReport, Severity};
pub use passes::{LintInput, LintPass};

use iotrace_model::event::Trace;
use iotrace_partrace::deps::DependencyMap;
use iotrace_partrace::replayable::ReplayableTrace;

/// Runs a configured set of passes over one input and collects a sorted
/// report.
pub struct Linter {
    cfg: LintConfig,
    passes: Vec<Box<dyn LintPass>>,
}

impl Linter {
    /// All default passes under `cfg`.
    pub fn new(cfg: LintConfig) -> Self {
        Linter {
            cfg,
            passes: passes::default_passes(),
        }
    }

    /// Restrict to the passes whose [`LintPass::name`] appears in
    /// `names`; unknown names are reported back as an error.
    pub fn keep_passes(mut self, names: &[&str]) -> Result<Self, String> {
        for n in names {
            if !self.passes.iter().any(|p| p.name() == *n) {
                let known: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
                return Err(format!(
                    "unknown lint pass \"{n}\" (known: {})",
                    known.join(", ")
                ));
            }
        }
        self.passes.retain(|p| names.contains(&p.name()));
        Ok(self)
    }

    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    pub fn run(&self, input: &LintInput<'_>) -> LintReport {
        let mut diagnostics = Vec::new();
        for pass in &self.passes {
            pass.run(input, &self.cfg, &mut diagnostics);
        }
        let mut report = LintReport { diagnostics };
        report.sort();
        report
    }
}

/// Lint a set of per-rank traces (optionally with their dependency map)
/// using the default passes and configuration.
pub fn lint_traces(traces: &[Trace], deps: Option<&DependencyMap>) -> LintReport {
    Linter::new(LintConfig::default()).run(&LintInput { traces, deps })
}

/// Lint a //TRACE replayable capture with the default passes.
pub fn lint_replayable(rt: &ReplayableTrace) -> LintReport {
    Linter::new(LintConfig::default()).run(&LintInput::from_replayable(rt))
}

/// Shared constructors for pass unit tests.
#[cfg(test)]
pub(crate) mod testutil {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use iotrace_model::event::{IoCall, Trace, TraceMeta, TraceRecord};
    use iotrace_sim::time::{SimDur, SimTime};

    /// A record at time zero (fd-lifecycle and anonleak ignore time).
    pub fn rec(rank: u32, call: IoCall, result: i64) -> TraceRecord {
        rec_at(rank, 0, 0, call, result)
    }

    pub fn rec_at(rank: u32, ts_ns: u64, dur_ns: u64, call: IoCall, result: i64) -> TraceRecord {
        TraceRecord {
            ts: SimTime::from_nanos(ts_ns),
            dur: SimDur::from_nanos(dur_ns),
            rank,
            node: rank,
            pid: 100 + rank,
            uid: 0,
            gid: 0,
            call,
            result,
        }
    }

    /// A single-rank trace from (call, result) pairs, timestamps spaced
    /// 1 µs apart so the clock pass stays quiet.
    pub fn trace_of(rank: u32, calls: Vec<(IoCall, i64)>) -> Trace {
        trace_of_records(
            rank,
            calls
                .into_iter()
                .enumerate()
                .map(|(i, (call, result))| rec_at(rank, i as u64 * 1_000, 100, call, result))
                .collect(),
        )
    }

    pub fn trace_of_records(rank: u32, records: Vec<TraceRecord>) -> Trace {
        let mut t = Trace::new(TraceMeta::new("/app", rank, rank, "test"));
        t.records = records;
        t
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::testutil::trace_of;
    use iotrace_model::event::IoCall;

    #[test]
    fn default_linter_runs_all_five_passes() {
        let names = Linter::new(LintConfig::default()).pass_names();
        assert_eq!(
            names,
            vec!["fd-lifecycle", "causality", "clock", "depgraph", "anonleak"]
        );
    }

    #[test]
    fn keep_passes_filters_and_rejects_unknown() {
        let l = Linter::new(LintConfig::default())
            .keep_passes(&["clock"])
            .unwrap();
        assert_eq!(l.pass_names(), vec!["clock"]);
        assert!(Linter::new(LintConfig::default())
            .keep_passes(&["nope"])
            .is_err());
    }

    #[test]
    fn report_is_sorted_errors_first() {
        // One leak (warning) in rank 0, one use-after-close (error) in
        // rank 1: the error must lead regardless of rank order.
        let a = trace_of(
            0,
            vec![(
                IoCall::Open {
                    path: "/f".into(),
                    flags: 0,
                    mode: 0,
                },
                3,
            )],
        );
        let b = trace_of(
            1,
            vec![
                (
                    IoCall::Open {
                        path: "/f".into(),
                        flags: 0,
                        mode: 0,
                    },
                    3,
                ),
                (IoCall::Close { fd: 3 }, 0),
                (IoCall::Read { fd: 3, len: 1 }, 1),
            ],
        );
        let report = lint_traces(&[a, b], None);
        assert!(report.has_errors());
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
        assert_eq!(report.diagnostics[0].rule, "fd-use-after-close");
    }

    #[test]
    fn clean_traces_produce_clean_report() {
        let t = trace_of(
            0,
            vec![
                (
                    IoCall::Open {
                        path: "/f".into(),
                        flags: 0,
                        mode: 0,
                    },
                    3,
                ),
                (IoCall::Write { fd: 3, len: 64 }, 64),
                (IoCall::Close { fd: 3 }, 0),
            ],
        );
        let report = lint_traces(std::slice::from_ref(&t), None);
        assert!(report.is_clean(), "{}", report.render_human());
    }
}
