//! Structured diagnostics: what a pass reports and how a report renders.
//!
//! Every finding carries a stable rule id (the catalog lives in
//! `DESIGN.md`), a severity, an optional rank/record location, a message,
//! and — where the fix is mechanical — a hint. Reports render as
//! compiler-style human text or as a stable JSON document (consumed by
//! the golden CLI tests and by downstream tooling).

use std::fmt;

/// Finding severity, ordered so `Error` compares greatest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Observation worth surfacing; never fails a lint run.
    Info,
    /// Suspicious but replayable; fails only under `--deny-warnings`.
    Warning,
    /// The trace is inconsistent; replaying it would misbehave.
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding from one pass.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable rule id, e.g. `fd-use-after-close` (see DESIGN.md catalog).
    pub rule: &'static str,
    pub severity: Severity,
    /// Rank the finding is located in, if rank-specific.
    pub rank: Option<u32>,
    /// Index into that rank's record list, if record-specific.
    pub record: Option<usize>,
    pub message: String,
    /// Suggested fix, when one is mechanical.
    pub hint: Option<String>,
}

impl Diagnostic {
    pub fn new(rule: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity,
            rank: None,
            record: None,
            message: message.into(),
            hint: None,
        }
    }

    pub fn at_rank(mut self, rank: u32) -> Self {
        self.rank = Some(rank);
        self
    }

    pub fn at_record(mut self, rank: u32, record: usize) -> Self {
        self.rank = Some(rank);
        self.record = Some(record);
        self
    }

    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// `rank0#5`-style location tag, empty for trace-global findings.
    fn location(&self) -> String {
        match (self.rank, self.record) {
            (Some(r), Some(i)) => format!(" rank{r}#{i}"),
            (Some(r), None) => format!(" rank{r}"),
            _ => String::new(),
        }
    }
}

/// The outcome of a lint run: every diagnostic from every pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LintReport {
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    pub fn info_count(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Deterministic presentation order: errors first, then by location
    /// (global findings ahead of rank-local ones), then rule id.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.rank.cmp(&b.rank))
                .then(a.record.cmp(&b.record))
                .then(a.rule.cmp(b.rule))
                .then(a.message.cmp(&b.message))
        });
    }

    /// Compiler-style human rendering with a trailing summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}[{}]{}: {}\n",
                d.severity,
                d.rule,
                d.location(),
                d.message
            ));
            if let Some(h) = &d.hint {
                out.push_str(&format!("  hint: {h}\n"));
            }
        }
        if self.is_clean() {
            out.push_str("lint: no findings\n");
        } else {
            out.push_str(&format!(
                "lint: {} error(s), {} warning(s), {} note(s)\n",
                self.error_count(),
                self.warning_count(),
                self.info_count()
            ));
        }
        out
    }

    /// Stable pretty-printed JSON (schema `iotrace-lint/1`). Hand-rolled:
    /// this workspace builds offline, without serde.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"iotrace-lint/1\",\n");
        out.push_str(&format!("  \"errors\": {},\n", self.error_count()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warning_count()));
        out.push_str(&format!("  \"infos\": {},\n", self.info_count()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"rule\": \"{}\",\n", json_escape(d.rule)));
            out.push_str(&format!("      \"severity\": \"{}\",\n", d.severity));
            out.push_str(&format!("      \"rank\": {},\n", json_opt_num(d.rank)));
            out.push_str(&format!("      \"record\": {},\n", json_opt_num(d.record)));
            out.push_str(&format!(
                "      \"message\": \"{}\",\n",
                json_escape(&d.message)
            ));
            match &d.hint {
                Some(h) => out.push_str(&format!("      \"hint\": \"{}\"\n", json_escape(h))),
                None => out.push_str("      \"hint\": null\n"),
            }
            out.push_str("    }");
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_opt_num<T: fmt::Display>(v: Option<T>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

/// Minimal JSON string escaping: quotes, backslashes, control chars.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            diagnostics: vec![
                Diagnostic::new("b-rule", Severity::Warning, "warn").at_rank(1),
                Diagnostic::new("a-rule", Severity::Error, "bad \"path\"\n")
                    .at_record(0, 3)
                    .with_hint("fix it"),
            ],
        }
    }

    #[test]
    fn counts_and_flags() {
        let r = sample();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert!(LintReport::default().is_clean());
    }

    #[test]
    fn sort_puts_errors_first() {
        let mut r = sample();
        r.sort();
        assert_eq!(r.diagnostics[0].rule, "a-rule");
    }

    #[test]
    fn human_rendering_includes_location_and_hint() {
        let mut r = sample();
        r.sort();
        let s = r.render_human();
        assert!(s.contains("error[a-rule] rank0#3:"));
        assert!(s.contains("  hint: fix it"));
        assert!(s.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn json_escapes_and_nulls() {
        let mut r = sample();
        r.sort();
        let j = r.to_json();
        assert!(j.contains("\"schema\": \"iotrace-lint/1\""));
        assert!(j.contains("bad \\\"path\\\"\\n"));
        assert!(j.contains("\"record\": null"));
        assert!(j.contains("\"hint\": null"));
    }

    #[test]
    fn clean_report_renders_no_findings() {
        let r = LintReport::default();
        assert!(r.render_human().contains("no findings"));
        assert!(r.to_json().contains("\"errors\": 0"));
    }
}
