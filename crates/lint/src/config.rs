//! Lint thresholds.
//!
//! Clock bounds default to comfortably above what `iotrace-sim`'s
//! sampled cluster clocks produce (`NodeClock::sample` with ±500 µs skew
//! and ±40 ppm drift in the generators), so healthy generated traces lint
//! clean while grossly desynchronized ones do not.

/// Tunable thresholds shared by every pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LintConfig {
    /// Largest tolerated per-node clock offset from true time, ns. The
    /// cross-rank spread allowance at a barrier is twice this (two nodes
    /// skewed in opposite directions) plus the drift term.
    pub max_skew_ns: i64,
    /// Largest tolerated clock drift, parts-per-million of elapsed time.
    pub max_drift_ppm: f64,
    /// Longest plausible single call; anything above is flagged.
    pub max_call_ns: u64,
    /// Per-trace cap on repeated findings of one rule; the overflow is
    /// summarized in a single note so floods stay readable.
    pub max_reports_per_rule: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            max_skew_ns: 2_000_000,       // 2 ms
            max_drift_ppm: 100.0,         // quartz is ±50 ppm; double it
            max_call_ns: 600_000_000_000, // 10 minutes
            max_reports_per_rule: 8,
        }
    }
}

impl LintConfig {
    /// Cross-rank timestamp spread tolerated at a sync point observed at
    /// `at_ns`: opposing skews plus opposing drift accumulated since boot.
    pub fn skew_allowance_ns(&self, at_ns: u64) -> u64 {
        let skew = 2 * self.max_skew_ns.unsigned_abs();
        let drift = 2.0 * self.max_drift_ppm.abs() * at_ns as f64 / 1_000_000.0;
        skew + drift as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowance_grows_with_time() {
        let cfg = LintConfig::default();
        let early = cfg.skew_allowance_ns(0);
        let late = cfg.skew_allowance_ns(3_600_000_000_000);
        assert_eq!(early, 4_000_000);
        assert!(late > early);
    }
}
