//! The pass registry.

use iotrace_model::event::Trace;
use iotrace_partrace::deps::DependencyMap;
use iotrace_partrace::replayable::ReplayableTrace;
use iotrace_provenance::Policy;

use crate::config::LintConfig;
use crate::diag::Diagnostic;

pub mod anonleak;
pub mod causality;
pub mod clock;
pub mod conflict;
pub mod depgraph;
pub mod fd_lifecycle;
pub mod lineage;
pub mod policy_flow;

/// Everything a lint run can look at: the per-rank traces, the
/// dependency map when the input was a replayable capture, and an
/// information-flow policy when the caller supplied one.
#[derive(Clone, Copy)]
pub struct LintInput<'a> {
    pub traces: &'a [Trace],
    pub deps: Option<&'a DependencyMap>,
    pub policy: Option<&'a Policy>,
}

impl<'a> LintInput<'a> {
    pub fn from_traces(traces: &'a [Trace]) -> Self {
        LintInput {
            traces,
            deps: None,
            policy: None,
        }
    }

    pub fn from_replayable(rt: &'a ReplayableTrace) -> Self {
        LintInput {
            traces: &rt.traces,
            deps: Some(&rt.deps),
            policy: None,
        }
    }

    /// Attach a flow policy (enables the `policy-flow` pass).
    pub fn with_policy(mut self, policy: &'a Policy) -> Self {
        self.policy = Some(policy);
        self
    }
}

/// One analysis pass. Passes are pure: they read the input and append
/// diagnostics; ordering between passes carries no meaning.
pub trait LintPass {
    /// Stable pass name (used by `iotrace lint --pass <name>`).
    fn name(&self) -> &'static str;
    fn run(&self, input: &LintInput<'_>, cfg: &LintConfig, out: &mut Vec<Diagnostic>);
}

/// The default pass set, in catalog order.
pub fn default_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(fd_lifecycle::FdLifecycle),
        Box::new(causality::Causality),
        Box::new(clock::ClockSanity),
        Box::new(depgraph::DepGraph),
        Box::new(anonleak::AnonLeakage),
        Box::new(conflict::Conflict),
        Box::new(policy_flow::PolicyFlow),
        Box::new(lineage::LineageCompleteness),
    ]
}
