//! `policy-flow`: information-flow violations against a label policy.
//!
//! The caller labels path globs with confidentiality and integrity
//! levels (`iotrace_provenance::Policy`, the trace2e model). This pass
//! builds the byte-range lineage graph and checks every *transitive*
//! flow the capture exhibits: for each file the capture writes, the
//! upstream closure of those writes yields the set of source files whose
//! data may be in it. A source with higher confidentiality than the
//! sink is a leak (`policy-conf-leak`); a source with lower integrity
//! than the sink is a taint (`policy-integ-taint`). Both are errors —
//! the policy is the operator's own declaration of intent.
//!
//! The lineage closure widens at rank granularity (a rank's write may
//! carry anything that rank previously read or received over a //TRACE
//! dependency edge), so a finding means "the traced schedule permits
//! this flow", not "bytes provably moved". That is the right polarity
//! for a lint: the fix is either real (cut the flow) or declarative
//! (label the sink).
//!
//! Without a policy on the input the pass is silent.

use std::collections::{BTreeMap, BTreeSet};

use iotrace_provenance::policy::LabelKind;
use iotrace_provenance::{upstream_of_nodes, LineageGraph, NodeId, NodeKind};

use crate::config::LintConfig;
use crate::diag::{Diagnostic, Severity};
use crate::passes::{LintInput, LintPass};

pub struct PolicyFlow;

impl LintPass for PolicyFlow {
    fn name(&self) -> &'static str {
        "policy-flow"
    }

    fn run(&self, input: &LintInput<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        let Some(policy) = input.policy else {
            return;
        };
        let g = LineageGraph::build(input.traces, input.deps);
        // Write nodes grouped by sink path, in node-id (build) order.
        let mut writes_by_path: BTreeMap<&str, Vec<NodeId>> = BTreeMap::new();
        for (i, n) in g.nodes.iter().enumerate() {
            if n.kind == NodeKind::Write {
                if let Some(p) = g.path_of(i as NodeId) {
                    writes_by_path.entry(p).or_default().push(i as NodeId);
                }
            }
        }
        for (sink, writes) in &writes_by_path {
            let lineage = upstream_of_nodes(&g, writes.iter().copied());
            let sources: BTreeSet<&str> = lineage
                .nodes
                .iter()
                .filter_map(|&id| g.path_of(id))
                .filter(|p| p != sink)
                .collect();
            let anchor = &g.nodes[writes[0] as usize];
            for source in sources {
                if policy.conf(source) > policy.conf(sink) {
                    out.push(
                        Diagnostic::new(
                            "policy-conf-leak",
                            Severity::Error,
                            format!(
                                "data from {source} ({}) flows into {sink} ({})",
                                describe(policy, source, LabelKind::Confidentiality),
                                describe(policy, sink, LabelKind::Confidentiality),
                            ),
                        )
                        .at_record(anchor.rank, anchor.record)
                        .with_hint(format!(
                            "the sink's confidentiality label is below the source's: \
                             raise it in the policy or cut the flow; \
                             `iotrace provenance --query {sink}` shows the lineage"
                        )),
                    );
                }
                if policy.integ(source) < policy.integ(sink) {
                    out.push(
                        Diagnostic::new(
                            "policy-integ-taint",
                            Severity::Error,
                            format!(
                                "data from {source} ({}) flows into {sink} ({})",
                                describe(policy, source, LabelKind::Integrity),
                                describe(policy, sink, LabelKind::Integrity),
                            ),
                        )
                        .at_record(anchor.rank, anchor.record)
                        .with_hint(format!(
                            "the source's integrity label is below the sink's: \
                             untrusted data reaches a trusted file; \
                             `iotrace provenance --query {sink}` shows the lineage"
                        )),
                    );
                }
            }
        }
    }
}

/// `conf 3, policy line 2` / `conf 0, unlabeled` — cited in messages.
fn describe(policy: &iotrace_provenance::Policy, path: &str, kind: LabelKind) -> String {
    let name = match kind {
        LabelKind::Confidentiality => "conf",
        LabelKind::Integrity => "integ",
    };
    match policy.matching_rule(path, kind) {
        Some(r) => format!("{name} {}, policy line {}", r.level, r.line),
        None => format!("{name} 0, unlabeled"),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::testutil::trace_of;
    use iotrace_model::event::{IoCall, Trace};
    use iotrace_provenance::Policy;

    fn run(traces: &[Trace], policy: Option<&Policy>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        PolicyFlow.run(
            &LintInput {
                traces,
                deps: None,
                policy,
            },
            &LintConfig::default(),
            &mut out,
        );
        out
    }

    fn open(fd: i64, path: &str) -> (IoCall, i64) {
        (
            IoCall::Open {
                path: path.into(),
                flags: 0,
                mode: 0,
            },
            fd,
        )
    }

    fn pwrite(fd: i64, len: u64) -> (IoCall, i64) {
        (IoCall::Pwrite { fd, offset: 0, len }, len as i64)
    }

    fn pread(fd: i64, len: u64) -> (IoCall, i64) {
        (IoCall::Pread { fd, offset: 0, len }, len as i64)
    }

    /// One rank copies /secret/key into /out/public.dat.
    fn copier() -> Trace {
        trace_of(
            0,
            vec![
                open(3, "/secret/key"),
                pread(3, 64),
                open(4, "/out/public.dat"),
                pwrite(4, 64),
            ],
        )
    }

    #[test]
    fn confidential_to_public_flow_is_a_leak() {
        let policy = Policy::parse("conf /secret/** 3\n").unwrap();
        let out = run(&[copier()], Some(&policy));
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "policy-conf-leak");
        assert_eq!(out[0].severity, Severity::Error);
        assert!(out[0].message.contains("/secret/key"), "{}", out[0].message);
        assert!(
            out[0].message.contains("policy line 1"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn equally_labeled_sink_is_fine() {
        let policy = Policy::parse("conf /secret/** 3\nconf /out/** 3\n").unwrap();
        assert!(run(&[copier()], Some(&policy)).is_empty());
    }

    #[test]
    fn untrusted_to_trusted_flow_is_a_taint() {
        let policy = Policy::parse("integ /out/** 2\n").unwrap();
        let out = run(&[copier()], Some(&policy));
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "policy-integ-taint");
    }

    #[test]
    fn flows_compose_transitively_through_staging_files() {
        // rank0: /secret -> /stage ; rank1: /stage -> /out
        let a = trace_of(
            0,
            vec![
                open(3, "/secret/key"),
                pread(3, 64),
                open(4, "/stage/tmp"),
                pwrite(4, 64),
            ],
        );
        let mut b = trace_of(
            1,
            vec![
                open(3, "/stage/tmp"),
                pread(3, 64),
                open(4, "/out/final"),
                pwrite(4, 64),
            ],
        );
        // Put rank1 strictly after rank0 on the merged timeline.
        for r in &mut b.records {
            r.ts += iotrace_sim::time::SimDur::from_millis(10);
        }
        let policy = Policy::parse("conf /secret/** 3\nconf /stage/** 3\n").unwrap();
        let out = run(&[a, b], Some(&policy));
        // /stage is labeled as high as the secret, so the only findings
        // are the flows into /out: from /secret (transitive) and /stage.
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "policy-conf-leak"));
        assert!(out.iter().any(|d| d.message.contains("/secret/key")));
    }

    #[test]
    fn no_policy_means_no_findings() {
        assert!(run(&[copier()], None).is_empty());
    }

    #[test]
    fn unrelated_files_do_not_leak() {
        // reader of /secret writes nothing; an unrelated rank writes /out.
        let a = trace_of(0, vec![open(3, "/secret/key"), pread(3, 64)]);
        let b = trace_of(1, vec![open(3, "/out/x"), pwrite(3, 64)]);
        let policy = Policy::parse("conf /secret/** 3\n").unwrap();
        assert!(run(&[a, b], Some(&policy)).is_empty());
    }
}
