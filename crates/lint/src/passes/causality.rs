//! Happens-before checking across ranks (pass `causality`).
//!
//! In these traces the only cross-rank synchronization visible is
//! `MPI_Barrier`, so each rank's history factors into *epochs*: the runs
//! of records between successive barriers. With barriers as the sole
//! sync edges, the vector clock of an event collapses to its epoch
//! number — two events on different ranks are ordered iff their epochs
//! differ, and concurrent iff equal. The pass checks:
//!
//! * every rank completed the same number of barriers
//!   (`hb-barrier-mismatch`) — unequal counts mean the collective was
//!   torn and no epoch alignment exists;
//! * no two ranks write overlapping byte ranges of the same file within
//!   one epoch (`hb-write-race`) — such writes are unordered, so replay
//!   may legally commit them in either order and diverge;
//! * no rank reads a region another rank concurrently writes
//!   (`hb-read-race`).
//!
//! Only calls with explicit offsets (`pwrite`, `MPI_File_write_at`, VFS
//! page I/O) are checked; cursor-relative `write` would require lseek
//! emulation and is out of scope (documented in DESIGN.md).

use std::collections::BTreeSet;

use iotrace_model::event::{IoCall, Trace};
use iotrace_model::fasthash::FxHashMap;
use iotrace_model::intern::{Interner, Sym};

use crate::config::LintConfig;
use crate::diag::{Diagnostic, Severity};
use crate::passes::{LintInput, LintPass};

pub struct Causality;

/// One explicit-offset access, located by (rank, record) and aligned to
/// its barrier epoch. The path is interned: the overlap scan compares
/// and groups millions of accesses, so it hashes `u32`s, not strings.
struct Access {
    rank: u32,
    record: usize,
    epoch: usize,
    path: Sym,
    start: u64,
    end: u64,
    write: bool,
}

/// Collect explicit-offset accesses from one rank, resolving fds through
/// the opens seen so far.
fn collect_accesses(trace: &Trace, paths: &mut Interner, out: &mut Vec<Access>) {
    let mut fd_path: FxHashMap<i64, Sym> = FxHashMap::default();
    let mut epoch = 0usize;
    for (i, r) in trace.records.iter().enumerate() {
        if r.is_error() {
            continue;
        }
        let (path, offset, len, write) = match &r.call {
            IoCall::MpiBarrier => {
                epoch += 1;
                continue;
            }
            IoCall::Open { path, .. } | IoCall::MpiFileOpen { path, .. } => {
                fd_path.insert(r.result, paths.intern(path));
                continue;
            }
            IoCall::Pwrite { fd, offset, len } | IoCall::MpiFileWriteAt { fd, offset, len } => {
                match fd_path.get(fd) {
                    Some(&p) => (p, *offset, *len, true),
                    None => continue,
                }
            }
            IoCall::Pread { fd, offset, len } | IoCall::MpiFileReadAt { fd, offset, len } => {
                match fd_path.get(fd) {
                    Some(&p) => (p, *offset, *len, false),
                    None => continue,
                }
            }
            IoCall::VfsWritePage { path, offset, len } => (paths.intern(path), *offset, *len, true),
            IoCall::VfsReadPage { path, offset, len } => (paths.intern(path), *offset, *len, false),
            _ => continue,
        };
        if len == 0 {
            continue;
        }
        out.push(Access {
            rank: trace.meta.rank,
            record: i,
            epoch,
            path,
            start: offset,
            end: offset.saturating_add(len),
            write,
        });
    }
}

fn barrier_count(trace: &Trace) -> usize {
    trace
        .records
        .iter()
        .filter(|r| !r.is_error() && r.call == IoCall::MpiBarrier)
        .count()
}

impl LintPass for Causality {
    fn name(&self) -> &'static str {
        "causality"
    }

    fn run(&self, input: &LintInput<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        if input.traces.len() < 2 {
            return; // single-rank traces have no cross-rank ordering to check
        }

        // Barrier structure must agree before epochs mean anything.
        let counts: Vec<(u32, usize)> = input
            .traces
            .iter()
            .map(|t| (t.meta.rank, barrier_count(t)))
            .collect();
        let distinct: BTreeSet<usize> = counts.iter().map(|&(_, c)| c).collect();
        if distinct.len() > 1 {
            let (lo_rank, lo) = counts
                .iter()
                .min_by_key(|&&(_, c)| c)
                .copied()
                .unwrap_or((0, 0));
            let (hi_rank, hi) = counts
                .iter()
                .max_by_key(|&&(_, c)| c)
                .copied()
                .unwrap_or((0, 0));
            out.push(
                Diagnostic::new(
                    "hb-barrier-mismatch",
                    Severity::Error,
                    format!(
                        "ranks completed unequal barrier counts: rank{lo_rank} saw {lo}, \
                         rank{hi_rank} saw {hi}"
                    ),
                )
                .with_hint("a torn collective breaks the happens-before structure; re-capture"),
            );
        }

        // Overlap scan: one flat sort of all accesses keyed on
        // (epoch, path, start), then a sweep over group slices —
        // interned end-to-end, no per-access map node or per-group
        // `Vec` allocation, no string comparison in the hot key. Group
        // order must stay (epoch, *lexicographic* path) because the
        // `seen` dedup keeps whichever pair a group visits first, so
        // symbols are ranked by their resolved strings once up front
        // (symbol ids follow first-intern order, not path order).
        let mut paths = Interner::new();
        let mut accesses = Vec::new();
        for t in input.traces {
            collect_accesses(t, &mut paths, &mut accesses);
        }
        let mut by_path: Vec<Sym> = paths.iter().map(|(s, _)| s).collect();
        by_path.sort_by_key(|&s| paths.resolve(s));
        let mut path_rank: Vec<u32> = vec![0; paths.len()];
        for (rank, &s) in by_path.iter().enumerate() {
            path_rank[s.id() as usize] = rank as u32;
        }
        let key = |a: &Access| {
            (
                a.epoch,
                path_rank[a.path.id() as usize],
                a.start,
                a.rank,
                a.record,
            )
        };
        accesses.sort_unstable_by_key(key);

        // One diagnostic per (epoch, path, rank pair, kind) so a torn
        // stripe pattern doesn't flood the report.
        let mut seen: BTreeSet<(usize, Sym, u32, u32, bool)> = BTreeSet::new();
        let mut lo = 0usize;
        while lo < accesses.len() {
            let group_key = (accesses[lo].epoch, accesses[lo].path);
            let mut hi = lo + 1;
            while hi < accesses.len() && (accesses[hi].epoch, accesses[hi].path) == group_key {
                hi += 1;
            }
            let group = &accesses[lo..hi];
            let (epoch, path) = (group_key.0, paths.resolve(group_key.1));
            for (i, a) in group.iter().enumerate() {
                for b in group.iter().skip(i + 1) {
                    if b.start >= a.end {
                        break; // sorted by start: nothing later overlaps a
                    }
                    if a.rank == b.rank || (!a.write && !b.write) {
                        continue;
                    }
                    let (lo, hi) = if a.rank < b.rank { (a, b) } else { (b, a) };
                    let both_write = a.write && b.write;
                    if !seen.insert((epoch, a.path, lo.rank, hi.rank, both_write)) {
                        continue;
                    }
                    let overlap_start = a.start.max(b.start);
                    let overlap_end = a.end.min(b.end);
                    if both_write {
                        out.push(
                            Diagnostic::new(
                                "hb-write-race",
                                Severity::Error,
                                format!(
                                    "rank{}#{} and rank{}#{} write overlapping bytes \
                                     [{overlap_start}, {overlap_end}) of {path} in barrier \
                                     epoch {epoch} with no ordering between them",
                                    lo.rank, lo.record, hi.rank, hi.record
                                ),
                            )
                            .with_hint(
                                "replay may commit these writes in either order; separate them \
                                 with a barrier or disjoint offsets",
                            ),
                        );
                    } else {
                        let (w, r) = if a.write { (a, b) } else { (b, a) };
                        out.push(Diagnostic::new(
                            "hb-read-race",
                            Severity::Warning,
                            format!(
                                "rank{}#{} reads bytes [{overlap_start}, {overlap_end}) of \
                                     {path} while rank{}#{} concurrently writes them \
                                     (barrier epoch {epoch})",
                                r.rank, r.record, w.rank, w.record
                            ),
                        ));
                    }
                }
            }
            lo = hi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trace_of;

    fn open(path: &str) -> (IoCall, i64) {
        (
            IoCall::Open {
                path: path.into(),
                flags: 0,
                mode: 0,
            },
            3,
        )
    }

    fn pwrite(off: u64, len: u64) -> (IoCall, i64) {
        (
            IoCall::Pwrite {
                fd: 3,
                offset: off,
                len,
            },
            len as i64,
        )
    }

    fn run(traces: &[Trace]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        Causality.run(
            &LintInput::from_traces(traces),
            &LintConfig::default(),
            &mut out,
        );
        out
    }

    #[test]
    fn disjoint_writes_in_one_epoch_are_clean() {
        let a = trace_of(0, vec![open("/f"), pwrite(0, 100)]);
        let b = trace_of(1, vec![open("/f"), pwrite(100, 100)]);
        assert!(run(&[a, b]).is_empty());
    }

    #[test]
    fn overlapping_unordered_writes_race() {
        let a = trace_of(0, vec![open("/f"), pwrite(0, 100)]);
        let b = trace_of(1, vec![open("/f"), pwrite(50, 100)]);
        let out = run(&[a, b]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "hb-write-race");
        assert_eq!(out[0].severity, Severity::Error);
    }

    #[test]
    fn barrier_orders_the_same_writes() {
        let a = trace_of(0, vec![open("/f"), pwrite(0, 100), (IoCall::MpiBarrier, 0)]);
        let b = trace_of(
            1,
            vec![open("/f"), (IoCall::MpiBarrier, 0), pwrite(50, 100)],
        );
        assert!(run(&[a, b]).is_empty());
    }

    #[test]
    fn same_rank_overlap_is_program_ordered() {
        let a = trace_of(0, vec![open("/f"), pwrite(0, 100), pwrite(0, 100)]);
        let b = trace_of(1, vec![open("/f")]);
        assert!(run(&[a, b]).is_empty());
    }

    #[test]
    fn concurrent_read_of_written_region_warns() {
        let a = trace_of(0, vec![open("/f"), pwrite(0, 100)]);
        let b = trace_of(
            1,
            vec![
                open("/f"),
                (
                    IoCall::Pread {
                        fd: 3,
                        offset: 10,
                        len: 10,
                    },
                    10,
                ),
            ],
        );
        let out = run(&[a, b]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "hb-read-race");
        assert_eq!(out[0].severity, Severity::Warning);
    }

    #[test]
    fn unequal_barrier_counts_error() {
        let a = trace_of(0, vec![(IoCall::MpiBarrier, 0), (IoCall::MpiBarrier, 0)]);
        let b = trace_of(1, vec![(IoCall::MpiBarrier, 0)]);
        let out = run(&[a, b]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "hb-barrier-mismatch");
    }

    #[test]
    fn different_files_never_race() {
        let a = trace_of(0, vec![open("/f"), pwrite(0, 100)]);
        let b = trace_of(1, vec![open("/g"), pwrite(0, 100)]);
        assert!(run(&[a, b]).is_empty());
    }

    #[test]
    fn vfs_pages_participate() {
        let a = trace_of(
            0,
            vec![(
                IoCall::VfsWritePage {
                    path: "/f".into(),
                    offset: 0,
                    len: 4096,
                },
                0,
            )],
        );
        let b = trace_of(
            1,
            vec![(
                IoCall::VfsWritePage {
                    path: "/f".into(),
                    offset: 2048,
                    len: 4096,
                },
                0,
            )],
        );
        let out = run(&[a, b]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "hb-write-race");
    }
}
