//! `lineage`: reads whose bytes have no recorded producer.
//!
//! A capture that claims to be complete should account for every byte a
//! rank reads out of a file the capture itself wrote: if rank 2 reads
//! `[0, 4096)` of `/pfs/stage` and the merged trace contains writes for
//! only `[0, 2048)`, either records were lost or an untraced process
//! wrote the rest — both make the trace unreliable as a replay or
//! mining artifact. Files the capture never writes are exempt (input
//! data predates the trace by construction).
//!
//! The finding is cross-checked against the tracer's own disclosure
//! ([`TraceMeta::completeness`](iotrace_model::event::TraceMeta)): when
//! any rank documents record loss, a missing producer is the *expected*
//! shape of that loss, so the finding caps at warning
//! (`lineage-orphan-read`); on a capture that claims completeness it is
//! an error. Orphans are aggregated per (reader rank, file): a
//! systematically missing writer surfaces as one finding, not one per
//! read.
//!
//! When ranks disagree on barrier count the epoch replay order behind
//! the lineage graph is unreliable, so the pass stands down and leaves
//! the torn collective to `causality`'s `hb-barrier-mismatch`.

use std::collections::BTreeMap;

use iotrace_provenance::{LineageGraph, NodeKind};

use crate::config::LintConfig;
use crate::diag::{Diagnostic, Severity};
use crate::passes::{LintInput, LintPass};

pub struct LineageCompleteness;

impl LintPass for LineageCompleteness {
    fn name(&self) -> &'static str {
        "lineage"
    }

    fn run(&self, input: &LintInput<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        let g = LineageGraph::build(input.traces, input.deps);
        if !g.hb().aligned() {
            return; // torn barriers: causality reports, epochs untrustworthy
        }
        let documented_loss = input.traces.iter().any(|t| !t.meta.is_complete());
        // (rank, path) -> (orphan bytes, span count, first record)
        let mut agg: BTreeMap<(u32, String), (u64, usize, usize)> = BTreeMap::new();
        for o in &g.orphans {
            let n = &g.nodes[o.read as usize];
            debug_assert_eq!(n.kind, NodeKind::Read);
            let Some(path) = g.path_of(o.read) else {
                continue;
            };
            let e = agg
                .entry((n.rank, path.to_string()))
                .or_insert((0, 0, n.record));
            e.0 += o.end - o.start;
            e.1 += 1;
            e.2 = e.2.min(n.record);
        }
        for ((rank, path), (bytes, spans, record)) in agg {
            let (severity, hint) = if documented_loss {
                (
                    Severity::Warning,
                    "the capture documents record loss (completeness < 1.0), so the \
                     producing writes are plausibly among the lost records",
                )
            } else {
                (
                    Severity::Error,
                    "the capture claims completeness, so these bytes were produced \
                     outside the traced job or the tracer dropped records without \
                     declaring it",
                )
            };
            out.push(
                Diagnostic::new(
                    "lineage-orphan-read",
                    severity,
                    format!(
                        "rank{rank} reads {bytes} byte(s) of {path} ({spans} span(s)) \
                         that no recorded write produced"
                    ),
                )
                .at_record(rank, record)
                .with_hint(hint),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::testutil::trace_of;
    use iotrace_model::event::{IoCall, Trace};

    fn run(traces: &[Trace]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        LineageCompleteness.run(
            &LintInput {
                traces,
                deps: None,
                policy: None,
            },
            &LintConfig::default(),
            &mut out,
        );
        out
    }

    fn open(fd: i64, path: &str) -> (IoCall, i64) {
        (
            IoCall::Open {
                path: path.into(),
                flags: 0,
                mode: 0,
            },
            fd,
        )
    }

    fn partial_producer() -> Trace {
        // Writes [0, 100) of /pfs/stage, then reads [0, 300): 200 orphan
        // bytes in one span.
        trace_of(
            0,
            vec![
                open(3, "/pfs/stage"),
                (
                    IoCall::Pwrite {
                        fd: 3,
                        offset: 0,
                        len: 100,
                    },
                    100,
                ),
                (
                    IoCall::Pread {
                        fd: 3,
                        offset: 0,
                        len: 300,
                    },
                    300,
                ),
            ],
        )
    }

    #[test]
    fn orphan_bytes_error_on_complete_captures() {
        let out = run(&[partial_producer()]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lineage-orphan-read");
        assert_eq!(out[0].severity, Severity::Error);
        assert!(out[0].message.contains("200 byte(s)"), "{}", out[0].message);
    }

    #[test]
    fn documented_loss_caps_at_warning() {
        let mut t = partial_producer();
        t.meta.record_loss(5, 8);
        let out = run(&[t]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warning);
        assert!(out[0]
            .hint
            .as_deref()
            .unwrap()
            .contains("completeness < 1.0"));
    }

    #[test]
    fn input_files_are_exempt() {
        let t = trace_of(
            0,
            vec![
                open(3, "/pfs/input.dat"),
                (
                    IoCall::Pread {
                        fd: 3,
                        offset: 0,
                        len: 4096,
                    },
                    4096,
                ),
            ],
        );
        assert!(run(&[t]).is_empty());
    }

    #[test]
    fn fully_covered_reads_are_clean() {
        let t = trace_of(
            0,
            vec![
                open(3, "/pfs/stage"),
                (
                    IoCall::Pwrite {
                        fd: 3,
                        offset: 0,
                        len: 300,
                    },
                    300,
                ),
                (
                    IoCall::Pread {
                        fd: 3,
                        offset: 0,
                        len: 300,
                    },
                    300,
                ),
            ],
        );
        assert!(run(&[t]).is_empty());
    }

    #[test]
    fn orphans_aggregate_per_rank_and_path() {
        let mut calls = vec![open(3, "/pfs/stage")];
        for i in 0..10u64 {
            calls.push((
                IoCall::Pwrite {
                    fd: 3,
                    offset: i * 100,
                    len: 10,
                },
                10,
            ));
        }
        for i in 0..10u64 {
            calls.push((
                IoCall::Pread {
                    fd: 3,
                    offset: i * 100,
                    len: 100,
                },
                100,
            ));
        }
        let out = run(&[trace_of(0, calls)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("900 byte(s)"), "{}", out[0].message);
        assert!(out[0].message.contains("10 span(s)"), "{}", out[0].message);
    }

    #[test]
    fn torn_barriers_stand_down() {
        let mut a = partial_producer();
        a.records.push(crate::testutil::rec_at(
            0,
            10_000,
            100,
            IoCall::MpiBarrier,
            0,
        ));
        let b = trace_of(1, vec![]);
        // rank0 saw one barrier, rank1 none: epochs unreliable.
        let out = run(&[a, b]);
        assert!(out.is_empty(), "{out:?}");
    }
}
