//! Dependency-map validation (pass `depgraph`).
//!
//! //TRACE replays wait on the edges of a
//! [`DependencyMap`](iotrace_partrace::deps::DependencyMap); a malformed
//! map either deadlocks the replayer or silently drops ordering. Before
//! replay this pass checks that every edge endpoint names a rank and
//! record that exist (`dep-dangling-rank`, `dep-dangling-op`), that no
//! edge makes a rank wait on itself (`dep-self`), that edges are not
//! duplicated (`dep-duplicate`), and — combining dependency edges with
//! per-rank program order — that the induced happens-before relation is
//! acyclic (`dep-cycle`). A cycle is reported with its member chain: it
//! is exactly a replay deadlock.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::LintConfig;
use crate::diag::{Diagnostic, Severity};
use crate::passes::{LintInput, LintPass};

pub struct DepGraph;

type Node = (u32, usize); // (rank, op index)

fn fmt_node((rank, op): Node) -> String {
    format!("rank{rank}#{op}")
}

/// Find one cycle in `adj` (if any) and return it as a node chain
/// `n0 -> n1 -> ... -> n0`.
fn find_cycle(adj: &BTreeMap<Node, Vec<Node>>) -> Option<Vec<Node>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: BTreeMap<Node, Color> = adj.keys().map(|&n| (n, Color::White)).collect();
    for &root in adj.keys() {
        if color.get(&root) != Some(&Color::White) {
            continue;
        }
        // Iterative DFS keeping the grey path on an explicit stack.
        let mut stack: Vec<(Node, usize)> = vec![(root, 0)];
        color.insert(root, Color::Grey);
        while let Some(top) = stack.last().copied() {
            let (node, next) = top;
            let succs = adj.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if next < succs.len() {
                let succ = succs[next];
                if let Some(slot) = stack.last_mut() {
                    slot.1 += 1;
                }
                match color.get(&succ).copied().unwrap_or(Color::White) {
                    Color::White => {
                        color.insert(succ, Color::Grey);
                        stack.push((succ, 0));
                    }
                    Color::Grey => {
                        // Back edge: the cycle is the grey path from succ.
                        let mut cycle: Vec<Node> = stack
                            .iter()
                            .map(|&(n, _)| n)
                            .skip_while(|&n| n != succ)
                            .collect();
                        cycle.push(succ);
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                stack.pop();
            }
        }
    }
    None
}

impl LintPass for DepGraph {
    fn name(&self) -> &'static str {
        "depgraph"
    }

    fn run(&self, input: &LintInput<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        let Some(deps) = input.deps else {
            return;
        };
        // Rank → record count, for endpoint range checks. Empty when the
        // map is being linted standalone (structural checks only).
        let rank_len: BTreeMap<u32, usize> = input
            .traces
            .iter()
            .map(|t| (t.meta.rank, t.records.len()))
            .collect();

        let mut dup: BTreeSet<(u32, u32, usize, u32, usize)> = BTreeSet::new();
        let mut nodes: BTreeSet<Node> = BTreeSet::new();
        let mut dep_edges: Vec<(Node, Node)> = Vec::new();

        for (i, e) in deps.edges.iter().enumerate() {
            let mut valid = true;
            if !rank_len.is_empty() {
                for (label, rank, op) in [
                    ("source", e.from_rank, e.from_op),
                    ("target", e.to_rank, e.to_op),
                ] {
                    match rank_len.get(&rank) {
                        None => {
                            valid = false;
                            out.push(
                                Diagnostic::new(
                                    "dep-dangling-rank",
                                    Severity::Error,
                                    format!(
                                        "edge #{i} {label} names rank{rank}, absent from the \
                                         capture"
                                    ),
                                )
                                .with_hint("regenerate the map against the traces being replayed"),
                            );
                        }
                        Some(&len) if op >= len => {
                            valid = false;
                            out.push(
                                Diagnostic::new(
                                    "dep-dangling-op",
                                    Severity::Error,
                                    format!(
                                        "edge #{i} {label} names record #{op}, but rank{rank} \
                                         has only {len} record(s)"
                                    ),
                                )
                                .at_rank(rank),
                            );
                        }
                        Some(_) => {}
                    }
                }
            }
            if e.from_rank == e.to_rank {
                out.push(
                    Diagnostic::new(
                        "dep-self",
                        Severity::Warning,
                        format!(
                            "edge #{i} makes rank{} wait on its own record #{}; program order \
                             already provides this",
                            e.to_rank, e.from_op
                        ),
                    )
                    .at_rank(e.to_rank),
                );
            }
            if !dup.insert((e.from_node, e.from_rank, e.from_op, e.to_rank, e.to_op)) {
                out.push(Diagnostic::new(
                    "dep-duplicate",
                    Severity::Warning,
                    format!(
                        "edge #{i} duplicates an earlier edge \
                         (node{} rank{}#{} -> rank{}#{})",
                        e.from_node, e.from_rank, e.from_op, e.to_rank, e.to_op
                    ),
                ));
            }
            if valid {
                let from = (e.from_rank, e.from_op);
                let to = (e.to_rank, e.to_op);
                nodes.insert(from);
                nodes.insert(to);
                dep_edges.push((from, to));
            }
        }

        // Happens-before graph: dependency edges plus per-rank program
        // order between the referenced records.
        let mut adj: BTreeMap<Node, Vec<Node>> = nodes.iter().map(|&n| (n, Vec::new())).collect();
        let mut per_rank: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for &(rank, op) in &nodes {
            per_rank.entry(rank).or_default().push(op);
        }
        for (rank, ops) in &per_rank {
            for w in ops.windows(2) {
                if let Some(succs) = adj.get_mut(&(*rank, w[0])) {
                    succs.push((*rank, w[1]));
                }
            }
        }
        for (from, to) in dep_edges {
            if let Some(succs) = adj.get_mut(&from) {
                succs.push(to);
            }
        }

        if let Some(cycle) = find_cycle(&adj) {
            let ranks: BTreeSet<u32> = cycle.iter().map(|&(rank, _)| rank).collect();
            let ranks: Vec<String> = ranks.into_iter().map(|r| format!("rank{r}")).collect();
            // The hint carries the full cycle path — each node annotated
            // with the call it names, when the traces are at hand — so the
            // deadlock can be read off without re-deriving the walk.
            let call_of = |(rank, op): Node| -> Option<&'static str> {
                input
                    .traces
                    .iter()
                    .find(|t| t.meta.rank == rank)
                    .and_then(|t| t.records.get(op))
                    .map(|r| r.call.name())
            };
            let chain: Vec<String> = cycle
                .into_iter()
                .map(|n| match call_of(n) {
                    Some(call) => format!("{} ({call})", fmt_node(n)),
                    None => fmt_node(n),
                })
                .collect();
            out.push(
                Diagnostic::new(
                    "dep-cycle",
                    Severity::Error,
                    format!(
                        "dependency edges and program order form a cycle among {}",
                        ranks.join(", ")
                    ),
                )
                .with_hint(format!(
                    "cycle path: {}; replaying this map deadlocks — drop or re-derive \
                     the offending edges",
                    chain.join(" -> ")
                )),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::testutil::trace_of;
    use iotrace_model::event::{IoCall, Trace};
    use iotrace_partrace::deps::{DependencyEdge, DependencyMap};
    use iotrace_sim::time::SimDur;

    fn edge(from_rank: u32, from_op: usize, to_rank: u32, to_op: usize) -> DependencyEdge {
        DependencyEdge {
            from_node: from_rank,
            from_rank,
            from_op,
            to_rank,
            to_op,
            shift: SimDur::from_millis(1),
        }
    }

    fn traces(lens: &[usize]) -> Vec<Trace> {
        lens.iter()
            .enumerate()
            .map(|(rank, &n)| {
                trace_of(
                    rank as u32,
                    (0..n).map(|_| (IoCall::Fsync { fd: 1 }, 0)).collect(),
                )
            })
            .collect()
    }

    fn run(traces: &[Trace], map: &DependencyMap) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        DepGraph.run(
            &LintInput {
                traces,
                deps: Some(map),
                policy: None,
            },
            &LintConfig::default(),
            &mut out,
        );
        out
    }

    #[test]
    fn valid_map_is_clean() {
        let ts = traces(&[3, 3]);
        let map = DependencyMap {
            edges: vec![edge(0, 0, 1, 2), edge(1, 0, 0, 2)],
        };
        assert!(run(&ts, &map).is_empty());
    }

    #[test]
    fn dangling_rank_and_op_error() {
        let ts = traces(&[2]);
        let map = DependencyMap {
            edges: vec![edge(5, 0, 0, 1), edge(0, 9, 0, 1)],
        };
        let rules: Vec<&str> = run(&ts, &map).iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"dep-dangling-rank"), "{rules:?}");
        assert!(rules.contains(&"dep-dangling-op"), "{rules:?}");
    }

    #[test]
    fn two_edge_cycle_is_detected() {
        let ts = traces(&[3, 3]);
        // rank0#1 -> rank1#1 and rank1#0 -> rank0#0, plus program order
        // rank0#0->#1 and rank1#0->... wait: cycle needs opposing waits.
        let map = DependencyMap {
            edges: vec![edge(0, 1, 1, 0), edge(1, 1, 0, 0)],
        };
        let out = run(&ts, &map);
        let cycles: Vec<_> = out.iter().filter(|d| d.rule == "dep-cycle").collect();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].severity, Severity::Error);
        assert!(
            cycles[0].message.contains("rank0, rank1"),
            "{}",
            cycles[0].message
        );
        // The full walk — with the call each node performs — lives in
        // the hint.
        let hint = cycles[0].hint.as_deref().unwrap_or_default();
        assert!(hint.contains("cycle path:"), "{hint}");
        assert!(hint.contains("->"), "{hint}");
        assert!(hint.contains("(SYS_fsync)"), "{hint}");
        assert!(hint.contains("rank0#"), "{hint}");
        assert!(hint.contains("rank1#"), "{hint}");
    }

    #[test]
    fn cycle_hint_omits_calls_without_traces() {
        let map = DependencyMap {
            edges: vec![edge(0, 1, 1, 0), edge(1, 1, 0, 0)],
        };
        let out = run(&[], &map);
        let cycle = out
            .iter()
            .find(|d| d.rule == "dep-cycle")
            .expect("cycle diagnostic");
        let hint = cycle.hint.as_deref().unwrap_or_default();
        assert!(hint.contains("cycle path:"), "{hint}");
        assert!(!hint.contains('('), "{hint}");
    }

    #[test]
    fn self_edge_warns_and_backward_self_edge_cycles() {
        let ts = traces(&[3]);
        // rank0 waits on its own later record: program order #1 -> #2,
        // dependency #2 -> #1 — a cycle.
        let map = DependencyMap {
            edges: vec![edge(0, 2, 0, 1)],
        };
        let rules: Vec<&str> = run(&ts, &map).iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"dep-self"), "{rules:?}");
        assert!(rules.contains(&"dep-cycle"), "{rules:?}");
    }

    #[test]
    fn duplicate_edges_warn() {
        let ts = traces(&[3, 3]);
        let map = DependencyMap {
            edges: vec![edge(0, 0, 1, 2), edge(0, 0, 1, 2)],
        };
        let out = run(&ts, &map);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "dep-duplicate");
    }

    #[test]
    fn structural_checks_without_traces() {
        // No traces: range checks are skipped, cycles still found.
        let map = DependencyMap {
            edges: vec![edge(0, 1, 1, 0), edge(1, 1, 0, 0)],
        };
        let out = run(&[], &map);
        assert!(out.iter().any(|d| d.rule == "dep-cycle"));
        assert!(!out.iter().any(|d| d.rule == "dep-dangling-rank"));
    }

    #[test]
    fn no_map_means_no_findings() {
        let ts = traces(&[2]);
        let mut out = Vec::new();
        DepGraph.run(
            &LintInput::from_traces(&ts),
            &LintConfig::default(),
            &mut out,
        );
        assert!(out.is_empty());
    }
}
