//! Timestamp sanity (pass `clock`).
//!
//! `iotrace-sim` gives every node an affine observed clock (skew +
//! drift); tracers record observed timestamps. Whatever the skew, a
//! single node's observed clock is strictly increasing, so within one
//! rank each capture layer's timestamps must be non-decreasing — a
//! violation means records were reordered or clocks were stepped mid-run
//! (`clock-nonmonotonic`). The check is per layer because dual capture
//! interleaves streams: an `MPI_File_open` legitimately *starts* before
//! the `SYS_open` it wraps even though it is emitted after it.
//!
//! Across ranks, barrier exits happen at one true instant, so the spread
//! of observed exit timestamps at each barrier bounds the instantaneous
//! pairwise skew. A spread beyond `LintConfig::skew_allowance_ns`
//! (opposing skews plus accumulated drift, defaults sized to
//! `sim::clock` sampling bounds) is flagged (`clock-skew`).
//!
//! Implausibly long calls (`clock-dur-absurd`) and calls overlapping
//! their predecessor on a single-threaded rank (`clock-overlap`, note
//! only) round out the pass.

use std::collections::BTreeMap;

use iotrace_model::event::{CallLayer, IoCall, Trace, TraceRecord};

use crate::config::LintConfig;
use crate::diag::{Diagnostic, Severity};
use crate::passes::{LintInput, LintPass};

pub struct ClockSanity;

fn lint_rank(trace: &Trace, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    let rank = trace.meta.rank;
    let mut nonmonotonic = 0usize;
    let mut first_nonmono = None;
    let mut overlaps = 0usize;
    let mut first_overlap = None;

    // Previous record per capture layer: each tracer's stream is checked
    // independently (dual capture interleaves them with legal nesting).
    let mut prev_by_layer: BTreeMap<CallLayer, &TraceRecord> = BTreeMap::new();
    for (i, cur) in trace.records.iter().enumerate() {
        if let Some(prev) = prev_by_layer.insert(cur.call.layer(), cur) {
            if cur.ts < prev.ts {
                nonmonotonic += 1;
                first_nonmono.get_or_insert(i);
            } else if cur.ts < prev.end() {
                overlaps += 1;
                first_overlap.get_or_insert(i);
            }
        }
    }
    if let Some(at) = first_nonmono {
        out.push(
            Diagnostic::new(
                "clock-nonmonotonic",
                Severity::Error,
                format!(
                    "timestamps go backwards at {nonmonotonic} record(s) (first at #{at}); a \
                     node's observed clock is monotonic, so the capture is reordered"
                ),
            )
            .at_record(rank, at)
            .with_hint("sort by capture order, not by a post-processed timestamp"),
        );
    }
    if let Some(at) = first_overlap {
        out.push(
            Diagnostic::new(
                "clock-overlap",
                Severity::Info,
                format!(
                    "{overlaps} record(s) start before the previous call returned (first at \
                     #{at}); expected only for multi-threaded capture"
                ),
            )
            .at_record(rank, at),
        );
    }

    for (i, r) in trace.records.iter().enumerate() {
        if r.dur.as_nanos() > cfg.max_call_ns {
            out.push(
                Diagnostic::new(
                    "clock-dur-absurd",
                    Severity::Warning,
                    format!(
                        "{} took {} ns, beyond the plausible {} ns",
                        r.call.name(),
                        r.dur.as_nanos(),
                        cfg.max_call_ns
                    ),
                )
                .at_record(rank, i),
            );
        }
    }
}

impl LintPass for ClockSanity {
    fn name(&self) -> &'static str {
        "clock"
    }

    fn run(&self, input: &LintInput<'_>, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        for t in input.traces {
            lint_rank(t, cfg, out);
        }

        // Cross-rank: barrier-exit spread per barrier index. Skip when
        // barrier counts disagree (the causality pass reports that).
        if input.traces.len() < 2 {
            return;
        }
        let mut exits: BTreeMap<usize, Vec<(u32, u64)>> = BTreeMap::new();
        for t in input.traces {
            let mut k = 0usize;
            for r in &t.records {
                if !r.is_error() && r.call == IoCall::MpiBarrier {
                    exits
                        .entry(k)
                        .or_default()
                        .push((t.meta.rank, r.end().as_nanos()));
                    k += 1;
                }
            }
        }
        let world = input.traces.len();
        for (k, ranks) in exits {
            if ranks.len() != world {
                continue;
            }
            let (lo_rank, lo) = ranks
                .iter()
                .copied()
                .min_by_key(|&(_, ns)| ns)
                .unwrap_or((0, 0));
            let (hi_rank, hi) = ranks
                .iter()
                .copied()
                .max_by_key(|&(_, ns)| ns)
                .unwrap_or((0, 0));
            let spread = hi - lo;
            let allowed = cfg.skew_allowance_ns(hi);
            if spread > allowed {
                out.push(
                    Diagnostic::new(
                        "clock-skew",
                        Severity::Warning,
                        format!(
                            "barrier {k} exit timestamps spread {spread} ns across ranks \
                             (rank{lo_rank} to rank{hi_rank}, allowance {allowed} ns)"
                        ),
                    )
                    .with_hint(
                        "node clocks exceed the configured skew/drift budget; correct with \
                         `iotrace-analysis::skew` before comparing cross-rank timings",
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{rec_at, trace_of_records};
    use iotrace_sim::time::SimDur;

    fn run(traces: &[Trace]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        ClockSanity.run(
            &LintInput::from_traces(traces),
            &LintConfig::default(),
            &mut out,
        );
        out
    }

    #[test]
    fn monotone_trace_is_clean() {
        let t = trace_of_records(
            0,
            vec![
                rec_at(0, 1_000, 100, IoCall::Fsync { fd: 1 }, 0),
                rec_at(0, 2_000, 100, IoCall::Fsync { fd: 1 }, 0),
            ],
        );
        assert!(run(&[t]).is_empty());
    }

    #[test]
    fn backwards_timestamp_errors() {
        let t = trace_of_records(
            0,
            vec![
                rec_at(0, 5_000, 100, IoCall::Fsync { fd: 1 }, 0),
                rec_at(0, 1_000, 100, IoCall::Fsync { fd: 1 }, 0),
            ],
        );
        let out = run(&[t]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "clock-nonmonotonic");
        assert_eq!(out[0].severity, Severity::Error);
        assert_eq!(out[0].record, Some(1));
    }

    #[test]
    fn overlapping_calls_note() {
        let t = trace_of_records(
            0,
            vec![
                rec_at(0, 1_000, 5_000, IoCall::Fsync { fd: 1 }, 0),
                rec_at(0, 2_000, 100, IoCall::Fsync { fd: 1 }, 0),
            ],
        );
        let out = run(&[t]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "clock-overlap");
        assert_eq!(out[0].severity, Severity::Info);
    }

    #[test]
    fn nested_dual_layer_records_are_not_reordering() {
        // MPI_File_open (emitted second) starts before the SYS_open it
        // wraps: different layers, so no finding.
        let t = trace_of_records(
            0,
            vec![
                rec_at(
                    0,
                    2_000,
                    100,
                    IoCall::Open {
                        path: "/f".into(),
                        flags: 0,
                        mode: 0,
                    },
                    3,
                ),
                rec_at(
                    0,
                    1_000,
                    2_000,
                    IoCall::MpiFileOpen {
                        path: "/f".into(),
                        amode: 37,
                    },
                    3,
                ),
            ],
        );
        assert!(run(&[t]).is_empty());
    }

    #[test]
    fn absurd_duration_warns() {
        let cfg = LintConfig::default();
        let t = trace_of_records(
            0,
            vec![rec_at(
                0,
                0,
                cfg.max_call_ns + 1,
                IoCall::Fsync { fd: 1 },
                0,
            )],
        );
        let out = run(&[t]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "clock-dur-absurd");
    }

    #[test]
    fn skewed_barrier_exits_warn() {
        // Two ranks exit "the same" barrier 50 ms apart — way past the
        // 2 ms skew budget.
        let a = trace_of_records(0, vec![rec_at(0, 1_000_000, 1_000, IoCall::MpiBarrier, 0)]);
        let b = trace_of_records(1, vec![rec_at(1, 51_000_000, 1_000, IoCall::MpiBarrier, 0)]);
        let out = run(&[a, b]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "clock-skew");
    }

    #[test]
    fn in_budget_barrier_exits_are_clean() {
        let a = trace_of_records(0, vec![rec_at(0, 1_000_000, 1_000, IoCall::MpiBarrier, 0)]);
        let b = trace_of_records(1, vec![rec_at(1, 1_500_000, 1_000, IoCall::MpiBarrier, 0)]);
        assert!(run(&[a, b]).is_empty());
    }

    #[test]
    fn durations_accumulate_into_end_times() {
        // identical start, but dur pushes end within budget
        let a = trace_of_records(0, vec![rec_at(0, 0, 1_000, IoCall::MpiBarrier, 0)]);
        let b = trace_of_records(
            1,
            vec![rec_at(
                1,
                0,
                SimDur::from_millis(1).as_nanos(),
                IoCall::MpiBarrier,
                0,
            )],
        );
        assert!(run(&[a, b]).is_empty());
    }
}
