//! File-descriptor lifecycle checking (pass `fd-lifecycle`).
//!
//! Tracks every successful open/close per rank and flags records that
//! use a descriptor after it was closed, close one twice, operate on one
//! never opened in the trace, or leak one at trace end. Failed calls
//! (negative result) neither mutate state nor get flagged — a trace that
//! records `write → -EBADF` on a closed fd is self-consistent.
//!
//! Descriptors are tracked per capture layer: LANL-Trace-style dual
//! capture records both `MPI_File_open` and the `SYS_open` it wraps, and
//! the MPI file handle is a different namespace from the POSIX fd even
//! when numerically equal. Descriptors 0–2 are exempt from unknown-fd
//! reporting: traces routinely start with the standard streams open.

use iotrace_model::event::{CallLayer, IoCall, Trace};
use iotrace_model::fasthash::FxHashMap;
use iotrace_model::intern::{Interner, Sym};

use crate::config::LintConfig;
use crate::diag::{Diagnostic, Severity};
use crate::passes::{LintInput, LintPass};

pub struct FdLifecycle;

/// Descriptor argument of calls that *use* (not open/close) an fd.
fn used_fd(call: &IoCall) -> Option<i64> {
    use IoCall::*;
    match call {
        Read { fd, .. }
        | Write { fd, .. }
        | Pread { fd, .. }
        | Pwrite { fd, .. }
        | Lseek { fd, .. }
        | Fsync { fd }
        | Fcntl { fd, .. }
        | MpiFileWriteAt { fd, .. }
        | MpiFileReadAt { fd, .. } => Some(*fd),
        _ => None,
    }
}

fn lint_trace(trace: &Trace, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    let rank = trace.meta.rank;
    // Paths are interned once per distinct string; the open table then
    // carries a `u32` symbol per descriptor instead of a cloned String.
    let mut paths = Interner::new();
    // (layer, fd) → record index of the witnessing open (plus the opened
    // path, for the leak report) / close. Hash maps: these are probed
    // once per record, and the leak report sorts its survivors at the
    // end, so nothing needs ordered iteration in the hot loop.
    let mut open: FxHashMap<(CallLayer, i64), (usize, Sym)> = FxHashMap::default();
    let mut closed: FxHashMap<(CallLayer, i64), usize> = FxHashMap::default();
    let mut suppressed_unknown = 0usize;
    let mut reported_unknown = 0usize;

    for (i, r) in trace.records.iter().enumerate() {
        if r.is_error() {
            continue;
        }
        let layer = r.call.layer();
        match &r.call {
            IoCall::Open { path, .. } | IoCall::MpiFileOpen { path, .. } => {
                let fd = (layer, r.result);
                let sym = paths.intern(path);
                if let Some((prev, _)) = open.insert(fd, (i, sym)) {
                    out.push(
                        Diagnostic::new(
                            "fd-reopen",
                            Severity::Warning,
                            format!(
                                "{} returned fd {}, still open since record #{prev}",
                                r.call.name(),
                                fd.1
                            ),
                        )
                        .at_record(rank, i)
                        .with_hint("a close for this descriptor is missing from the trace"),
                    );
                }
                closed.remove(&fd);
            }
            IoCall::Close { fd } | IoCall::MpiFileClose { fd } => {
                let fd = (layer, *fd);
                if open.remove(&fd).is_some() {
                    closed.insert(fd, i);
                } else if let Some(prev) = closed.get(&fd) {
                    out.push(
                        Diagnostic::new(
                            "fd-double-close",
                            Severity::Error,
                            format!(
                                "{} of fd {} already closed at record #{prev}",
                                r.call.name(),
                                fd.1
                            ),
                        )
                        .at_record(rank, i)
                        .with_hint("drop the redundant close or re-capture the trace"),
                    );
                } else if fd.1 > 2 {
                    out.push(
                        Diagnostic::new(
                            "fd-unknown",
                            Severity::Warning,
                            format!(
                                "{} of fd {} never opened in this trace",
                                r.call.name(),
                                fd.1
                            ),
                        )
                        .at_record(rank, i),
                    );
                }
            }
            call => {
                if let Some(fd) = used_fd(call).map(|fd| (layer, fd)) {
                    if open.contains_key(&fd) {
                        // healthy
                    } else if let Some(prev) = closed.get(&fd) {
                        out.push(
                            Diagnostic::new(
                                "fd-use-after-close",
                                Severity::Error,
                                format!(
                                    "{} on fd {} succeeded after close at record #{prev}",
                                    call.name(),
                                    fd.1
                                ),
                            )
                            .at_record(rank, i)
                            .with_hint(
                                "successful I/O on a closed descriptor means records were \
                                 reordered or dropped at capture time",
                            ),
                        );
                    } else if fd.1 > 2 {
                        if reported_unknown < cfg.max_reports_per_rule {
                            reported_unknown += 1;
                            out.push(
                                Diagnostic::new(
                                    "fd-unknown",
                                    Severity::Warning,
                                    format!(
                                        "{} on fd {} never opened in this trace",
                                        call.name(),
                                        fd.1
                                    ),
                                )
                                .at_record(rank, i)
                                .with_hint("the open may predate the capture window"),
                            );
                        } else {
                            suppressed_unknown += 1;
                        }
                    }
                }
            }
        }
    }

    let mut leaked: Vec<_> = open.iter().collect();
    leaked.sort_by_key(|(&k, _)| k);
    for (&(_, fd), &(opened_at, path)) in leaked {
        out.push(
            Diagnostic::new(
                "fd-leak",
                Severity::Warning,
                format!("fd {fd} opened at record #{opened_at} is never closed"),
            )
            .at_record(rank, opened_at)
            .with_hint(format!(
                "the leaked descriptor maps to \"{}\"",
                paths.resolve(path)
            )),
        );
    }
    if suppressed_unknown > 0 {
        out.push(
            Diagnostic::new(
                "fd-unknown",
                Severity::Info,
                format!("{suppressed_unknown} further unknown-fd finding(s) suppressed"),
            )
            .at_rank(rank),
        );
    }
}

impl LintPass for FdLifecycle {
    fn name(&self) -> &'static str {
        "fd-lifecycle"
    }

    fn run(&self, input: &LintInput<'_>, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        for trace in input.traces {
            lint_trace(trace, cfg, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{rec, trace_of};

    fn run(calls: Vec<(IoCall, i64)>) -> Vec<Diagnostic> {
        let t = trace_of(0, calls);
        let mut out = Vec::new();
        FdLifecycle.run(
            &LintInput::from_traces(std::slice::from_ref(&t)),
            &LintConfig::default(),
            &mut out,
        );
        out
    }

    #[test]
    fn clean_lifecycle_has_no_findings() {
        let out = run(vec![
            (
                IoCall::Open {
                    path: "/f".into(),
                    flags: 0,
                    mode: 0,
                },
                3,
            ),
            (IoCall::Write { fd: 3, len: 10 }, 10),
            (IoCall::Close { fd: 3 }, 0),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn use_after_close_is_an_error() {
        let out = run(vec![
            (
                IoCall::Open {
                    path: "/f".into(),
                    flags: 0,
                    mode: 0,
                },
                3,
            ),
            (IoCall::Close { fd: 3 }, 0),
            (IoCall::Write { fd: 3, len: 10 }, 10),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "fd-use-after-close");
        assert_eq!(out[0].severity, Severity::Error);
        assert_eq!(out[0].record, Some(2));
    }

    #[test]
    fn double_close_is_an_error() {
        let out = run(vec![
            (
                IoCall::Open {
                    path: "/f".into(),
                    flags: 0,
                    mode: 0,
                },
                3,
            ),
            (IoCall::Close { fd: 3 }, 0),
            (IoCall::Close { fd: 3 }, 0),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "fd-double-close");
    }

    #[test]
    fn leaked_fd_is_a_warning() {
        let out = run(vec![(
            IoCall::Open {
                path: "/f".into(),
                flags: 0,
                mode: 0,
            },
            4,
        )]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "fd-leak");
        assert_eq!(out[0].severity, Severity::Warning);
    }

    #[test]
    fn failed_calls_do_not_mutate_state_or_fire() {
        let mut t = trace_of(
            0,
            vec![
                (
                    IoCall::Open {
                        path: "/f".into(),
                        flags: 0,
                        mode: 0,
                    },
                    3,
                ),
                (IoCall::Close { fd: 3 }, 0),
            ],
        );
        // A failed write on the closed fd is consistent (-EBADF).
        t.records.push(rec(0, IoCall::Write { fd: 3, len: 1 }, -9));
        let mut out = Vec::new();
        FdLifecycle.run(
            &LintInput::from_traces(std::slice::from_ref(&t)),
            &LintConfig::default(),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn stdio_fds_are_exempt() {
        let out = run(vec![(IoCall::Write { fd: 1, len: 5 }, 5)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn fd_reuse_after_close_is_clean() {
        let out = run(vec![
            (
                IoCall::Open {
                    path: "/a".into(),
                    flags: 0,
                    mode: 0,
                },
                3,
            ),
            (IoCall::Close { fd: 3 }, 0),
            (
                IoCall::Open {
                    path: "/b".into(),
                    flags: 0,
                    mode: 0,
                },
                3,
            ),
            (IoCall::Read { fd: 3, len: 8 }, 8),
            (IoCall::Close { fd: 3 }, 0),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn dual_layer_capture_is_not_a_double_close() {
        // LANL-Trace records both the MPI call and the syscall it wraps;
        // fd 3 exists in both namespaces and each is closed once.
        let out = run(vec![
            (
                IoCall::Open {
                    path: "/f".into(),
                    flags: 0,
                    mode: 0,
                },
                3,
            ),
            (
                IoCall::MpiFileOpen {
                    path: "/f".into(),
                    amode: 37,
                },
                3,
            ),
            (IoCall::Write { fd: 3, len: 8 }, 8),
            (
                IoCall::MpiFileWriteAt {
                    fd: 3,
                    offset: 0,
                    len: 8,
                },
                8,
            ),
            (IoCall::Close { fd: 3 }, 0),
            (IoCall::MpiFileClose { fd: 3 }, 0),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn mpi_descriptors_are_tracked_too() {
        let out = run(vec![
            (
                IoCall::MpiFileOpen {
                    path: "/f".into(),
                    amode: 5,
                },
                7,
            ),
            (IoCall::MpiFileClose { fd: 7 }, 0),
            (
                IoCall::MpiFileWriteAt {
                    fd: 7,
                    offset: 0,
                    len: 8,
                },
                8,
            ),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "fd-use-after-close");
    }
}
