//! `conflict`: overlapping byte ranges with no happens-before edge.
//!
//! A Recorder-style race detector over the capture: two accesses to the
//! same file conflict when their byte ranges overlap, at least one is a
//! write, and *nothing orders them* — not program order, not barrier
//! epochs, not a chain of //TRACE dependency edges. An unordered
//! write/write pair means the file's final bytes depend on scheduling
//! (`conflict-write-write`, error); an unordered read/write pair means
//! the read may see either version (`conflict-read-write`, warning).
//!
//! The pass runs only when the capture has a dependency map: without
//! one, cross-rank ordering beyond barriers is unknowable and every
//! same-epoch overlap would be flagged — which is the `causality` pass's
//! `hb-write-race` finding already. With a map, this pass is strictly
//! sharper: it exonerates pairs the discovered dependencies do order,
//! and (unlike `causality`) it also sees cursor-relative I/O via the
//! provenance access extractor.

use std::collections::BTreeSet;

use iotrace_model::intern::Interner;
use iotrace_provenance::access::extract_accesses;
use iotrace_provenance::hb::{HbIndex, Loc};
use iotrace_provenance::Access;

use crate::config::LintConfig;
use crate::diag::{Diagnostic, Severity};
use crate::passes::{LintInput, LintPass};

pub struct Conflict;

impl LintPass for Conflict {
    fn name(&self) -> &'static str {
        "conflict"
    }

    fn run(&self, input: &LintInput<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        let Some(deps) = input.deps else {
            return; // no dependency map: causality already covers epochs
        };
        let hb = HbIndex::build(input.traces, Some(deps));
        let mut paths = Interner::new();
        let mut accesses: Vec<Access> = Vec::new();
        for t in input.traces {
            extract_accesses(t, &mut paths, &mut accesses);
        }
        // Per path, sweep accesses in start-offset order so only
        // range-overlapping pairs are compared.
        accesses.sort_by_key(|a| (a.path.id(), a.start, a.end, a.rank, a.record));
        // One finding per (path, rank pair, kind): a lock-free pattern
        // repeated over thousands of records is one defect, not thousands.
        let mut seen: BTreeSet<(u32, u32, u32, bool)> = BTreeSet::new();
        for (i, a) in accesses.iter().enumerate() {
            for b in accesses[i + 1..].iter() {
                if b.path != a.path || b.start >= a.end {
                    break;
                }
                if a.rank == b.rank || (!a.write && !b.write) {
                    continue;
                }
                let ww = a.write && b.write;
                let (lo, hi) = (a.rank.min(b.rank), a.rank.max(b.rank));
                if seen.contains(&(a.path.id(), lo, hi, ww)) {
                    continue;
                }
                let la = Loc {
                    rank: a.rank,
                    record: a.record,
                    epoch: a.epoch,
                };
                let lb = Loc {
                    rank: b.rank,
                    record: b.record,
                    epoch: b.epoch,
                };
                if !hb.concurrent(la, lb) {
                    continue;
                }
                seen.insert((a.path.id(), lo, hi, ww));
                let path = paths.resolve(a.path);
                let (s, e) = (a.start.max(b.start), a.end.min(b.end));
                // Deterministic presentation: lower rank first.
                let (first, second) = if a.rank <= b.rank { (a, b) } else { (b, a) };
                let kind = |x: &Access| if x.write { "write" } else { "read" };
                let (rule, severity) = if ww {
                    ("conflict-write-write", Severity::Error)
                } else {
                    ("conflict-read-write", Severity::Warning)
                };
                out.push(
                    Diagnostic::new(
                        rule,
                        severity,
                        format!(
                            "rank{}#{} {} and rank{}#{} {} of {path} overlap on \
                             [{s}, {e}) with no happens-before edge",
                            first.rank,
                            first.record,
                            kind(first),
                            second.rank,
                            second.record,
                            kind(second),
                        ),
                    )
                    .at_record(first.rank, first.record)
                    .with_hint(
                        "no barrier, program order, or //TRACE dependency edge orders \
                         these accesses: the bytes seen depend on scheduling; add \
                         synchronization or make the ranges disjoint",
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::testutil::trace_of;
    use iotrace_model::event::{IoCall, Trace};
    use iotrace_partrace::deps::{DependencyEdge, DependencyMap};
    use iotrace_sim::time::SimDur;

    fn run(traces: &[Trace], deps: Option<&DependencyMap>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        Conflict.run(
            &LintInput {
                traces,
                deps,
                policy: None,
            },
            &LintConfig::default(),
            &mut out,
        );
        out
    }

    fn writer(rank: u32, off: u64, len: u64) -> Trace {
        trace_of(
            rank,
            vec![
                (
                    IoCall::Open {
                        path: "/pfs/shared".into(),
                        flags: 0,
                        mode: 0,
                    },
                    3,
                ),
                (
                    IoCall::Pwrite {
                        fd: 3,
                        offset: off,
                        len,
                    },
                    len as i64,
                ),
            ],
        )
    }

    fn edge(from_rank: u32, from_op: usize, to_rank: u32, to_op: usize) -> DependencyEdge {
        DependencyEdge {
            from_node: from_rank,
            from_rank,
            from_op,
            to_rank,
            to_op,
            shift: SimDur::from_millis(1),
        }
    }

    #[test]
    fn unordered_overlapping_writes_are_flagged() {
        let deps = DependencyMap { edges: vec![] };
        // An empty dep map still opts in to conflict detection…
        // but HbIndex::has_deps is false; pass still runs because the
        // capture *claimed* to know its dependencies.
        let out = run(&[writer(0, 0, 100), writer(1, 50, 100)], Some(&deps));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "conflict-write-write");
        assert_eq!(out[0].severity, Severity::Error);
        assert!(out[0].message.contains("[50, 100)"), "{}", out[0].message);
    }

    #[test]
    fn a_dependency_edge_exonerates_the_pair() {
        // rank0's write (record 1) happens before rank1's write via edge.
        let deps = DependencyMap {
            edges: vec![edge(0, 1, 1, 0)],
        };
        let out = run(&[writer(0, 0, 100), writer(1, 50, 100)], Some(&deps));
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn disjoint_ranges_never_conflict() {
        let deps = DependencyMap { edges: vec![] };
        let out = run(&[writer(0, 0, 100), writer(1, 100, 100)], Some(&deps));
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn read_write_overlap_is_a_warning() {
        let reader = trace_of(
            1,
            vec![
                (
                    IoCall::Open {
                        path: "/pfs/shared".into(),
                        flags: 0,
                        mode: 0,
                    },
                    3,
                ),
                (
                    IoCall::Pread {
                        fd: 3,
                        offset: 0,
                        len: 60,
                    },
                    60,
                ),
            ],
        );
        let deps = DependencyMap { edges: vec![] };
        let out = run(&[writer(0, 0, 100), reader], Some(&deps));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "conflict-read-write");
        assert_eq!(out[0].severity, Severity::Warning);
    }

    #[test]
    fn without_a_dependency_map_the_pass_is_silent() {
        let out = run(&[writer(0, 0, 100), writer(1, 50, 100)], None);
        assert!(out.is_empty());
    }

    #[test]
    fn repeated_pattern_collapses_to_one_finding() {
        let mk = |rank: u32, base: u64| {
            let mut calls = vec![(
                IoCall::Open {
                    path: "/pfs/shared".into(),
                    flags: 0,
                    mode: 0,
                },
                3,
            )];
            for i in 0..20u64 {
                calls.push((
                    IoCall::Pwrite {
                        fd: 3,
                        offset: base + i * 10,
                        len: 20,
                    },
                    20,
                ));
            }
            trace_of(rank, calls)
        };
        let deps = DependencyMap { edges: vec![] };
        let out = run(&[mk(0, 0), mk(1, 5)], Some(&deps));
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn cursor_relative_writes_are_seen() {
        let mk = |rank: u32| {
            trace_of(
                rank,
                vec![
                    (
                        IoCall::Open {
                            path: "/pfs/shared".into(),
                            flags: 0,
                            mode: 0,
                        },
                        3,
                    ),
                    (IoCall::Write { fd: 3, len: 100 }, 100),
                ],
            )
        };
        let deps = DependencyMap { edges: vec![] };
        let out = run(&[mk(0), mk(1)], Some(&deps));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "conflict-write-write");
    }
}
