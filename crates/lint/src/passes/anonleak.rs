//! Anonymization leakage audit (pass `anonleak`).
//!
//! The paper's taxonomy scores frameworks on whether traces can be
//! anonymized before publication (§3.1); a trace *claiming* to be
//! anonymized (`TraceMeta::anonymized`, set by
//! `iotrace-model::anonymize::Anonymizer::apply`) but still carrying raw
//! identifiers is the worst outcome — it invites publication of exactly
//! the data the flag promises is gone. This pass recognizes the two
//! pseudonym shapes the anonymizer emits — `a` + 12 hex digits
//! (randomize) and `e` + 8-hex IV + hex ciphertext (encrypt) — and
//! flags, in claiming traces only:
//!
//! * path components in any record that are not pseudonyms
//!   (`anon-path-leak`),
//! * a raw hostname or application command line in the trace header
//!   (`anon-host-leak`, `anon-app-leak`),
//! * uid/gid values outside the anonymizer's 2000..62000 remap range
//!   (`anon-cred-leak`, warning — ids are selectable separately).
//!
//! As a courtesy it also notes traces that *look* fully pseudonymized
//! but do not carry the claim (`anon-unmarked`).

use iotrace_model::event::{IoCall, Trace};

use crate::config::LintConfig;
use crate::diag::{Diagnostic, Severity};
use crate::passes::{LintInput, LintPass};

pub struct AnonLeakage;

fn is_hex(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

/// Does `comp` match a pseudonym the anonymizer could have produced?
fn is_pseudonym(comp: &str) -> bool {
    if let Some(hex) = comp.strip_prefix('a') {
        if hex.len() == 12 && is_hex(hex) {
            return true;
        }
    }
    if let Some(hex) = comp.strip_prefix('e') {
        // IV ({:08x} of a u64: 8–16 digits) plus at least one 8-byte
        // ciphertext block (16 digits).
        if hex.len() >= 24 && is_hex(hex) {
            return true;
        }
    }
    false
}

fn is_meta_pseudonym(value: &str, prefix: &str) -> bool {
    value.strip_prefix(prefix).is_some_and(is_pseudonym)
}

/// Both path arguments of a call (renames carry two).
fn paths_of(call: &IoCall) -> Vec<&str> {
    match call {
        IoCall::Rename { from, to } => vec![from, to],
        other => other.path().into_iter().collect(),
    }
}

const UID_REMAP_LO: u32 = 2_000;
const UID_REMAP_HI: u32 = 62_000;

fn lint_trace(trace: &Trace, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    let rank = trace.meta.rank;

    if !trace.meta.anonymized {
        // Courtesy note: fully-pseudonymized paths without the claim.
        let mut saw_path = false;
        let all_pseudo = trace.records.iter().all(|r| {
            paths_of(&r.call).iter().all(|p| {
                let comps: Vec<&str> = p.split('/').filter(|c| !c.is_empty()).collect();
                saw_path |= !comps.is_empty();
                comps.iter().all(|c| is_pseudonym(c))
            })
        });
        if saw_path && all_pseudo {
            out.push(
                Diagnostic::new(
                    "anon-unmarked",
                    Severity::Info,
                    "every path is pseudonymized but the trace does not claim anonymization",
                )
                .at_rank(rank)
                .with_hint("set the anonymized flag so downstream audits apply"),
            );
        }
        return;
    }

    if !is_meta_pseudonym(&trace.meta.host, "host_") {
        out.push(
            Diagnostic::new(
                "anon-host-leak",
                Severity::Error,
                format!(
                    "trace claims anonymization but header hostname is raw: \"{}\"",
                    trace.meta.host
                ),
            )
            .at_rank(rank)
            .with_hint("re-run the anonymizer with path selection enabled"),
        );
    }
    if !is_meta_pseudonym(&trace.meta.app, "app_") {
        out.push(
            Diagnostic::new(
                "anon-app-leak",
                Severity::Error,
                format!(
                    "trace claims anonymization but application command line is raw: \"{}\"",
                    trace.meta.app
                ),
            )
            .at_rank(rank),
        );
    }

    let mut reported = 0usize;
    let mut suppressed = 0usize;
    let mut bad_creds = 0usize;
    let mut first_bad_cred = None;
    for (i, r) in trace.records.iter().enumerate() {
        for p in paths_of(&r.call) {
            if let Some(raw) = p.split('/').find(|c| !c.is_empty() && !is_pseudonym(c)) {
                if reported < cfg.max_reports_per_rule {
                    reported += 1;
                    out.push(
                        Diagnostic::new(
                            "anon-path-leak",
                            Severity::Error,
                            format!(
                                "{} path \"{p}\" leaks raw component \"{raw}\" despite the \
                                 anonymization claim",
                                r.call.name()
                            ),
                        )
                        .at_record(rank, i),
                    );
                } else {
                    suppressed += 1;
                }
            }
        }
        if !(UID_REMAP_LO..UID_REMAP_HI).contains(&r.uid)
            || !(UID_REMAP_LO..UID_REMAP_HI).contains(&r.gid)
        {
            bad_creds += 1;
            first_bad_cred.get_or_insert(i);
        }
    }
    if suppressed > 0 {
        out.push(
            Diagnostic::new(
                "anon-path-leak",
                Severity::Info,
                format!("{suppressed} further path leak(s) suppressed"),
            )
            .at_rank(rank),
        );
    }
    if let Some(at) = first_bad_cred {
        out.push(
            Diagnostic::new(
                "anon-cred-leak",
                Severity::Warning,
                format!(
                    "{bad_creds} record(s) carry uid/gid outside the anonymizer's remap range \
                     (first at #{at})"
                ),
            )
            .at_record(rank, at)
            .with_hint("anonymize with uid/gid selection enabled, or clear the claim"),
        );
    }
}

impl LintPass for AnonLeakage {
    fn name(&self) -> &'static str {
        "anonleak"
    }

    fn run(&self, input: &LintInput<'_>, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        for t in input.traces {
            lint_trace(t, cfg, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trace_of;
    use iotrace_model::anonymize::{Anonymizer, Mode, Selection};

    fn open(path: &str) -> (IoCall, i64) {
        (
            IoCall::Open {
                path: path.into(),
                flags: 0,
                mode: 0,
            },
            3,
        )
    }

    fn run(traces: &[Trace]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        AnonLeakage.run(
            &LintInput::from_traces(traces),
            &LintConfig::default(),
            &mut out,
        );
        out
    }

    #[test]
    fn unclaimed_raw_trace_is_silent() {
        let t = trace_of(0, vec![open("/home/jdoe/data.bin")]);
        assert!(run(std::slice::from_ref(&t)).is_empty());
    }

    #[test]
    fn properly_anonymized_trace_is_clean() {
        let mut t = trace_of(0, vec![open("/home/jdoe/data.bin"), open("/pfs/out")]);
        Anonymizer::new(Mode::Randomize { seed: 7 }, Selection::ALL).apply(&mut t);
        assert!(t.meta.anonymized);
        let out = run(std::slice::from_ref(&t));
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn encrypt_mode_output_is_clean_too() {
        let mut t = trace_of(0, vec![open("/home/jdoe")]);
        let key = iotrace_model::xtea::Key::from_passphrase("k");
        Anonymizer::new(Mode::Encrypt { key }, Selection::ALL).apply(&mut t);
        let out = run(std::slice::from_ref(&t));
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn raw_path_under_claim_errors() {
        let mut t = trace_of(0, vec![open("/home/jdoe/secret.dat")]);
        // Anonymize ids only — paths survive raw, but the claim is set.
        let sel = Selection {
            paths: false,
            uids: true,
            gids: true,
            preserve_structure: true,
        };
        Anonymizer::new(Mode::Randomize { seed: 7 }, sel).apply(&mut t);
        let rules: Vec<&str> = run(std::slice::from_ref(&t))
            .iter()
            .map(|d| d.rule)
            .collect();
        assert!(rules.contains(&"anon-path-leak"), "{rules:?}");
        assert!(rules.contains(&"anon-host-leak"), "{rules:?}");
        assert!(rules.contains(&"anon-app-leak"), "{rules:?}");
    }

    #[test]
    fn raw_credentials_under_claim_warn() {
        let mut t = trace_of(0, vec![open("/x")]);
        let sel = Selection {
            paths: true,
            uids: false,
            gids: false,
            preserve_structure: true,
        };
        Anonymizer::new(Mode::Randomize { seed: 7 }, sel).apply(&mut t);
        // testutil records carry uid 0 — outside the remap range.
        let out = run(std::slice::from_ref(&t));
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "anon-cred-leak");
        assert_eq!(out[0].severity, Severity::Warning);
    }

    #[test]
    fn rename_target_is_audited() {
        let mut t = trace_of(0, vec![open("/x")]);
        Anonymizer::new(Mode::Randomize { seed: 7 }, Selection::ALL).apply(&mut t);
        t.records.push(crate::testutil::rec(
            0,
            IoCall::Rename {
                from: "/a000000000000".into(),
                to: "/raw/name".into(),
            },
            0,
        ));
        let out = run(std::slice::from_ref(&t));
        assert!(out.iter().any(|d| d.rule == "anon-path-leak"), "{out:?}");
    }

    #[test]
    fn pseudonymized_but_unmarked_gets_a_note() {
        let t = trace_of(0, vec![open("/a0123456789ab/adeadbeef0123")]);
        let out = run(std::slice::from_ref(&t));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "anon-unmarked");
        assert_eq!(out[0].severity, Severity::Info);
    }

    #[test]
    fn pseudonym_recognizers() {
        assert!(is_pseudonym("a0123456789ab"));
        assert!(is_pseudonym("edeadbeef0011223344556677")); // 8-digit iv + one block
        assert!(is_pseudonym("e123456789abc0011223344556677889")); // wide iv
        assert!(!is_pseudonym("a0123456789aG"));
        assert!(!is_pseudonym("adata"));
        assert!(!is_pseudonym("edeadbeef0")); // too short to carry a block
        assert!(!is_pseudonym("jdoe"));
        assert!(!is_pseudonym("A0123456789AB")); // uppercase is not ours
    }
}
