//! Property tests for the fd-lifecycle and dependency-graph passes.
//!
//! * arbitrary open/close/I/O interleavings never panic the linter, and
//!   linting is deterministic;
//! * well-formed lifecycles produce no fd diagnostics;
//! * dependency maps whose edges always point forward in op order are
//!   never reported cyclic, backward self-edges always are, and any
//!   reported cycle is confirmed by an independent reachability check.

use proptest::prelude::*;

use iotrace_lint::{lint_traces, LintConfig, LintInput, Linter};
use iotrace_model::event::{IoCall, Trace, TraceMeta, TraceRecord};
use iotrace_partrace::deps::{DependencyEdge, DependencyMap};
use iotrace_sim::time::{SimDur, SimTime};

fn record(i: usize, call: IoCall, result: i64) -> TraceRecord {
    TraceRecord {
        ts: SimTime::from_micros(i as u64 * 10),
        dur: SimDur::from_micros(1),
        rank: 0,
        node: 0,
        pid: 1,
        uid: 2_500,
        gid: 2_500,
        call,
        result,
    }
}

fn trace_from_ops(rank: u32, ops: &[(u8, i64)]) -> Trace {
    let mut t = Trace::new(TraceMeta::new("/app", rank, rank, "prop"));
    for (i, &(kind, fd)) in ops.iter().enumerate() {
        let (call, result) = match kind % 6 {
            0 => (
                IoCall::Open {
                    path: format!("/f{fd}"),
                    flags: 0,
                    mode: 0,
                },
                fd,
            ),
            1 => (IoCall::Close { fd }, 0),
            2 => (IoCall::Read { fd, len: 16 }, 16),
            3 => (IoCall::Write { fd, len: 16 }, 16),
            4 => (IoCall::Fsync { fd }, 0),
            _ => (IoCall::Close { fd }, -9), // failed close: must be inert
        };
        t.records.push(record(i, call, result));
    }
    t
}

proptest! {
    #[test]
    fn arbitrary_fd_interleavings_never_panic_and_are_deterministic(
        ops in prop::collection::vec((0u8..6, 0i64..8), 0..60)
    ) {
        let t = trace_from_ops(0, &ops);
        let traces = [t];
        let a = lint_traces(&traces, None);
        let b = lint_traces(&traces, None);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn balanced_lifecycles_produce_no_fd_findings(
        files in prop::collection::vec((3i64..10, 0u8..4), 1..10)
    ) {
        // Open each fd, do one op on it, close it — strictly bracketed,
        // sequential, distinct or reused fds alike are legal.
        let mut ops: Vec<(u8, i64)> = Vec::new();
        for &(fd, op) in &files {
            ops.push((0, fd));          // open → result fd
            ops.push((2 + (op % 3), fd)); // read/write/fsync
            ops.push((1, fd));          // close
        }
        let t = trace_from_ops(0, &ops);
        let traces = [t];
        let report = Linter::new(LintConfig::default())
            .keep_passes(&["fd-lifecycle"])
            .unwrap()
            .run(&LintInput::from_traces(&traces));
        prop_assert!(report.is_clean(), "{}", report.render_human());
    }

    #[test]
    fn use_after_close_is_always_caught(
        fd in 3i64..10,
        gap in 0usize..5
    ) {
        let mut ops = vec![(0u8, fd), (1u8, fd)];
        // unrelated traffic on another fd in between
        for _ in 0..gap {
            ops.push((0, fd + 10));
            ops.push((1, fd + 10));
        }
        ops.push((3, fd)); // write on the closed fd
        let t = trace_from_ops(0, &ops);
        let traces = [t];
        let report = lint_traces(&traces, None);
        prop_assert!(
            report.diagnostics.iter().any(|d| d.rule == "fd-use-after-close"),
            "{}",
            report.render_human()
        );
    }
}

// ---- dependency-graph properties ----

fn edge(from_rank: u32, from_op: usize, to_rank: u32, to_op: usize) -> DependencyEdge {
    DependencyEdge {
        from_node: from_rank,
        from_rank,
        from_op,
        to_rank,
        to_op,
        shift: SimDur::from_millis(1),
    }
}

fn rank_traces(ranks: u32, records_each: usize) -> Vec<Trace> {
    (0..ranks)
        .map(|r| {
            let mut t = Trace::new(TraceMeta::new("/app", r, r, "prop"));
            for i in 0..records_each {
                t.records.push(record(i, IoCall::Fsync { fd: 1 }, 0));
            }
            t
        })
        .collect()
}

fn depgraph_report(traces: &[Trace], map: &DependencyMap) -> iotrace_lint::LintReport {
    Linter::new(LintConfig::default())
        .keep_passes(&["depgraph"])
        .unwrap()
        .run(&LintInput {
            traces,
            deps: Some(map),
            policy: None,
        })
}

/// Independent cycle oracle over the same node set the pass uses:
/// dependency edges plus per-rank program order, checked by naive
/// DFS reachability (is any node reachable from itself?).
fn has_cycle_oracle(edges: &[DependencyEdge]) -> bool {
    use std::collections::BTreeSet;
    let mut nodes: BTreeSet<(u32, usize)> = BTreeSet::new();
    for e in edges {
        nodes.insert((e.from_rank, e.from_op));
        nodes.insert((e.to_rank, e.to_op));
    }
    let succ = |n: (u32, usize)| -> Vec<(u32, usize)> {
        let mut s: Vec<(u32, usize)> = edges
            .iter()
            .filter(|e| (e.from_rank, e.from_op) == n)
            .map(|e| (e.to_rank, e.to_op))
            .collect();
        // program order: next referenced op on the same rank
        if let Some(&next) = nodes.iter().find(|&&(r, o)| r == n.0 && o > n.1) {
            s.push(next);
        }
        s
    };
    for &start in &nodes {
        let mut stack = succ(start);
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == start {
                return true;
            }
            if seen.insert(n) {
                stack.extend(succ(n));
            }
        }
    }
    false
}

proptest! {
    #[test]
    fn forward_edges_are_never_cyclic(
        raw in prop::collection::vec((0u32..3, 0usize..6, 0u32..3, 0usize..6), 0..20)
    ) {
        // Force every dependency edge forward in op order: combined with
        // program order (also forward), every edge increases the op
        // index, so no cycle can exist.
        let edges: Vec<DependencyEdge> = raw
            .iter()
            .map(|&(fr, a, tr, b)| edge(fr, a.min(b), tr, a.max(b) + 1))
            .collect();
        let traces = rank_traces(3, 8);
        let report = depgraph_report(&traces, &DependencyMap { edges });
        prop_assert!(
            !report.diagnostics.iter().any(|d| d.rule == "dep-cycle"),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn backward_self_edges_always_cycle(
        rank in 0u32..3,
        to_op in 0usize..4,
        gap in 1usize..4
    ) {
        // rank waits on its own later record: program order to_op →
        // from_op plus the dependency from_op → to_op closes a loop.
        let from_op = to_op + gap;
        let traces = rank_traces(3, 8);
        let map = DependencyMap { edges: vec![edge(rank, from_op, rank, to_op)] };
        let report = depgraph_report(&traces, &map);
        prop_assert!(
            report.diagnostics.iter().any(|d| d.rule == "dep-cycle"),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn reported_cycles_are_confirmed_by_the_oracle(
        raw in prop::collection::vec((0u32..3, 0usize..5, 0u32..3, 0usize..5), 0..16)
    ) {
        let edges: Vec<DependencyEdge> = raw
            .iter()
            .map(|&(fr, a, tr, b)| edge(fr, a, tr, b))
            .collect();
        let traces = rank_traces(3, 8);
        let report = depgraph_report(&traces, &DependencyMap { edges: edges.clone() });
        let reported = report.diagnostics.iter().any(|d| d.rule == "dep-cycle");
        prop_assert_eq!(reported, has_cycle_oracle(&edges));
    }

    #[test]
    fn depgraph_never_panics_on_arbitrary_edges(
        raw in prop::collection::vec((0u32..5, 0usize..20, 0u32..5, 0usize..20), 0..24)
    ) {
        let edges: Vec<DependencyEdge> = raw
            .iter()
            .map(|&(fr, a, tr, b)| edge(fr, a, tr, b))
            .collect();
        // traces deliberately smaller than some op indices → dangling
        let traces = rank_traces(3, 6);
        let map = DependencyMap { edges };
        let a = depgraph_report(&traces, &map);
        let b = depgraph_report(&traces, &map);
        prop_assert_eq!(a, b);
    }
}
