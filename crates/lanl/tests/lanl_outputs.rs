//! LANL-Trace end-to-end: run mpi_io_test under the tracer and verify
//! all three Figure 1 output types, replayability of the raw files, and
//! emergent overhead.

use iotrace_ioapi::prelude::*;
use iotrace_lanl::prelude::*;
use iotrace_model::event::CallLayer;
use iotrace_model::summary::CallSummary;
use iotrace_model::timing::AggregateTiming;
use iotrace_sim::ids::NodeId;
use iotrace_workloads::prelude::*;

fn workload(n: u32) -> MpiIoTest {
    MpiIoTest::new(AccessPattern::NTo1Strided, n, 64 * 1024, 8)
}

fn setup_vfs(n: usize, dir: &str) -> iotrace_fs::vfs::Vfs {
    let mut vfs = standard_vfs(n);
    vfs.setup_dir(dir).unwrap();
    vfs
}

#[test]
fn produces_all_three_output_types() {
    let n = 4;
    let w = workload(n);
    let run = LanlTrace::ltrace().run(
        standard_cluster(n as usize, 11),
        setup_vfs(n as usize, &w.dir),
        w.programs(),
        &w.cmdline(),
    );
    assert!(run.report.run.is_clean());

    // 1. Raw traces: one per rank, on that rank's node-local /tmp.
    assert_eq!(run.raw_paths.len(), n as usize);
    for (rank, path) in &run.raw_paths {
        let trace = parse_raw_trace(&run.report.vfs, *rank, path).unwrap();
        assert_eq!(trace.meta.rank, *rank);
        assert!(!trace.records.is_empty(), "rank {rank} raw trace empty");
        // ltrace mode captures MPI and Sys layers only
        assert!(trace
            .records
            .iter()
            .all(|r| r.call.layer() != CallLayer::Vfs));
    }

    // 2. Aggregate timing: barriers with every rank observed.
    assert!(!run.timing.barriers.is_empty());
    let first = &run.timing.barriers[0];
    assert!(first.label.contains("Barrier before"));
    assert_eq!(first.observations.len(), n as usize);
    for b in &run.timing.barriers {
        for o in &b.observations {
            assert!(o.exited >= o.entered);
        }
    }
    // The rendered document parses back (text format is µs precision).
    let doc = run.timing.render();
    let parsed = AggregateTiming::parse(&doc).unwrap();
    assert_eq!(parsed.barriers.len(), run.timing.barriers.len());
    for (a, b) in parsed.barriers.iter().zip(&run.timing.barriers) {
        assert_eq!(a.label, b.label);
        for (oa, ob) in a.observations.iter().zip(&b.observations) {
            assert_eq!(oa.rank, ob.rank);
            assert_eq!(oa.entered.as_nanos() / 1000, ob.entered.as_nanos() / 1000);
            assert_eq!(oa.exited.as_nanos() / 1000, ob.exited.as_nanos() / 1000);
        }
    }

    // 3. Call summary with the expected functions.
    assert!(run.summary.count("MPI_File_write_at") == (n as u64) * 8);
    assert!(run.summary.count("SYS_write") == (n as u64) * 8);
    assert!(run.summary.count("MPI_Barrier") > 0);
    let rendered = run.summary.render();
    let back = CallSummary::parse(&rendered).unwrap();
    assert_eq!(back.count("SYS_write"), run.summary.count("SYS_write"));

    // Shared outputs landed on /pfs.
    let timing_file = run
        .report
        .vfs
        .fetch_file(NodeId(0), "/pfs/lanl-trace/aggregate_timing.txt")
        .unwrap();
    assert!(!timing_file.is_empty());
    let summary_file = run
        .report
        .vfs
        .fetch_file(NodeId(0), "/pfs/lanl-trace/call_summary.txt")
        .unwrap();
    assert!(String::from_utf8_lossy(&summary_file).contains("SUMMARY COUNT"));
}

#[test]
fn strace_mode_omits_library_calls() {
    let n = 2;
    let w = workload(n);
    let run = LanlTrace::strace().run(
        standard_cluster(n as usize, 11),
        setup_vfs(n as usize, &w.dir),
        w.programs(),
        &w.cmdline(),
    );
    assert!(run.report.run.is_clean());
    assert_eq!(run.summary.count("MPI_File_write_at"), 0);
    assert!(run.summary.count("SYS_write") > 0);
    for t in &run.traces {
        assert!(t.records.iter().all(|r| r.call.layer() == CallLayer::Sys));
    }
}

#[test]
fn tracing_overhead_emerges_and_strace_is_cheaper() {
    let n = 4;
    let w = workload(n).with_total_bytes(16 << 20);
    let base = untraced_baseline(
        standard_cluster(n as usize, 11),
        setup_vfs(n as usize, &w.dir),
        w.programs(),
    );
    let lt = LanlTrace::ltrace().run(
        standard_cluster(n as usize, 11),
        setup_vfs(n as usize, &w.dir),
        w.programs(),
        &w.cmdline(),
    );
    let st = LanlTrace::strace().run(
        standard_cluster(n as usize, 11),
        setup_vfs(n as usize, &w.dir),
        w.programs(),
        &w.cmdline(),
    );
    let oh_lt = elapsed_overhead(base.elapsed(), lt.report.elapsed());
    let oh_st = elapsed_overhead(base.elapsed(), st.report.elapsed());
    assert!(oh_lt > 0.10, "ltrace overhead too small: {oh_lt}");
    assert!(oh_st > 0.0, "strace overhead should exist: {oh_st}");
    assert!(
        oh_st < oh_lt,
        "strace {oh_st} should be cheaper than ltrace {oh_lt}"
    );
}

#[test]
fn skew_is_visible_in_timing_output() {
    // With sampled clocks, different ranks' observed exit times for the
    // same barrier differ by (roughly) their skews.
    let n = 4;
    let w = workload(n);
    let run = LanlTrace::ltrace().run(
        standard_cluster(n as usize, 99),
        setup_vfs(n as usize, &w.dir),
        w.programs(),
        &w.cmdline(),
    );
    let b = &run.timing.barriers[0];
    let exits: Vec<i128> = b
        .observations
        .iter()
        .map(|o| o.exited.as_nanos() as i128)
        .collect();
    let spread = exits.iter().max().unwrap() - exits.iter().min().unwrap();
    assert!(
        spread > 10_000,
        "expected visible clock skew in barrier exits, spread {spread} ns"
    );
}

#[test]
fn raw_trace_written_through_charged_path() {
    // The tracer's own writes go to /tmp (node-local) and cost time:
    // a tiny flush threshold forces many charged flushes and should be
    // slower than a huge buffer.
    let n = 2;
    let w = workload(n);
    let mut eager = LanlConfig::ltrace();
    eager.flush_bytes = 128; // flush nearly every event
    let mut lazy = LanlConfig::ltrace();
    lazy.flush_bytes = 1 << 30;
    let run_eager = LanlTrace { cfg: eager }.run(
        standard_cluster(n as usize, 5),
        setup_vfs(n as usize, &w.dir),
        w.programs(),
        &w.cmdline(),
    );
    let run_lazy = LanlTrace { cfg: lazy }.run(
        standard_cluster(n as usize, 5),
        setup_vfs(n as usize, &w.dir),
        w.programs(),
        &w.cmdline(),
    );
    assert!(run_eager.report.elapsed() >= run_lazy.report.elapsed());
    // Both leave complete raw files behind.
    for (rank, path) in &run_eager.raw_paths {
        let t = parse_raw_trace(&run_eager.report.vfs, *rank, path).unwrap();
        assert!(!t.records.is_empty());
    }
}
