//! # iotrace-lanl — LANL-Trace
//!
//! The paper's first surveyed framework (§2.1, §4.1): a wrapper around
//! ltrace/strace that produces three human-readable outputs — raw
//! per-rank traces, aggregate barrier timing (for clock skew/drift
//! accounting), and a call summary (Figure 1). Simple to install and
//! parallel-FS compatible, but its ptrace mechanism makes per-event
//! overhead large: bandwidth overhead is severe at small block sizes and
//! fades at large ones (Figures 2–4).

pub mod config;
pub mod run;
pub mod tracer;

pub mod prelude {
    pub use crate::config::{LanlConfig, WrapMode};
    pub use crate::run::{untraced_baseline, with_timing_jobs, LanlRun, LanlTrace};
    pub use crate::tracer::{parse_raw_trace, LanlTracer};
}
