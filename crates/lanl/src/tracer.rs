//! The LANL-Trace tracer hook: a ptrace-mechanism tracer that streams
//! strace/ltrace-style text to node-local files and accumulates the
//! aggregate timing and call-summary outputs (the three output types of
//! paper Figure 1).

use std::any::Any;
use std::collections::BTreeMap;

use iotrace_fs::vfs::{Vfs, VnodeId};
use iotrace_ioapi::params::Interception;
use iotrace_ioapi::tracer::{IoTracer, TracerCtx};
use iotrace_model::event::{CallLayer, IoCall, Trace, TraceMeta, TraceRecord};
use iotrace_model::summary::CallSummary;
use iotrace_model::text;
use iotrace_model::timing::{AggregateTiming, BarrierObservation, BarrierTiming};
use iotrace_sim::time::{SimDur, SimTime};

use crate::config::{LanlConfig, WrapMode};

struct RankSink {
    /// Raw trace file on the rank's node-local disk.
    file: Option<VnodeId>,
    path: String,
    written: u64,
    buffer: String,
    node: u32,
    pid: u32,
    /// In-memory copy of the records (keep_records).
    records: Vec<TraceRecord>,
    barrier_seq: u32,
}

/// See module docs.
pub struct LanlTracer {
    cfg: LanlConfig,
    app: String,
    sinks: BTreeMap<u32, RankSink>,
    summary: CallSummary,
    timing: AggregateTiming,
    base_epoch: u64,
}

impl LanlTracer {
    pub fn new(cfg: LanlConfig, app_cmdline: &str) -> Self {
        LanlTracer {
            cfg,
            app: app_cmdline.to_string(),
            sinks: BTreeMap::new(),
            summary: CallSummary::new(),
            timing: AggregateTiming::new(1_159_808_385),
            base_epoch: 1_159_808_385,
        }
    }

    pub fn config(&self) -> &LanlConfig {
        &self.cfg
    }

    /// Aggregate call summary across ranks (Figure 1, bottom).
    pub fn summary(&self) -> &CallSummary {
        &self.summary
    }

    /// Aggregate timing information (Figure 1, middle).
    pub fn timing(&self) -> &AggregateTiming {
        &self.timing
    }

    /// Per-rank raw trace paths (on each rank's node-local disk).
    pub fn raw_paths(&self) -> Vec<(u32, String)> {
        self.sinks
            .iter()
            .map(|(r, s)| (*r, s.path.clone()))
            .collect()
    }

    /// Decoded per-rank traces (when `keep_records`).
    pub fn traces(&self) -> Vec<Trace> {
        self.sinks
            .iter()
            .map(|(r, s)| Trace {
                meta: self.meta_for(*r, s.node),
                records: s.records.clone(),
            })
            .collect()
    }

    fn meta_for(&self, rank: u32, node: u32) -> TraceMeta {
        TraceMeta::new(&self.app, rank, node, "lanl-trace")
    }

    fn sink_for(&mut self, ctx: &TracerCtx<'_>) -> &mut RankSink {
        let cfg = &self.cfg;
        let app = &self.app;
        self.sinks.entry(ctx.rank.0).or_insert_with(|| {
            let path = format!("{}/rank{:04}.trace", cfg.local_dir, ctx.rank.0);
            RankSink {
                file: None,
                path,
                written: 0,
                buffer: header_text(app, ctx, 1_159_808_385),
                node: ctx.node.0,
                pid: 0,
                records: Vec::new(),
                barrier_seq: 0,
            }
        })
    }

    /// Label for the n-th barrier, mirroring LANL-Trace's convention.
    fn barrier_label(&self, seq: u32) -> String {
        match seq {
            0 => format!("Barrier before {}", self.app),
            _ => format!("Barrier {seq} of {}", self.app),
        }
    }
}

fn header_text(app: &str, ctx: &TracerCtx<'_>, epoch: u64) -> String {
    format!(
        "# tracer: lanl-trace\n# app: {}\n# rank: {}\n# node: {}\n# host: host{:02}.lanl.gov\n# epoch: {}\n",
        app, ctx.rank.0, ctx.node.0, ctx.node.0, epoch
    )
}

impl IoTracer for LanlTracer {
    fn name(&self) -> &'static str {
        "lanl-trace"
    }

    fn mechanism(&self) -> Option<Interception> {
        Some(Interception::Ptrace)
    }

    fn wants(&self, call: &IoCall) -> bool {
        match self.cfg.mode {
            WrapMode::Ltrace => call.layer() != CallLayer::Vfs,
            WrapMode::Strace => call.layer() == CallLayer::Sys,
        }
    }

    fn startup(&mut self, ctx: &mut TracerCtx<'_>) -> SimDur {
        let startup = self.cfg.startup;
        let sink = self.sink_for(ctx);
        let mut cost = startup;
        if sink.file.is_none() {
            if let Ok((vn, finish)) = ctx.open_output(&sink.path) {
                sink.file = Some(vn);
                cost += finish.since(ctx.now);
            }
        }
        cost
    }

    fn aux_stops_per_data_op(&self) -> u32 {
        self.cfg.aux_stops
    }

    fn on_event(&mut self, rec: &TraceRecord, ctx: &mut TracerCtx<'_>) -> SimDur {
        self.summary.add(rec);

        // Aggregate timing: every MPI_Barrier is a labelled observation.
        if matches!(rec.call, IoCall::MpiBarrier) {
            let seq = {
                let sink = self.sink_for(ctx);
                let s = sink.barrier_seq;
                sink.barrier_seq += 1;
                s
            };
            let label = self.barrier_label(seq);
            let obs = BarrierObservation {
                rank: rec.rank,
                host: format!("host{:02}.lanl.gov", rec.node),
                pid: rec.pid,
                entered: rec.ts,
                exited: rec.ts + rec.dur,
            };
            if let Some(b) = self.timing.barriers.iter_mut().find(|b| b.label == label) {
                b.observations.push(obs);
            } else {
                self.timing.barriers.push(BarrierTiming {
                    label,
                    observations: vec![obs],
                });
            }
        }

        let keep = self.cfg.keep_records;
        let flush_bytes = self.cfg.flush_bytes;
        let epoch = self.base_epoch;
        let sink = self.sink_for(ctx);
        sink.pid = rec.pid;
        if keep {
            sink.records.push(rec.clone());
        }
        // Format the raw text line exactly as the text codec does.
        let ns = rec.ts.as_nanos();
        sink.buffer.push_str(&format!(
            "{}.{:06} {} = {} <{:.6}>\n",
            epoch + ns / 1_000_000_000,
            (ns % 1_000_000_000) / 1_000,
            text::format_call(&rec.call),
            rec.result,
            rec.dur.as_secs_f64(),
        ));

        // Flush to node-local disk when the buffer fills (charged).
        let mut extra = SimDur::ZERO;
        if sink.buffer.len() >= flush_bytes {
            if let Some(vn) = sink.file {
                let data = std::mem::take(&mut sink.buffer);
                if let Ok(d) = ctx.append(vn, sink.written, data.as_bytes()) {
                    extra += d;
                }
                sink.written += data.len() as u64;
            }
        }
        extra
    }

    fn end_run(&mut self, vfs: &mut Vfs, _now: SimTime) {
        // Final flush of every rank's buffer (uncharged: job has ended;
        // the wrapper script does this after the app exits).
        for sink in self.sinks.values_mut() {
            if !sink.buffer.is_empty() {
                let data = std::mem::take(&mut sink.buffer);
                let node = iotrace_sim::ids::NodeId(sink.node);
                let mut all = vfs.fetch_file(node, &sink.path).unwrap_or_default();
                all.extend_from_slice(data.as_bytes());
                let _ = vfs.put_file(node, &sink.path, &all);
                sink.written += data.len() as u64;
            }
        }
        // Write the aggregate outputs to the shared directory.
        let timing_doc = self.timing.render();
        let summary_doc = self.summary.render();
        let _ = vfs.put_file(
            iotrace_sim::ids::NodeId(0),
            &format!("{}/aggregate_timing.txt", self.cfg.shared_dir),
            timing_doc.as_bytes(),
        );
        let _ = vfs.put_file(
            iotrace_sim::ids::NodeId(0),
            &format!("{}/call_summary.txt", self.cfg.shared_dir),
            summary_doc.as_bytes(),
        );
    }

    fn snapshot(&self) -> Option<iotrace_model::journal::TracerSnapshot> {
        // Records in rank order (BTreeMap iteration), so the digest is a
        // stable function of the capture state. Buffered bytes are the
        // text still sitting in per-rank memory buffers — exactly what a
        // kill -9 of the wrapper scripts would lose.
        let records: Vec<TraceRecord> = self
            .sinks
            .values()
            .flat_map(|s| s.records.iter().cloned())
            .collect();
        Some(iotrace_model::journal::TracerSnapshot {
            tracer: "lanl-trace".into(),
            records: records.len(),
            buffered_bytes: self.sinks.values().map(|s| s.buffer.len() as u64).sum(),
            digest: iotrace_model::journal::records_digest(&records),
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Reconstruct a rank's `Trace` by parsing its raw on-disk text output —
/// proving the files are genuinely replayable.
pub fn parse_raw_trace(
    vfs: &Vfs,
    node: u32,
    path: &str,
) -> Result<Trace, iotrace_model::text::ParseError> {
    let bytes = vfs
        .fetch_file(iotrace_sim::ids::NodeId(node), path)
        .map_err(|e| iotrace_model::text::ParseError {
            line: 0,
            message: e.to_string(),
        })?;
    let s = String::from_utf8_lossy(&bytes);
    text::parse_text(&s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wants_follows_mode() {
        let lt = LanlTracer::new(LanlConfig::ltrace(), "/app");
        assert!(lt.wants(&IoCall::MpiBarrier));
        assert!(lt.wants(&IoCall::Write { fd: 1, len: 1 }));
        assert!(!lt.wants(&IoCall::VfsWritePage {
            path: "/x".into(),
            offset: 0,
            len: 1
        }));
        let st = LanlTracer::new(LanlConfig::strace(), "/app");
        assert!(!st.wants(&IoCall::MpiBarrier));
        assert!(st.wants(&IoCall::Write { fd: 1, len: 1 }));
    }

    #[test]
    fn barrier_labels() {
        let t = LanlTracer::new(LanlConfig::ltrace(), "/app.exe");
        assert_eq!(t.barrier_label(0), "Barrier before /app.exe");
        assert_eq!(t.barrier_label(2), "Barrier 2 of /app.exe");
    }

    #[test]
    fn rank_of_sink_is_tracked() {
        let t = LanlTracer::new(LanlConfig::ltrace(), "/app");
        assert!(t.raw_paths().is_empty());
        assert!(t.traces().is_empty());
    }
}
