//! High-level LANL-Trace job runner.
//!
//! Mirrors the real wrapper's behaviour: launches a small MPI job before
//! and after the traced application ("this job reports the observed time
//! for each node, does a barrier, and then reports the time again",
//! paper §4.1.1) so the aggregate timing output brackets the app with
//! skew/drift reference points, then runs the application itself under
//! the ptrace-based tracer.

use iotrace_fs::params::RetryPolicy;
use iotrace_fs::vfs::Vfs;
use iotrace_ioapi::harness::{run_job, run_job_controlled, CheckpointSample, JobReport};
use iotrace_ioapi::op::{IoOp, IoRes};
use iotrace_ioapi::traced::Traced;
use iotrace_ioapi::tracer::{downcast_tracer, NullTracer};
use iotrace_model::event::Trace;
use iotrace_model::summary::CallSummary;
use iotrace_model::timing::AggregateTiming;
use iotrace_sim::engine::ClusterConfig;
use iotrace_sim::fault::FaultPlan;
use iotrace_sim::ids::CommId;
use iotrace_sim::program::{Op, OpList, RankProgram, Seq};
use iotrace_sim::time::SimDur;

use crate::config::LanlConfig;
use crate::tracer::LanlTracer;

type P = Box<dyn RankProgram<IoOp, IoRes>>;

/// Launch cost of the small pre/post MPI timing job.
const TIMING_JOB_LAUNCH: SimDur = SimDur(20_000_000); // 20 ms

/// The pre/post clock-sampling MPI job: report time, barrier, report
/// time again.
fn timing_job() -> P {
    Box::new(Traced::new(OpList::new(vec![
        Op::Compute(TIMING_JOB_LAUNCH),
        Op::Io(IoOp::NoteCommRank),
        Op::ReadClock,
        Op::Barrier(CommId::WORLD),
        Op::ReadClock,
        Op::Exit,
    ])))
}

/// Wrap each rank's program with the pre/post timing jobs.
pub fn with_timing_jobs(programs: Vec<P>) -> Vec<P> {
    programs
        .into_iter()
        .map(|p| Box::new(Seq::new(vec![timing_job(), p, timing_job()])) as P)
        .collect()
}

/// Everything a LANL-Trace run produces.
pub struct LanlRun {
    pub report: JobReport,
    /// Decoded per-rank traces.
    pub traces: Vec<Trace>,
    /// Aggregate timing output (Figure 1, middle).
    pub timing: AggregateTiming,
    /// Call summary output (Figure 1, bottom).
    pub summary: CallSummary,
    /// `(rank, node-local path)` of each raw trace file.
    pub raw_paths: Vec<(u32, String)>,
}

/// The LANL-Trace framework front-end.
pub struct LanlTrace {
    pub cfg: LanlConfig,
}

impl LanlTrace {
    pub fn ltrace() -> Self {
        LanlTrace {
            cfg: LanlConfig::ltrace(),
        }
    }

    pub fn strace() -> Self {
        LanlTrace {
            cfg: LanlConfig::strace(),
        }
    }

    /// [`LanlTrace::run`] under an injected fault plan: storage windows
    /// degrade the VFS before the job starts, and afterwards the plan's
    /// trace-level faults are applied the way LANL-Trace actually loses
    /// data — whole per-rank files vanish, files are truncated, and a
    /// crashed node's records stop at the crash instant.
    pub fn run_with_faults(
        &self,
        cluster: ClusterConfig,
        mut vfs: Vfs,
        programs: Vec<P>,
        app_cmdline: &str,
        plan: &FaultPlan,
    ) -> LanlRun {
        vfs.degrade_storage(&plan.storage_windows(), RetryPolicy::lanl_2007());
        let mut run = self.run(cluster, vfs, programs, app_cmdline);
        apply_fault_plan(&mut run.traces, plan);
        run
    }

    /// [`LanlTrace::run_with_faults`] under
    /// [`RunLimits`](iotrace_sim::engine::RunLimits): the engine
    /// aborts after `limits.max_events` (the plan's `run-abort` kill) and
    /// records one [`CheckpointSample`] per `checkpoint_every` events. On
    /// an aborted run the plan's trace-level faults are *not* applied —
    /// the run died before the wrapper's collection step — and the traces
    /// are whatever the tracer held in memory at the kill, unflushed
    /// buffers included only insofar as they were already captured.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_faults_controlled(
        &self,
        cluster: ClusterConfig,
        vfs: Vfs,
        programs: Vec<P>,
        app_cmdline: &str,
        plan: &FaultPlan,
        limits: iotrace_sim::engine::RunLimits,
        samples: &mut Vec<CheckpointSample>,
    ) -> LanlRun {
        let tracer = LanlTracer::new(self.cfg.clone(), app_cmdline);
        let report = run_job_controlled(
            cluster,
            vfs,
            Box::new(tracer),
            with_timing_jobs(programs),
            None,
            plan,
            limits,
            samples,
        );
        let t =
            downcast_tracer::<LanlTracer>(report.tracer.as_ref()).expect("tracer is a LanlTracer");
        let traces = t.traces();
        let timing = t.timing().clone();
        let summary = t.summary().clone();
        let raw_paths = t.raw_paths();
        let aborted = report.run.aborted;
        let mut run = LanlRun {
            report,
            traces,
            timing,
            summary,
            raw_paths,
        };
        if !aborted {
            apply_fault_plan(&mut run.traces, plan);
        }
        run
    }

    /// Run `programs` under LANL-Trace on the given cluster.
    pub fn run(
        &self,
        cluster: ClusterConfig,
        vfs: Vfs,
        programs: Vec<P>,
        app_cmdline: &str,
    ) -> LanlRun {
        let tracer = LanlTracer::new(self.cfg.clone(), app_cmdline);
        let report = run_job(
            cluster,
            vfs,
            Box::new(tracer),
            with_timing_jobs(programs),
            None,
        );
        let t =
            downcast_tracer::<LanlTracer>(report.tracer.as_ref()).expect("tracer is a LanlTracer");
        let traces = t.traces();
        let timing = t.timing().clone();
        let summary = t.summary().clone();
        let raw_paths = t.raw_paths();
        LanlRun {
            report,
            traces,
            timing,
            summary,
            raw_paths,
        }
    }
}

/// Untraced baseline with the same pre/post jobs absent (the plain app,
/// as `time ./app` would run it).
pub fn untraced_baseline(cluster: ClusterConfig, vfs: Vfs, programs: Vec<P>) -> JobReport {
    run_job(cluster, vfs, Box::new(NullTracer), programs, None)
}

/// Apply a fault plan's trace-level faults to a set of decoded per-rank
/// traces, the way LANL-Trace loses data in the field:
///
/// - a lost trace file removes the rank's trace entirely (the analysis
///   side must cope with the missing rank);
/// - a truncated trace file keeps only the leading fraction of records;
/// - a node crash cuts every record at or after the crash instant
///   (per-rank buffers on that node never reach the collection step).
///
/// Partial losses are stamped into `meta.completeness` via
/// [`iotrace_model::event::TraceMeta::record_loss`].
pub fn apply_fault_plan(traces: &mut Vec<Trace>, plan: &FaultPlan) {
    traces.retain(|t| !plan.file_lost(t.meta.rank));
    for t in traces.iter_mut() {
        if let Some(crash) = plan.crash_time(t.meta.node) {
            let total = t.records.len();
            t.records.retain(|r| r.ts < crash);
            t.meta.record_loss(t.records.len(), total);
        }
        if let Some(keep) = plan.truncation(t.meta.rank) {
            let total = t.records.len();
            let kept = (total as f64 * keep.clamp(0.0, 1.0)).floor() as usize;
            t.records.truncate(kept);
            t.meta.record_loss(kept, total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace_model::event::{IoCall, TraceMeta, TraceRecord};
    use iotrace_sim::fault::Fault;
    use iotrace_sim::time::SimTime;

    fn trace_with(rank: u32, node: u32, n: usize) -> Trace {
        let meta = TraceMeta::new("app", rank, node, "lanl-trace");
        let records = (0..n)
            .map(|i| TraceRecord {
                ts: SimTime::from_millis(i as u64),
                dur: SimDur::from_micros(10),
                rank,
                node,
                pid: 100 + rank,
                uid: 4242,
                gid: 4242,
                call: IoCall::Write { fd: 5, len: 64 },
                result: 64,
            })
            .collect();
        Trace { meta, records }
    }

    #[test]
    fn lost_file_removes_the_rank() {
        let mut traces = vec![trace_with(0, 0, 10), trace_with(1, 1, 10)];
        let plan = FaultPlan {
            seed: 1,
            faults: vec![Fault::TraceFileLoss { rank: 1 }],
        };
        apply_fault_plan(&mut traces, &plan);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].meta.rank, 0);
        assert!(traces[0].meta.is_complete());
    }

    #[test]
    fn truncation_keeps_leading_fraction_and_stamps_completeness() {
        let mut traces = vec![trace_with(0, 0, 10)];
        let plan = FaultPlan {
            seed: 1,
            faults: vec![Fault::TraceTruncation { rank: 0, keep: 0.5 }],
        };
        apply_fault_plan(&mut traces, &plan);
        assert_eq!(traces[0].records.len(), 5);
        // Prefix survives: timestamps still start at 0 and ascend.
        assert_eq!(traces[0].records[0].ts, SimTime::from_millis(0));
        assert!((traces[0].meta.completeness - 0.5).abs() < 1e-9);
    }

    #[test]
    fn node_crash_cuts_records_at_the_crash_instant() {
        let mut traces = vec![trace_with(0, 2, 10), trace_with(1, 3, 10)];
        let plan = FaultPlan {
            seed: 1,
            faults: vec![Fault::NodeCrash {
                node: 2,
                at: SimTime::from_millis(4),
            }],
        };
        apply_fault_plan(&mut traces, &plan);
        // Node 2's rank loses records at ts >= 4 ms; node 3 untouched.
        assert_eq!(traces[0].records.len(), 4);
        assert!(traces[0].meta.completeness < 1.0);
        assert_eq!(traces[1].records.len(), 10);
        assert!(traces[1].meta.is_complete());
    }
}
