//! High-level LANL-Trace job runner.
//!
//! Mirrors the real wrapper's behaviour: launches a small MPI job before
//! and after the traced application ("this job reports the observed time
//! for each node, does a barrier, and then reports the time again",
//! paper §4.1.1) so the aggregate timing output brackets the app with
//! skew/drift reference points, then runs the application itself under
//! the ptrace-based tracer.

use iotrace_fs::vfs::Vfs;
use iotrace_ioapi::harness::{run_job, JobReport};
use iotrace_ioapi::op::{IoOp, IoRes};
use iotrace_ioapi::traced::Traced;
use iotrace_ioapi::tracer::{downcast_tracer, NullTracer};
use iotrace_model::event::Trace;
use iotrace_model::summary::CallSummary;
use iotrace_model::timing::AggregateTiming;
use iotrace_sim::engine::ClusterConfig;
use iotrace_sim::ids::CommId;
use iotrace_sim::program::{Op, OpList, RankProgram, Seq};
use iotrace_sim::time::SimDur;

use crate::config::LanlConfig;
use crate::tracer::LanlTracer;

type P = Box<dyn RankProgram<IoOp, IoRes>>;

/// Launch cost of the small pre/post MPI timing job.
const TIMING_JOB_LAUNCH: SimDur = SimDur(20_000_000); // 20 ms

/// The pre/post clock-sampling MPI job: report time, barrier, report
/// time again.
fn timing_job() -> P {
    Box::new(Traced::new(OpList::new(vec![
        Op::Compute(TIMING_JOB_LAUNCH),
        Op::Io(IoOp::NoteCommRank),
        Op::ReadClock,
        Op::Barrier(CommId::WORLD),
        Op::ReadClock,
        Op::Exit,
    ])))
}

/// Wrap each rank's program with the pre/post timing jobs.
pub fn with_timing_jobs(programs: Vec<P>) -> Vec<P> {
    programs
        .into_iter()
        .map(|p| Box::new(Seq::new(vec![timing_job(), p, timing_job()])) as P)
        .collect()
}

/// Everything a LANL-Trace run produces.
pub struct LanlRun {
    pub report: JobReport,
    /// Decoded per-rank traces.
    pub traces: Vec<Trace>,
    /// Aggregate timing output (Figure 1, middle).
    pub timing: AggregateTiming,
    /// Call summary output (Figure 1, bottom).
    pub summary: CallSummary,
    /// `(rank, node-local path)` of each raw trace file.
    pub raw_paths: Vec<(u32, String)>,
}

/// The LANL-Trace framework front-end.
pub struct LanlTrace {
    pub cfg: LanlConfig,
}

impl LanlTrace {
    pub fn ltrace() -> Self {
        LanlTrace {
            cfg: LanlConfig::ltrace(),
        }
    }

    pub fn strace() -> Self {
        LanlTrace {
            cfg: LanlConfig::strace(),
        }
    }

    /// Run `programs` under LANL-Trace on the given cluster.
    pub fn run(
        &self,
        cluster: ClusterConfig,
        vfs: Vfs,
        programs: Vec<P>,
        app_cmdline: &str,
    ) -> LanlRun {
        let tracer = LanlTracer::new(self.cfg.clone(), app_cmdline);
        let report = run_job(
            cluster,
            vfs,
            Box::new(tracer),
            with_timing_jobs(programs),
            None,
        );
        let t =
            downcast_tracer::<LanlTracer>(report.tracer.as_ref()).expect("tracer is a LanlTracer");
        let traces = t.traces();
        let timing = t.timing().clone();
        let summary = t.summary().clone();
        let raw_paths = t.raw_paths();
        LanlRun {
            report,
            traces,
            timing,
            summary,
            raw_paths,
        }
    }
}

/// Untraced baseline with the same pre/post jobs absent (the plain app,
/// as `time ./app` would run it).
pub fn untraced_baseline(cluster: ClusterConfig, vfs: Vfs, programs: Vec<P>) -> JobReport {
    run_job(cluster, vfs, Box::new(NullTracer), programs, None)
}
