//! LANL-Trace configuration.

use iotrace_sim::time::SimDur;

/// Which wrapped tool does the interception (paper §2.1: "wraps the
/// standard Linux/Unix library and system call tracing utility ltrace,
/// or optionally, its system call only variant, strace").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WrapMode {
    /// Library **and** system calls; slower (singlesteps unrelated
    /// library calls too).
    Ltrace,
    /// System calls only; cheaper, but misses MPI-IO library calls.
    Strace,
}

impl WrapMode {
    pub fn tool_name(&self) -> &'static str {
        match self {
            WrapMode::Ltrace => "ltrace",
            WrapMode::Strace => "strace",
        }
    }
}

/// Tuning knobs for the LANL-Trace wrapper.
#[derive(Clone, Debug)]
pub struct LanlConfig {
    pub mode: WrapMode,
    /// Node-local directory raw traces stream to.
    pub local_dir: String,
    /// Shared directory the aggregate outputs land in.
    pub shared_dir: String,
    /// Raw-trace buffer size before a flush to local disk.
    pub flush_bytes: usize,
    /// Per-rank startup: Perl wrapper + fork/exec + ptrace attach.
    pub startup: SimDur,
    /// Recordless ptrace stops per data op (ltrace singlestepping libc
    /// internals: memcpy/malloc/locale…).
    pub aux_stops: u32,
    /// Keep decoded records in memory for analysis convenience.
    pub keep_records: bool,
}

impl LanlConfig {
    pub fn ltrace() -> Self {
        LanlConfig {
            mode: WrapMode::Ltrace,
            local_dir: "/tmp/lanl-trace".to_string(),
            shared_dir: "/pfs/lanl-trace".to_string(),
            flush_bytes: 64 * 1024,
            startup: SimDur::from_millis(150),
            aux_stops: 25,
            keep_records: true,
        }
    }

    pub fn strace() -> Self {
        LanlConfig {
            mode: WrapMode::Strace,
            aux_stops: 6,
            ..Self::ltrace()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strace_is_cheaper_than_ltrace() {
        assert!(LanlConfig::strace().aux_stops < LanlConfig::ltrace().aux_stops);
        assert_eq!(LanlConfig::strace().mode, WrapMode::Strace);
        assert_eq!(WrapMode::Ltrace.tool_name(), "ltrace");
    }
}
