//! Pseudo-application generation: turn a captured replayable trace back
//! into executable rank programs (paper §3.1: "generate a
//! pseudo-application from collected trace data with the aim of
//! reproducing the I/O signature of the original application").
//!
//! Replay semantics follow //TRACE's causal model:
//!
//! * every I/O call is re-issued with its original sizes and offsets;
//! * *short* inter-op gaps (≤ `think_threshold`) are application compute
//!   and are replayed as compute;
//! * *long* gaps are presumed waits: if the dependency map has an edge
//!   for the stalled op, the pseudo-app blocks on a message from the
//!   upstream rank — causally correct under **any** storage speed; with
//!   no edge (low sampling), the replayer can only preserve the original
//!   wall-clock gap as fixed compute, which stops adapting the moment the
//!   replay environment differs from the capture environment — exactly
//!   how low sampling degrades replay fidelity (§4.3).

use iotrace_fs::data::WritePayload;
use iotrace_fs::fs::OpenFlags;
use iotrace_fs::vfs::Vfs;
use iotrace_ioapi::op::{Fd, IoOp, IoRes, Whence};
use iotrace_model::event::{IoCall, Trace};
use iotrace_partrace::replayable::ReplayableTrace;
use iotrace_sim::ids::{CommId, RankId};
use iotrace_sim::program::{Op, OpList, RankProgram};
use iotrace_sim::time::{SimDur, SimTime};

type P = Box<dyn RankProgram<IoOp, IoRes>>;

/// Replay tuning.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Gaps at or below this are replayed as compute; longer gaps are
    /// treated as waits.
    pub think_threshold: SimDur,
    /// Honour the dependency map (disable to measure its contribution).
    pub respect_deps: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            think_threshold: SimDur::from_millis(10),
            respect_deps: true,
        }
    }
}

/// Whether barrier records can be replayed as real barriers (every rank
/// must have the same count or the pseudo-app would deadlock).
fn barriers_replayable(traces: &[Trace]) -> bool {
    let counts: Vec<usize> = traces
        .iter()
        .map(|t| {
            t.records
                .iter()
                .filter(|r| matches!(r.call, IoCall::MpiBarrier))
                .count()
        })
        .collect();
    counts.windows(2).all(|w| w[0] == w[1])
}

/// Convert one captured record to a replay op (None = skip).
fn op_of(call: &IoCall) -> Option<IoOp> {
    use IoCall::*;
    Some(match call {
        Open { path, flags, .. } => IoOp::Open {
            path: path.clone(),
            // ensure replay can create files the original created
            flags: OpenFlags(*flags) | OpenFlags::CREAT,
            mode: 0o644,
        },
        Close { fd } => IoOp::Close { fd: Fd(*fd as i32) },
        Read { fd, len } => IoOp::Read {
            fd: Fd(*fd as i32),
            len: *len,
        },
        Write { fd, len } => IoOp::Write {
            fd: Fd(*fd as i32),
            payload: WritePayload::Synthetic(*len),
        },
        Pread { fd, offset, len } => IoOp::PRead {
            fd: Fd(*fd as i32),
            offset: *offset,
            len: *len,
        },
        Pwrite { fd, offset, len } => IoOp::PWrite {
            fd: Fd(*fd as i32),
            offset: *offset,
            payload: WritePayload::Synthetic(*len),
        },
        Lseek { fd, offset, whence } => IoOp::Seek {
            fd: Fd(*fd as i32),
            offset: *offset,
            whence: match whence {
                0 => Whence::Set,
                1 => Whence::Cur,
                _ => Whence::End,
            },
        },
        Fsync { fd } => IoOp::Fsync { fd: Fd(*fd as i32) },
        Stat { path } | Statfs { path } => IoOp::Stat { path: path.clone() },
        Mkdir { path, mode } => IoOp::Mkdir {
            path: path.clone(),
            mode: *mode,
        },
        Unlink { path } => IoOp::Unlink { path: path.clone() },
        Readdir { path } => IoOp::Readdir { path: path.clone() },
        Rename { from, to } => IoOp::Rename {
            from: from.clone(),
            to: to.clone(),
        },
        // Fcntl carries no replayable I/O effect.
        Fcntl { .. } => return None,
        // mmap data movement cannot be re-driven through the syscall
        // layer — the famous blind spot; skip.
        Mmap { .. } => return None,
        // MPI wrappers duplicate their syscalls; sys-layer replay skips
        // them. Barriers are handled separately.
        MpiFileOpen { .. }
        | MpiFileClose { .. }
        | MpiFileWriteAt { .. }
        | MpiFileReadAt { .. }
        | MpiBarrier
        | MpiCommRank
        | MpiWait => return None,
        VfsLookup { .. } | VfsWritePage { .. } | VfsReadPage { .. } => return None,
    })
}

/// Build the pseudo-application: one program per captured rank.
pub fn build_programs(rt: &ReplayableTrace, cfg: ReplayConfig) -> Vec<P> {
    let use_barriers = barriers_replayable(&rt.traces);
    let mut programs = Vec::with_capacity(rt.traces.len());
    for t in &rt.traces {
        let rank = t.meta.rank;
        let mut ops: Vec<Op<IoOp>> = Vec::with_capacity(t.records.len() * 2);
        let mut prev_end: Option<SimTime> = None;
        for (k, rec) in t.records.iter().enumerate() {
            // Gap handling.
            if let Some(pe) = prev_end {
                let gap = rec.ts.since(pe);
                if gap > SimDur::ZERO {
                    let edge = if cfg.respect_deps {
                        rt.deps.incoming(rank, k)
                    } else {
                        None
                    };
                    if gap <= cfg.think_threshold {
                        ops.push(Op::Compute(gap));
                    } else if let Some(e) = edge {
                        // causal wait: block on the upstream rank
                        ops.push(Op::Recv {
                            src: RankId(e.from_rank),
                            tag: dep_tag(rt, rank, k),
                        });
                    } else {
                        // Presumed wait of unknown cause: all the
                        // replayer can do is preserve the original
                        // wall-clock gap.
                        ops.push(Op::Compute(gap));
                    }
                }
            }
            prev_end = Some(rec.end());

            if matches!(rec.call, IoCall::MpiBarrier) {
                if use_barriers {
                    ops.push(Op::Barrier(CommId::WORLD));
                } else {
                    ops.push(Op::Compute(rec.dur));
                }
            } else if let Some(op) = op_of(&rec.call) {
                ops.push(Op::Io(op));
            }

            // Outgoing dependency notifications.
            for (ei, e) in rt.deps.edges.iter().enumerate() {
                if e.from_rank == rank && e.from_op == k && cfg.respect_deps {
                    ops.push(Op::Send {
                        dst: RankId(e.to_rank),
                        bytes: 64,
                        tag: 40_000 + ei as u32,
                    });
                }
            }
        }
        ops.push(Op::Exit);
        programs.push(Box::new(OpList::new(ops)) as P);
    }
    programs
}

fn dep_tag(rt: &ReplayableTrace, rank: u32, op: usize) -> u32 {
    rt.deps
        .edges
        .iter()
        .position(|e| e.to_rank == rank && e.to_op == op)
        .map(|i| 40_000 + i as u32)
        .unwrap_or(40_000)
}

/// Pre-populate the VFS so reads of files the original application merely
/// consumed (produced outside the trace window) find data.
pub fn prepare_vfs(rt: &ReplayableTrace, vfs: &mut Vfs) {
    use std::collections::HashMap;
    for t in &rt.traces {
        // Track fd -> path through the record stream to size read targets.
        let mut fd_path: HashMap<i64, String> = HashMap::new();
        let mut need: HashMap<String, u64> = HashMap::new();
        let mut pos: HashMap<i64, u64> = HashMap::new();
        for rec in &t.records {
            match &rec.call {
                IoCall::Open { path, .. } if rec.result >= 0 => {
                    fd_path.insert(rec.result, path.clone());
                    pos.insert(rec.result, 0);
                }
                IoCall::Read { fd, len } => {
                    if let Some(p) = fd_path.get(fd) {
                        let at = pos.entry(*fd).or_insert(0);
                        let end = *at + *len;
                        *at = end;
                        let e = need.entry(p.clone()).or_insert(0);
                        *e = (*e).max(end);
                    }
                }
                IoCall::Pread { fd, offset, len } => {
                    if let Some(p) = fd_path.get(fd) {
                        let e = need.entry(p.clone()).or_insert(0);
                        *e = (*e).max(offset + len);
                    }
                }
                IoCall::Close { fd } => {
                    fd_path.remove(fd);
                }
                _ => {}
            }
        }
        for (path, size) in need {
            ensure_file(vfs, &path, size);
        }
    }
}

fn ensure_file(vfs: &mut Vfs, path: &str, size: u64) {
    let node = iotrace_sim::ids::NodeId(0);
    let normalized = iotrace_fs::path::normalize(path);
    let Ok((mount, rel)) = vfs.resolve_mount(&normalized) else {
        return;
    };
    let rel = rel.to_string();
    let Ok(fs) = vfs.backend_mut(mount, node) else {
        return;
    };
    let ns = fs.namespace_mut();
    if let Some((parent, _)) = iotrace_fs::path::split_parent(&rel) {
        let _ = ns.mkdir_all(&parent, iotrace_fs::inode::FileMeta::default());
    }
    if let Ok(ino) = ns.create_file(&rel, iotrace_fs::inode::FileMeta::default(), false) {
        let cur = ns.stat(ino).map(|s| s.size).unwrap_or(0);
        if cur < size {
            let _ = ns.write(ino, 0, &WritePayload::Synthetic(size), SimTime::ZERO);
        }
    }
}
