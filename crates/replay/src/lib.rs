//! # iotrace-replay — pseudo-application generation and replay fidelity
//!
//! Builds executable pseudo-applications from replayable traces
//! ([`pseudo`]) and measures how faithfully they reproduce the original
//! run ([`fidelity`]) — the taxonomy's "replayable trace generation" and
//! "trace replay fidelity" axes. Also the concrete realization of the
//! paper's remark that for LANL-Trace "it is trivial to imagine a
//! replayer being built that reads and replays the raw trace files":
//! any parsed [`iotrace_model::event::Trace`] can be replayed by wrapping
//! it in a dependency-free [`iotrace_partrace::replayable::ReplayableTrace`].

pub mod fidelity;
pub mod preflight;
pub mod pseudo;

use iotrace_model::event::Trace;
use iotrace_partrace::deps::DependencyMap;
use iotrace_partrace::replayable::ReplayableTrace;

/// Wrap plain per-rank traces (e.g. parsed LANL-Trace raw output) into a
/// dependency-free replayable trace.
pub fn replayable_from_traces(app: &str, mut traces: Vec<Trace>) -> ReplayableTrace {
    traces.sort_by_key(|t| t.meta.rank);
    ReplayableTrace {
        app: app.to_string(),
        sampling: 0.0,
        traces,
        deps: DependencyMap::default(),
    }
}

pub mod prelude {
    pub use crate::fidelity::{capture_span, replay_and_measure, signature_error, FidelityReport};
    pub use crate::preflight::{
        preflight, replay_and_measure_checked, DegradationCause, DegradationReport,
    };
    pub use crate::pseudo::{build_programs, prepare_vfs, ReplayConfig};
    pub use crate::replayable_from_traces;
}
