//! Replay fidelity measurement (paper §3.1 "Trace replay fidelity"):
//! run the pseudo-application, trace it, and compare both the end-to-end
//! time (the paper's `time`-utility test) and the I/O signature (the
//! trace-both-and-compare test) against the original capture.

use iotrace_fs::vfs::Vfs;
use iotrace_ioapi::harness::{run_job, JobReport};
use iotrace_ioapi::tracer::{downcast_tracer, CollectingTracer};
use iotrace_model::event::{CallLayer, IoCall, Trace, TraceRecord};
use iotrace_model::summary::CallSummary;
use iotrace_partrace::replayable::ReplayableTrace;
use iotrace_sim::engine::ClusterConfig;
use iotrace_sim::time::SimDur;

use crate::pseudo::{build_programs, prepare_vfs, ReplayConfig};

/// The measured fidelity of one replay.
#[derive(Clone, Debug)]
pub struct FidelityReport {
    /// Span of the original capture (first op start → last op end).
    pub original_span: SimDur,
    /// End-to-end time of the pseudo-application.
    pub replay_elapsed: SimDur,
    /// `|replay − original| / original` — the paper's headline number
    /// ("as low as 6%").
    pub elapsed_error: f64,
    pub bytes_original: u64,
    pub bytes_replayed: u64,
    /// Σ|count(name)·orig − count(name)·replay| / Σ count(name)·orig over
    /// replayable syscall names.
    pub signature_error: f64,
}

/// Span covered by a set of traces.
pub fn capture_span(traces: &[Trace]) -> SimDur {
    let first = traces
        .iter()
        .flat_map(|t| t.records.first())
        .map(|r| r.ts)
        .min();
    let last = traces
        .iter()
        .flat_map(|t| t.records.iter().map(|r| r.end()))
        .max();
    match (first, last) {
        (Some(f), Some(l)) => l.since(f),
        _ => SimDur::ZERO,
    }
}

fn replayable_sys(records: &[TraceRecord]) -> impl Iterator<Item = &TraceRecord> {
    records
        .iter()
        .filter(|r| r.call.layer() == CallLayer::Sys && !matches!(r.call, IoCall::Mmap { .. }))
}

/// Compare I/O signatures: per-function call counts of the original vs
/// the replayed run.
pub fn signature_error(original: &[Trace], replayed: &[TraceRecord]) -> f64 {
    let mut orig = CallSummary::new();
    for t in original {
        for r in replayable_sys(&t.records) {
            orig.add(r);
        }
    }
    let mut rep = CallSummary::new();
    for r in replayed {
        if r.call.layer() == CallLayer::Sys {
            rep.add(r);
        }
    }
    let total: u64 = orig.total_calls();
    if total == 0 {
        return 0.0;
    }
    // Canonicalize aliases the replayer legitimately substitutes.
    fn canon(n: &str) -> &str {
        match n {
            "SYS_statfs64" => "SYS_stat",
            other => other,
        }
    }
    let names: std::collections::BTreeSet<&str> =
        orig.functions().chain(rep.functions()).map(canon).collect();
    let count_canon = |s: &CallSummary, name: &str| -> u64 {
        s.functions()
            .filter(|f| canon(f) == name)
            .map(|f| s.count(f))
            .sum()
    };
    let mut diff = 0u64;
    for name in names {
        let a = count_canon(&orig, name);
        let b = count_canon(&rep, name);
        diff += a.abs_diff(b);
    }
    diff as f64 / total as f64
}

/// Execute the pseudo-application on a fresh cluster and measure
/// fidelity. The `vfs` should be a clean environment (files the original
/// only read are synthesized by [`prepare_vfs`]).
pub fn replay_and_measure(
    rt: &ReplayableTrace,
    cluster: ClusterConfig,
    mut vfs: Vfs,
    cfg: ReplayConfig,
) -> (FidelityReport, JobReport) {
    prepare_vfs(rt, &mut vfs);
    let programs = build_programs(rt, cfg);
    let report = run_job(
        cluster,
        vfs,
        Box::new(CollectingTracer::default()),
        programs,
        None,
    );
    assert!(
        report.run.is_clean(),
        "pseudo-application deadlocked: {:?}",
        report.run.deadlocked
    );
    let collected: Vec<TraceRecord> = downcast_tracer::<CollectingTracer>(report.tracer.as_ref())
        .map(|c| c.records.clone())
        .unwrap_or_default();

    let original_span = capture_span(&rt.traces);
    let replay_elapsed = report.run.elapsed;
    let o = original_span.as_secs_f64();
    let elapsed_error = if o > 0.0 {
        (replay_elapsed.as_secs_f64() - o).abs() / o
    } else {
        0.0
    };
    let bytes_original: u64 = rt
        .traces
        .iter()
        .flat_map(|t| replayable_sys(&t.records))
        .map(|r| r.call.bytes())
        .sum();
    let bytes_replayed = report.stats.bytes_written + report.stats.bytes_read;
    let sig = signature_error(&rt.traces, &collected);

    (
        FidelityReport {
            original_span,
            replay_elapsed,
            elapsed_error,
            bytes_original,
            bytes_replayed,
            signature_error: sig,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace_model::event::TraceMeta;

    use iotrace_sim::time::SimTime;

    fn rec(ts_us: u64, dur_us: u64, call: IoCall) -> TraceRecord {
        TraceRecord {
            ts: SimTime::from_micros(ts_us),
            dur: SimDur::from_micros(dur_us),
            rank: 0,
            node: 0,
            pid: 1,
            uid: 0,
            gid: 0,
            call,
            result: 0,
        }
    }

    #[test]
    fn span_of_empty_is_zero() {
        assert_eq!(capture_span(&[]), SimDur::ZERO);
    }

    #[test]
    fn span_covers_all_ranks() {
        let mut a = Trace::new(TraceMeta::new("/x", 0, 0, "t"));
        a.records.push(rec(100, 50, IoCall::Close { fd: 3 }));
        let mut b = Trace::new(TraceMeta::new("/x", 1, 1, "t"));
        b.records.push(rec(500, 100, IoCall::Close { fd: 3 }));
        assert_eq!(capture_span(&[a, b]), SimDur::from_micros(500));
    }

    #[test]
    fn identical_signatures_have_zero_error() {
        let mut t = Trace::new(TraceMeta::new("/x", 0, 0, "t"));
        t.records.push(rec(0, 1, IoCall::Write { fd: 3, len: 10 }));
        t.records.push(rec(5, 1, IoCall::Write { fd: 3, len: 10 }));
        let replayed = t.records.clone();
        assert_eq!(signature_error(&[t], &replayed), 0.0);
    }

    #[test]
    fn missing_calls_raise_error() {
        let mut t = Trace::new(TraceMeta::new("/x", 0, 0, "t"));
        t.records.push(rec(0, 1, IoCall::Write { fd: 3, len: 10 }));
        t.records.push(rec(5, 1, IoCall::Read { fd: 3, len: 10 }));
        let replayed = vec![t.records[0].clone()];
        assert_eq!(signature_error(&[t], &replayed), 0.5);
    }
}
