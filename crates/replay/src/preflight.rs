//! Lint pre-flight for replay: refuse to build a pseudo-application from
//! a trace that static analysis already knows will replay wrong.
//!
//! A cyclic dependency map deadlocks [`crate::pseudo`]'s wait loops; a
//! dangling edge silently drops an ordering; non-monotonic timestamps
//! corrupt the think-time reconstruction. Running `iotrace-lint`'s
//! default passes first turns those runtime failures into diagnostics.

use iotrace_fs::vfs::Vfs;
use iotrace_ioapi::harness::JobReport;
use iotrace_lint::{lint_replayable, LintReport};
use iotrace_partrace::replayable::ReplayableTrace;
use iotrace_sim::engine::ClusterConfig;

use crate::fidelity::{replay_and_measure, FidelityReport};
use crate::pseudo::ReplayConfig;

/// Run the default lint passes over a replayable capture.
pub fn preflight(rt: &ReplayableTrace) -> LintReport {
    lint_replayable(rt)
}

/// One concrete cause of degradation in an accepted capture.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradationCause {
    /// The rank affected, or `None` for a world-level cause.
    pub rank: Option<u32>,
    /// Fault-kind slug: `trace-file-loss`, `record-loss`, or `sampling`.
    pub kind: &'static str,
    /// Human-readable evidence for the attribution.
    pub detail: String,
}

impl std::fmt::Display for DegradationCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.rank {
            Some(r) => write!(f, "rank {r}: {} — {}", self.kind, self.detail),
            None => write!(f, "world: {} — {}", self.kind, self.detail),
        }
    }
}

/// Attribution of *why* a capture is degraded: which ranks and which
/// fault kinds, not just a boolean. The preflight gate accepts degraded
/// captures (documented loss downgrades errors to warnings); this report
/// tells the operator what the replay results are a lower bound over.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradationReport {
    pub causes: Vec<DegradationCause>,
}

impl DegradationReport {
    /// Derive the attribution from capture evidence: gaps in the rank
    /// sequence are lost trace files, sub-1.0 completeness is record
    /// loss (tracer overflow, truncated file, or node crash — the
    /// capture can't distinguish them post hoc), and a sub-1.0 sampling
    /// knob is deliberate world-level thinning.
    pub fn of(rt: &ReplayableTrace) -> DegradationReport {
        let mut causes = Vec::new();
        let present: Vec<u32> = rt.traces.iter().map(|t| t.meta.rank).collect();
        if let Some(&max) = present.iter().max() {
            for r in 0..=max {
                if !present.contains(&r) {
                    causes.push(DegradationCause {
                        rank: Some(r),
                        kind: "trace-file-loss",
                        detail: format!(
                            "rank {r} is absent from the capture (its per-rank trace file never \
                             reached collection)"
                        ),
                    });
                }
            }
        }
        for t in &rt.traces {
            if !t.meta.is_complete() {
                causes.push(DegradationCause {
                    rank: Some(t.meta.rank),
                    kind: "record-loss",
                    detail: format!(
                        "rank {} keeps {:.1}% of its records (tracer overflow, truncated file, \
                         or node crash)",
                        t.meta.rank,
                        t.meta.completeness * 100.0
                    ),
                });
            }
        }
        if rt.sampling < 1.0 {
            causes.push(DegradationCause {
                rank: None,
                kind: "sampling",
                detail: format!(
                    "dependency probing sampled {:.1}% of I/O requests; unprobed cross-rank \
                     orderings are absent from the replay",
                    rt.sampling * 100.0
                ),
            });
        }
        DegradationReport { causes }
    }

    pub fn is_degraded(&self) -> bool {
        !self.causes.is_empty()
    }

    /// Ranks with at least one attributed cause, deduplicated, sorted.
    pub fn affected_ranks(&self) -> Vec<u32> {
        let mut ranks: Vec<u32> = self.causes.iter().filter_map(|c| c.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// Multi-line human rendering, one cause per line.
    pub fn render(&self) -> String {
        if self.causes.is_empty() {
            return "capture is complete: no degradation attributed\n".to_string();
        }
        let mut out = format!("capture degradation: {} cause(s)\n", self.causes.len());
        for c in &self.causes {
            out.push_str(&format!("  {c}\n"));
        }
        out
    }
}

/// [`replay_and_measure`] guarded by the lint gate: error-severity
/// findings abort before any simulation runs, returning the report so
/// the caller can render it. An accepted-but-degraded capture carries a
/// [`DegradationReport`] attributing the loss to ranks and fault kinds.
pub fn replay_and_measure_checked(
    rt: &ReplayableTrace,
    cluster: ClusterConfig,
    vfs: Vfs,
    cfg: ReplayConfig,
) -> Result<(FidelityReport, JobReport, DegradationReport), Box<LintReport>> {
    let report = preflight(rt);
    if report.has_errors() {
        return Err(Box::new(report));
    }
    let degradation = DegradationReport::of(rt);
    let (fid, job) = replay_and_measure(rt, cluster, vfs, cfg);
    Ok((fid, job, degradation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace_ioapi::harness::{standard_cluster, standard_vfs};
    use iotrace_model::event::{IoCall, Trace, TraceMeta, TraceRecord};
    use iotrace_partrace::deps::{DependencyEdge, DependencyMap};
    use iotrace_sim::time::{SimDur, SimTime};

    fn tiny_trace(rank: u32) -> Trace {
        let mut t = Trace::new(TraceMeta::new("/app", rank, rank, "test"));
        for i in 0..3u64 {
            t.records.push(TraceRecord {
                ts: SimTime::from_micros(i * 10),
                dur: SimDur::from_micros(1),
                rank,
                node: rank,
                pid: 1,
                uid: 0,
                gid: 0,
                call: IoCall::Fsync { fd: 1 },
                result: 0,
            });
        }
        t
    }

    fn capture(deps: DependencyMap) -> ReplayableTrace {
        ReplayableTrace {
            app: "/app".into(),
            sampling: 1.0,
            traces: vec![tiny_trace(0), tiny_trace(1)],
            deps,
        }
    }

    #[test]
    fn clean_capture_passes_the_gate() {
        let rt = capture(DependencyMap::default());
        let result = replay_and_measure_checked(
            &rt,
            standard_cluster(2, 7),
            standard_vfs(2),
            ReplayConfig::default(),
        );
        assert!(result.is_ok());
    }

    #[test]
    fn degraded_capture_passes_the_gate_with_warnings() {
        // An fd used after close is normally a gate-failing error, but a
        // capture that documents record loss (tracer overflow, truncated
        // file) downgrades it: the close/reopen evidence may sit in the
        // lost records, and refusing to replay every degraded trace would
        // make fault-tolerant capture useless.
        let mut rt = capture(DependencyMap::default());
        let rec = |us: u64, call: IoCall, result: i64| TraceRecord {
            ts: SimTime::from_micros(us),
            dur: SimDur::from_micros(1),
            rank: 0,
            node: 0,
            pid: 1,
            uid: 0,
            gid: 0,
            call,
            result,
        };
        rt.traces[0].records.push(rec(
            40,
            IoCall::Open {
                path: "/f".into(),
                flags: 0,
                mode: 0,
            },
            3,
        ));
        rt.traces[0]
            .records
            .push(rec(50, IoCall::Close { fd: 3 }, 0));
        rt.traces[0]
            .records
            .push(rec(60, IoCall::Read { fd: 3, len: 1 }, 1));
        // Without documented loss: the gate rejects.
        let gate = preflight(&rt);
        assert!(gate.has_errors());
        // With documented loss: warnings only, replay proceeds.
        rt.traces[0].meta.record_loss(5, 6);
        let result = replay_and_measure_checked(
            &rt,
            standard_cluster(2, 7),
            standard_vfs(2),
            ReplayConfig::default(),
        );
        let (_, _, degradation) = result.expect("degraded capture must pass the gate");
        let report = preflight(&rt);
        assert!(report.warning_count() > 0);
        // The acceptance names the cause, not just a boolean: rank 0
        // lost records, and no other rank is implicated.
        assert!(degradation.is_degraded());
        assert_eq!(degradation.affected_ranks(), vec![0]);
        assert!(degradation
            .causes
            .iter()
            .any(|c| c.rank == Some(0) && c.kind == "record-loss"));
    }

    #[test]
    fn degradation_report_attributes_ranks_and_kinds() {
        // Rank 1's file vanished, rank 2 lost records, and the capture
        // sampled half the events: three distinct causes, each named.
        let mut rt = ReplayableTrace {
            app: "/app".into(),
            sampling: 0.5,
            traces: vec![tiny_trace(0), tiny_trace(2)],
            deps: DependencyMap::default(),
        };
        rt.traces[1].meta.record_loss(1, 2);
        let d = DegradationReport::of(&rt);
        assert_eq!(d.causes.len(), 3);
        assert_eq!(d.affected_ranks(), vec![1, 2]);
        assert!(d
            .causes
            .iter()
            .any(|c| c.rank == Some(1) && c.kind == "trace-file-loss"));
        assert!(d
            .causes
            .iter()
            .any(|c| c.rank == Some(2) && c.kind == "record-loss"));
        assert!(d
            .causes
            .iter()
            .any(|c| c.rank.is_none() && c.kind == "sampling"));
        let rendered = d.render();
        assert!(rendered.contains("rank 1: trace-file-loss"));
        assert!(rendered.contains("rank 2: record-loss"));
        assert!(rendered.contains("world: sampling"));
    }

    #[test]
    fn complete_capture_reports_no_degradation() {
        let rt = capture(DependencyMap::default());
        let d = DegradationReport::of(&rt);
        assert!(!d.is_degraded());
        assert!(d.affected_ranks().is_empty());
        assert!(d.render().contains("no degradation"));
    }

    #[test]
    fn cyclic_map_is_rejected_before_replay() {
        let edge = |from_rank: u32, from_op: usize, to_rank: u32, to_op: usize| DependencyEdge {
            from_node: from_rank,
            from_rank,
            from_op,
            to_rank,
            to_op,
            shift: SimDur::from_millis(1),
        };
        let rt = capture(DependencyMap {
            edges: vec![edge(0, 1, 1, 0), edge(1, 1, 0, 0)],
        });
        let report = match replay_and_measure_checked(
            &rt,
            standard_cluster(2, 7),
            standard_vfs(2),
            ReplayConfig::default(),
        ) {
            Err(report) => report,
            Ok(_) => panic!("cycle must not replay"),
        };
        assert!(report.diagnostics.iter().any(|d| d.rule == "dep-cycle"));
    }
}
