//! Lint pre-flight for replay: refuse to build a pseudo-application from
//! a trace that static analysis already knows will replay wrong.
//!
//! A cyclic dependency map deadlocks [`crate::pseudo`]'s wait loops; a
//! dangling edge silently drops an ordering; non-monotonic timestamps
//! corrupt the think-time reconstruction. Running `iotrace-lint`'s
//! default passes first turns those runtime failures into diagnostics.

use iotrace_fs::vfs::Vfs;
use iotrace_ioapi::harness::JobReport;
use iotrace_lint::{lint_replayable, LintReport};
use iotrace_partrace::replayable::ReplayableTrace;
use iotrace_sim::engine::ClusterConfig;

use crate::fidelity::{replay_and_measure, FidelityReport};
use crate::pseudo::ReplayConfig;

/// Run the default lint passes over a replayable capture.
pub fn preflight(rt: &ReplayableTrace) -> LintReport {
    lint_replayable(rt)
}

/// [`replay_and_measure`] guarded by the lint gate: error-severity
/// findings abort before any simulation runs, returning the report so
/// the caller can render it.
pub fn replay_and_measure_checked(
    rt: &ReplayableTrace,
    cluster: ClusterConfig,
    vfs: Vfs,
    cfg: ReplayConfig,
) -> Result<(FidelityReport, JobReport), Box<LintReport>> {
    let report = preflight(rt);
    if report.has_errors() {
        return Err(Box::new(report));
    }
    Ok(replay_and_measure(rt, cluster, vfs, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace_ioapi::harness::{standard_cluster, standard_vfs};
    use iotrace_model::event::{IoCall, Trace, TraceMeta, TraceRecord};
    use iotrace_partrace::deps::{DependencyEdge, DependencyMap};
    use iotrace_sim::time::{SimDur, SimTime};

    fn tiny_trace(rank: u32) -> Trace {
        let mut t = Trace::new(TraceMeta::new("/app", rank, rank, "test"));
        for i in 0..3u64 {
            t.records.push(TraceRecord {
                ts: SimTime::from_micros(i * 10),
                dur: SimDur::from_micros(1),
                rank,
                node: rank,
                pid: 1,
                uid: 0,
                gid: 0,
                call: IoCall::Fsync { fd: 1 },
                result: 0,
            });
        }
        t
    }

    fn capture(deps: DependencyMap) -> ReplayableTrace {
        ReplayableTrace {
            app: "/app".into(),
            sampling: 1.0,
            traces: vec![tiny_trace(0), tiny_trace(1)],
            deps,
        }
    }

    #[test]
    fn clean_capture_passes_the_gate() {
        let rt = capture(DependencyMap::default());
        let result = replay_and_measure_checked(
            &rt,
            standard_cluster(2, 7),
            standard_vfs(2),
            ReplayConfig::default(),
        );
        assert!(result.is_ok());
    }

    #[test]
    fn degraded_capture_passes_the_gate_with_warnings() {
        // An fd used after close is normally a gate-failing error, but a
        // capture that documents record loss (tracer overflow, truncated
        // file) downgrades it: the close/reopen evidence may sit in the
        // lost records, and refusing to replay every degraded trace would
        // make fault-tolerant capture useless.
        let mut rt = capture(DependencyMap::default());
        let rec = |us: u64, call: IoCall, result: i64| TraceRecord {
            ts: SimTime::from_micros(us),
            dur: SimDur::from_micros(1),
            rank: 0,
            node: 0,
            pid: 1,
            uid: 0,
            gid: 0,
            call,
            result,
        };
        rt.traces[0].records.push(rec(
            40,
            IoCall::Open {
                path: "/f".into(),
                flags: 0,
                mode: 0,
            },
            3,
        ));
        rt.traces[0]
            .records
            .push(rec(50, IoCall::Close { fd: 3 }, 0));
        rt.traces[0]
            .records
            .push(rec(60, IoCall::Read { fd: 3, len: 1 }, 1));
        // Without documented loss: the gate rejects.
        let gate = preflight(&rt);
        assert!(gate.has_errors());
        // With documented loss: warnings only, replay proceeds.
        rt.traces[0].meta.record_loss(5, 6);
        let result = replay_and_measure_checked(
            &rt,
            standard_cluster(2, 7),
            standard_vfs(2),
            ReplayConfig::default(),
        );
        assert!(result.is_ok(), "degraded capture must pass the gate");
        let report = preflight(&rt);
        assert!(report.warning_count() > 0);
    }

    #[test]
    fn cyclic_map_is_rejected_before_replay() {
        let edge = |from_rank: u32, from_op: usize, to_rank: u32, to_op: usize| DependencyEdge {
            from_node: from_rank,
            from_rank,
            from_op,
            to_rank,
            to_op,
            shift: SimDur::from_millis(1),
        };
        let rt = capture(DependencyMap {
            edges: vec![edge(0, 1, 1, 0), edge(1, 1, 0, 0)],
        });
        let report = match replay_and_measure_checked(
            &rt,
            standard_cluster(2, 7),
            standard_vfs(2),
            ReplayConfig::default(),
        ) {
            Err(report) => report,
            Ok(_) => panic!("cycle must not replay"),
        };
        assert!(report.diagnostics.iter().any(|d| d.rule == "dep-cycle"));
    }
}
