//! End-to-end replay: capture with //TRACE, generate the
//! pseudo-application, run it, and measure fidelity — with and without
//! the dependency map (the sampling trade-off of paper §4.3).

use iotrace_ioapi::prelude::*;
use iotrace_partrace::prelude::*;
use iotrace_replay::prelude::*;
use iotrace_sim::prelude::*;
use iotrace_workloads::prelude::*;

type Env = (
    ClusterConfig,
    iotrace_fs::vfs::Vfs,
    Vec<Box<dyn RankProgram<IoOp, IoRes>>>,
);

fn pipeline_mk(world: u32) -> impl Fn() -> Env {
    move || {
        let w = ProducerConsumer::new(world);
        let cluster = standard_cluster(world as usize, 31);
        let mut vfs = standard_vfs(world as usize);
        vfs.setup_dir(&w.dir).unwrap();
        (cluster, vfs, w.programs())
    }
}

fn fresh_env(world: u32) -> (ClusterConfig, iotrace_fs::vfs::Vfs) {
    let mut vfs = standard_vfs(world as usize);
    vfs.setup_dir("/pfs/pipeline").unwrap();
    (standard_cluster(world as usize, 31), vfs)
}

#[test]
fn replay_reproduces_io_signature() {
    let cap = Partrace::new(PartraceConfig::default()).capture(pipeline_mk(4), "/pipeline.exe");
    let (cluster, vfs) = fresh_env(4);
    let (fid, _rep) = replay_and_measure(&cap.replayable, cluster, vfs, ReplayConfig::default());
    assert!(
        fid.signature_error < 0.02,
        "signature error too high: {}",
        fid.signature_error
    );
    assert!(fid.bytes_replayed > 0);
}

#[test]
fn full_sampling_replay_is_timing_accurate() {
    let cap = Partrace::new(PartraceConfig::default()).capture(pipeline_mk(4), "/pipeline.exe");
    let (cluster, vfs) = fresh_env(4);
    let (fid, _rep) = replay_and_measure(&cap.replayable, cluster, vfs, ReplayConfig::default());
    assert!(
        fid.elapsed_error < 0.15,
        "elapsed error with full deps: {:.3} (orig {} replay {})",
        fid.elapsed_error,
        fid.original_span,
        fid.replay_elapsed
    );
}

/// A replay environment whose parallel file system is markedly slower
/// than the capture environment (replays are routinely run on other
/// testbeds — exactly when causal replay beats gap-preserving replay).
fn slower_env(world: u32) -> (ClusterConfig, iotrace_fs::vfs::Vfs) {
    use iotrace_fs::prelude::*;
    let mut params = StripedParams::lanl_2007();
    params.server.bandwidth_bps /= 4.0;
    params.client_op_overhead = params.client_op_overhead * 4;
    let mut vfs = Vfs::new(world as usize);
    vfs.mount_shared("/pfs", striped_fs("panfs-slow", params))
        .unwrap();
    vfs.mount_per_node("/tmp", |i| {
        local_fs("ext3", LocalParams::lanl_2007(), i as u64)
    })
    .unwrap();
    vfs.setup_dir("/pfs/pipeline").unwrap();
    (standard_cluster(world as usize, 31), vfs)
}

#[test]
fn missing_dependencies_degrade_fidelity_on_changed_storage() {
    let cap = Partrace::new(PartraceConfig::default()).capture(pipeline_mk(4), "/pipeline.exe");

    // Replay on 4x-slower storage. With causal edges the consumers wait
    // for the (now slower) producer; with gap-preserving compute they
    // charge ahead and the I/O overlaps wrongly.
    let (cluster, vfs) = slower_env(4);
    let (with_deps, with_rep) =
        replay_and_measure(&cap.replayable, cluster, vfs, ReplayConfig::default());

    let (cluster, vfs) = slower_env(4);
    let cfg = ReplayConfig {
        respect_deps: false,
        ..Default::default()
    };
    let (without, without_rep) = replay_and_measure(&cap.replayable, cluster, vfs, cfg);

    // Causal replay stretches with the storage; gap-preserving replay
    // finishes unrealistically early relative to it.
    assert!(
        with_rep.run.elapsed > without_rep.run.elapsed,
        "causal replay should adapt to slower storage: with {} vs without {}",
        with_rep.run.elapsed,
        without_rep.run.elapsed
    );
    let _ = (with_deps, without);
}

#[test]
fn lanl_raw_traces_are_replayable_too() {
    // The paper: "it is trivial to imagine a replayer being built that
    // reads and replays the raw trace files." Parse LANL-Trace output and
    // replay it.
    use iotrace_lanl::prelude::*;
    let w = MpiIoTest::new(AccessPattern::NTo1Strided, 3, 128 * 1024, 4);
    let mut vfs = standard_vfs(3);
    vfs.setup_dir(&w.dir).unwrap();
    let run = LanlTrace::ltrace().run(standard_cluster(3, 5), vfs, w.programs(), &w.cmdline());
    // Parse the on-disk raw traces back (true round trip through text).
    let mut traces = Vec::new();
    for (rank, path) in &run.raw_paths {
        traces.push(parse_raw_trace(&run.report.vfs, *rank, path).unwrap());
    }
    let rt = replayable_from_traces(&w.cmdline(), traces);
    let mut vfs = standard_vfs(3);
    vfs.setup_dir(&w.dir).unwrap();
    let (fid, rep) = replay_and_measure(&rt, standard_cluster(3, 5), vfs, ReplayConfig::default());
    assert!(rep.run.is_clean());
    // The replay re-issues the same number of write syscalls.
    assert!(
        fid.signature_error < 0.05,
        "signature error: {}",
        fid.signature_error
    );
    // Bytes written match the workload.
    assert_eq!(rep.stats.bytes_written, w.total_bytes());
}

#[test]
fn replay_of_independent_workload_is_accurate_without_deps() {
    // mpi_io_test has no cross-node data dependencies: replay accuracy
    // should not depend on sampling at all.
    let mk = || {
        let w = MpiIoTest::new(AccessPattern::NToN, 3, 256 * 1024, 4);
        let cluster = standard_cluster(3, 7);
        let mut vfs = standard_vfs(3);
        vfs.setup_dir(&w.dir).unwrap();
        (cluster, vfs, w.programs())
    };
    let cap = Partrace::new(PartraceConfig::with_sampling(0.0)).capture(mk, "/mpi_io_test.exe");
    let mut vfs = standard_vfs(3);
    vfs.setup_dir("/pfs/mpi_io_test").unwrap();
    let (fid, _rep) = replay_and_measure(
        &cap.replayable,
        standard_cluster(3, 7),
        vfs,
        ReplayConfig::default(),
    );
    assert!(
        fid.elapsed_error < 0.15,
        "independent workload should replay accurately: {:.3}",
        fid.elapsed_error
    );
}
