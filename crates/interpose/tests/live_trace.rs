//! Live interposition test: preload the shim onto a real process and
//! verify the captured I/O.

use std::path::PathBuf;
use std::process::Command;

use iotrace_interpose::reader::{counts, parse};

fn shim_path() -> PathBuf {
    // target/{profile}/libiotrace_interpose.so, two levels above this
    // crate's manifest. `cargo test` does not always produce the cdylib
    // artifact, so build it on demand.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop();
    root.pop();
    for profile in ["debug", "release"] {
        let p = root
            .join("target")
            .join(profile)
            .join("libiotrace_interpose.so");
        if p.exists() {
            return p;
        }
    }
    let status = Command::new(env!("CARGO"))
        .args(["build", "-p", "iotrace-interpose", "--quiet"])
        .current_dir(&root)
        .status()
        .expect("spawn cargo build");
    assert!(status.success(), "building the cdylib failed");
    root.join("target")
        .join("debug")
        .join("libiotrace_interpose.so")
}

#[test]
fn traces_a_real_cat_process() {
    let shim = shim_path();
    assert!(
        shim.exists(),
        "cdylib not built at {shim:?} — run `cargo build -p iotrace-interpose` first"
    );
    let trace_file = std::env::temp_dir().join(format!("iotrace_live_{}.log", std::process::id()));
    let _ = std::fs::remove_file(&trace_file);

    let out = Command::new("/bin/cat")
        .arg("/etc/hostname")
        .env("LD_PRELOAD", &shim)
        .env("IOTRACE_TRACE_FILE", &trace_file)
        .output()
        .expect("spawn /bin/cat");
    assert!(out.status.success(), "cat failed: {out:?}");

    let raw = std::fs::read_to_string(&trace_file).expect("trace file written");
    let records = parse(&raw);
    assert!(!records.is_empty(), "no records captured:\n{raw}");

    // cat must have opened the file, read it, written it out, closed it.
    let c = counts(&records);
    assert!(
        c.get("open").copied().unwrap_or(0) + c.get("openat").copied().unwrap_or(0) >= 1,
        "no open captured: {c:?}"
    );
    assert!(c.get("read").copied().unwrap_or(0) >= 1, "no read: {c:?}");
    assert!(c.get("write").copied().unwrap_or(0) >= 1, "no write: {c:?}");
    assert!(c.get("close").copied().unwrap_or(0) >= 1, "no close: {c:?}");

    // The opened path is visible (taxonomy: passive capture of paths).
    assert!(
        records
            .iter()
            .any(|r| (r.op == "open" || r.op == "openat") && r.path.ends_with("/etc/hostname")),
        "path not captured: {records:?}"
    );

    // Byte accounting is consistent: what cat read it wrote.
    let read_bytes: i64 = records
        .iter()
        .filter(|r| r.op == "read" && r.ret > 0)
        .map(|r| r.ret)
        .sum();
    let written: i64 = records
        .iter()
        .filter(|r| r.op == "write" && r.ret > 0)
        .map(|r| r.ret)
        .sum();
    assert_eq!(read_bytes, written, "cat copies its input verbatim");

    let _ = std::fs::remove_file(&trace_file);
}

#[test]
fn untraced_process_is_unaffected() {
    // Without IOTRACE_TRACE_FILE the shim stays silent and transparent.
    let shim = shim_path();
    let out = Command::new("/bin/cat")
        .arg("/etc/hostname")
        .env("LD_PRELOAD", &shim)
        .env_remove("IOTRACE_TRACE_FILE")
        .output()
        .expect("spawn /bin/cat");
    assert!(out.status.success());
    assert!(!out.stdout.is_empty());
}
