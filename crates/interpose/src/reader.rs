//! Parser for the interposition shim's output lines
//! (`open "<path>" <flags> = <fd>`, `read <fd> <count> = <ret>`, …).

use std::collections::BTreeMap;

/// One parsed interposition record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LiveRecord {
    pub op: String,
    /// Path for open/openat; empty otherwise.
    pub path: String,
    /// First numeric argument (fd or flags).
    pub arg: i64,
    /// Return value.
    pub ret: i64,
}

/// Parse the shim's whole output; unparseable lines are skipped (a traced
/// process may interleave its own stdout).
pub fn parse(output: &str) -> Vec<LiveRecord> {
    let mut out = Vec::new();
    for line in output.lines() {
        let Some((lhs, ret)) = line.rsplit_once(" = ") else {
            continue;
        };
        let Ok(ret) = ret.trim().parse::<i64>() else {
            continue;
        };
        let mut parts = lhs.split_whitespace();
        let Some(op) = parts.next() else { continue };
        let (path, arg) = if op == "open" || op == "openat" {
            let rest = lhs[op.len()..].trim();
            let Some(path_end) = rest.rfind('"') else {
                continue;
            };
            if !rest.starts_with('"') || path_end == 0 {
                continue;
            }
            let path = rest[1..path_end].to_string();
            let arg = rest[path_end + 1..]
                .split_whitespace()
                .next()
                .and_then(parse_int)
                .unwrap_or(0);
            (path, arg)
        } else {
            let arg = parts.next().and_then(parse_int).unwrap_or(0);
            (String::new(), arg)
        };
        out.push(LiveRecord {
            op: op.to_string(),
            path,
            arg,
            ret,
        });
    }
    out
}

fn parse_int(s: &str) -> Option<i64> {
    if let Some(oct) = s.strip_prefix("0o") {
        i64::from_str_radix(oct, 8).ok()
    } else {
        s.parse().ok()
    }
}

/// Per-op call counts.
pub fn counts(records: &[LiveRecord]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for r in records {
        *m.entry(r.op.clone()).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shim_lines() {
        let out = "open \"/etc/hosts\" 0o0 = 3\nread 3 4096 = 120\nwrite 1 120 = 120\nclose 3 = 0\nnoise line\n";
        let recs = parse(out);
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].op, "open");
        assert_eq!(recs[0].path, "/etc/hosts");
        assert_eq!(recs[0].ret, 3);
        assert_eq!(recs[1].arg, 3);
        assert_eq!(recs[1].ret, 120);
        let c = counts(&recs);
        assert_eq!(c["open"], 1);
        assert_eq!(c["read"], 1);
    }

    #[test]
    fn paths_with_spaces_survive() {
        let recs = parse("openat \"/tmp/a b c\" 0o400 = 5\n");
        assert_eq!(recs[0].path, "/tmp/a b c");
        assert_eq!(recs[0].arg, 0o400);
    }

    #[test]
    fn garbage_is_skipped() {
        assert!(parse("random\nopen missing quote 0 = x\n").is_empty());
    }
}
