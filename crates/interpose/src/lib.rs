//! # iotrace-interpose — a real `LD_PRELOAD` I/O interposition shim
//!
//! Everything else in this workspace runs against a simulated cluster;
//! this crate is the one real-world component: a `cdylib` that, preloaded
//! into any dynamically linked process, interposes the libc I/O entry
//! points (`open`, `openat`, `read`, `write`, `close`, `lseek`, `fsync`)
//! and appends one line per call to the file named by the
//! `IOTRACE_TRACE_FILE` environment variable.
//!
//! This is the exact mechanism //TRACE uses ("dynamic library
//! interposition", Curry '94, paper §2.3/§4.3) and demonstrates its
//! taxonomy profile end-to-end on live processes: passive (no
//! instrumentation of the target), human-readable output, all I/O system
//! calls captured, no granularity control — and the same blind spot: it
//! cannot see memory-mapped I/O.
//!
//! Build products: the `cdylib` (`libiotrace_interpose.so`) for
//! preloading, plus this `rlib` with [`reader`] for parsing the output.
//!
//! ```text
//! IOTRACE_TRACE_FILE=/tmp/t.log LD_PRELOAD=target/debug/libiotrace_interpose.so cat /etc/hostname
//! ```

pub mod reader;

#[cfg(unix)]
mod hooks {
    use core::ffi::{c_char, c_int, c_long, c_void};
    use std::sync::atomic::{AtomicI32, AtomicPtr, Ordering};

    /// glibc's `RTLD_NEXT` pseudo-handle.
    const RTLD_NEXT: *mut c_void = -1isize as *mut c_void;

    extern "C" {
        fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
        fn getenv(name: *const c_char) -> *mut c_char;
    }

    macro_rules! real {
        ($cache:ident, $name:literal, $sig:ty) => {{
            static $cache: AtomicPtr<c_void> = AtomicPtr::new(std::ptr::null_mut());
            let mut p = $cache.load(Ordering::Relaxed);
            if p.is_null() {
                // SAFETY: dlsym with a NUL-terminated literal.
                p = unsafe { dlsym(RTLD_NEXT, concat!($name, "\0").as_ptr() as *const c_char) };
                $cache.store(p, Ordering::Relaxed);
            }
            // SAFETY: the symbol, if found, has the declared signature.
            unsafe { std::mem::transmute::<*mut c_void, $sig>(p) }
        }};
    }

    /// Trace output fd; 0 = uninitialized, -1 = disabled.
    static TRACE_FD: AtomicI32 = AtomicI32::new(0);
    // Re-entrancy guard (our own writes must not be traced).
    thread_local! {
        static IN_HOOK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }

    fn real_open() -> unsafe extern "C" fn(*const c_char, c_int, c_int) -> c_int {
        real!(
            OPEN,
            "open",
            unsafe extern "C" fn(*const c_char, c_int, c_int) -> c_int
        )
    }
    fn real_write() -> unsafe extern "C" fn(c_int, *const c_void, usize) -> isize {
        real!(
            WRITE,
            "write",
            unsafe extern "C" fn(c_int, *const c_void, usize) -> isize
        )
    }

    fn trace_fd() -> c_int {
        let fd = TRACE_FD.load(Ordering::Relaxed);
        if fd != 0 {
            return fd;
        }
        // SAFETY: getenv with NUL-terminated literal; result checked.
        let path = unsafe { getenv(c"IOTRACE_TRACE_FILE".as_ptr()) };
        let new_fd = if path.is_null() {
            -1
        } else {
            // O_WRONLY|O_CREAT|O_APPEND = 1 | 0o100 | 0o2000
            let f = unsafe { (real_open())(path, 0o2101, 0o600) };
            if f < 0 {
                -1
            } else {
                f
            }
        };
        TRACE_FD.store(new_fd, Ordering::Relaxed);
        new_fd
    }

    fn emit(line: &str) {
        let fd = trace_fd();
        if fd < 0 {
            return;
        }
        // SAFETY: valid buffer/len; short tracing lines, best-effort.
        unsafe {
            let _ = (real_write())(fd, line.as_bytes().as_ptr() as *const c_void, line.len());
        }
    }

    /// Run `f` outside of tracing (guards recursion through allocation
    /// or our own emit path).
    fn guarded<R>(f: impl FnOnce() -> R, fallback: impl FnOnce() -> R) -> R {
        IN_HOOK.with(|g| {
            if g.get() {
                return fallback();
            }
            g.set(true);
            let r = f();
            g.set(false);
            r
        })
    }

    fn cstr_lossy(p: *const c_char) -> String {
        if p.is_null() {
            return "<null>".into();
        }
        // SAFETY: caller passed a NUL-terminated C string.
        unsafe { std::ffi::CStr::from_ptr(p) }
            .to_string_lossy()
            .into_owned()
    }

    // ---- interposed entry points ----

    /// # Safety
    /// Standard libc `open` contract.
    #[no_mangle]
    pub unsafe extern "C" fn open(path: *const c_char, flags: c_int, mode: c_int) -> c_int {
        let ret = (real_open())(path, flags, mode);
        guarded(
            || {
                emit(&format!(
                    "open \"{}\" {:#o} = {}\n",
                    cstr_lossy(path),
                    flags,
                    ret
                ))
            },
            || (),
        );
        ret
    }

    /// # Safety
    /// Standard libc `open64` contract.
    #[no_mangle]
    pub unsafe extern "C" fn open64(path: *const c_char, flags: c_int, mode: c_int) -> c_int {
        let real = real!(
            OPEN64,
            "open64",
            unsafe extern "C" fn(*const c_char, c_int, c_int) -> c_int
        );
        let ret = real(path, flags, mode);
        guarded(
            || {
                emit(&format!(
                    "open \"{}\" {:#o} = {}\n",
                    cstr_lossy(path),
                    flags,
                    ret
                ))
            },
            || (),
        );
        ret
    }

    /// # Safety
    /// Standard libc `openat` contract.
    #[no_mangle]
    pub unsafe extern "C" fn openat(
        dirfd: c_int,
        path: *const c_char,
        flags: c_int,
        mode: c_int,
    ) -> c_int {
        let real = real!(
            OPENAT,
            "openat",
            unsafe extern "C" fn(c_int, *const c_char, c_int, c_int) -> c_int
        );
        let ret = real(dirfd, path, flags, mode);
        guarded(
            || {
                emit(&format!(
                    "openat \"{}\" {:#o} = {}\n",
                    cstr_lossy(path),
                    flags,
                    ret
                ))
            },
            || (),
        );
        ret
    }

    /// # Safety
    /// Standard libc `read` contract.
    #[no_mangle]
    pub unsafe extern "C" fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize {
        let real = real!(
            READ,
            "read",
            unsafe extern "C" fn(c_int, *mut c_void, usize) -> isize
        );
        let ret = real(fd, buf, count);
        guarded(|| emit(&format!("read {fd} {count} = {ret}\n")), || ());
        ret
    }

    /// # Safety
    /// Standard libc `write` contract.
    #[no_mangle]
    pub unsafe extern "C" fn write(fd: c_int, buf: *const c_void, count: usize) -> isize {
        let ret = (real_write())(fd, buf, count);
        guarded(|| emit(&format!("write {fd} {count} = {ret}\n")), || ());
        ret
    }

    /// # Safety
    /// Standard libc `close` contract.
    #[no_mangle]
    pub unsafe extern "C" fn close(fd: c_int) -> c_int {
        // Never close our own trace fd out from under ourselves.
        if fd == TRACE_FD.load(Ordering::Relaxed) {
            return 0;
        }
        let real = real!(CLOSE, "close", unsafe extern "C" fn(c_int) -> c_int);
        let ret = real(fd);
        guarded(|| emit(&format!("close {fd} = {ret}\n")), || ());
        ret
    }

    /// # Safety
    /// Standard libc `lseek` contract.
    #[no_mangle]
    pub unsafe extern "C" fn lseek(fd: c_int, offset: c_long, whence: c_int) -> c_long {
        let real = real!(
            LSEEK,
            "lseek",
            unsafe extern "C" fn(c_int, c_long, c_int) -> c_long
        );
        let ret = real(fd, offset, whence);
        guarded(
            || emit(&format!("lseek {fd} {offset} {whence} = {ret}\n")),
            || (),
        );
        ret
    }

    /// # Safety
    /// Standard libc `fsync` contract.
    #[no_mangle]
    pub unsafe extern "C" fn fsync(fd: c_int) -> c_int {
        let real = real!(FSYNC, "fsync", unsafe extern "C" fn(c_int) -> c_int);
        let ret = real(fd);
        guarded(|| emit(&format!("fsync {fd} = {ret}\n")), || ());
        ret
    }
}
