//! # iotrace-fs — simulated storage substrate
//!
//! Everything the paper's evaluation hardware provided, rebuilt as
//! deterministic models: a striped RAID-5 parallel file system (the
//! 252-drive, 64 KiB-stripe array of §4.1.2), node-local ext3-like disks
//! with a write-back cache, an NFS-like single-server FS, and a
//! cluster-wide [`vfs::Vfs`] mount table supporting the *stackable* layers
//! Tracefs needs.
//!
//! Cost realism lives in [`cost`]: per-server FCFS queues make contention,
//! stripe alignment and RAID-5 read-modify-write penalties emerge from
//! workload behaviour rather than being asserted.
//!
//! ```
//! use iotrace_fs::prelude::*;
//! use iotrace_sim::prelude::*;
//!
//! let mut vfs = Vfs::new(4);
//! vfs.mount_shared("/pfs", striped_fs("panfs", StripedParams::lanl_2007())).unwrap();
//! let (vn, t) = vfs.open(NodeId(0), "/pfs/out", OpenFlags::WRONLY | OpenFlags::CREAT,
//!                        FileMeta::default(), SimTime::ZERO).unwrap();
//! let rep = vfs.write(NodeId(0), vn, 0, &WritePayload::Synthetic(1 << 20), t).unwrap();
//! assert_eq!(rep.bytes, 1 << 20);
//! assert!(rep.finish > t); // the write took simulated time
//! ```

pub mod cost;
pub mod data;
pub mod error;
pub mod fs;
pub mod inode;
pub mod params;
pub mod path;
pub mod vfs;

pub mod prelude {
    pub use crate::cost::{CostModel, DataDir, FsKind, ServiceQueue};
    pub use crate::data::{SparseData, WritePayload};
    pub use crate::error::{FsError, FsResult};
    pub use crate::fs::{
        local_fs, mem_fs, nfs_fs, striped_fs, FileSystem, IoReply, ModeledFs, OpenFlags,
    };
    pub use crate::inode::{FileMeta, FileStat, InodeId, InodeKind, Namespace, ROOT_INODE};
    pub use crate::params::{DiskParams, LocalParams, NfsParams, StripedParams};
    pub use crate::vfs::{Vfs, VnodeId};
}
