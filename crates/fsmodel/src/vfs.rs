//! The cluster-wide VFS: a mount table mapping path prefixes to file
//! systems. Mounts are either *shared* (one instance visible from every
//! node — NFS, the parallel FS) or *per-node* (each node sees its own
//! instance — `/tmp`, local scratch). Stackable layers (Tracefs) are
//! installed by swapping a mount's backend for a wrapper; see
//! [`Vfs::take_shared`]/[`Vfs::put_shared`].

use iotrace_sim::ids::NodeId;
use iotrace_sim::time::SimTime;

use crate::cost::FsKind;
use crate::data::WritePayload;
use crate::error::{FsError, FsResult};
use crate::fs::{FileSystem, IoReply, OpenFlags};
use crate::inode::{FileMeta, FileStat, InodeId};
use crate::path;

/// A VFS-level file handle: which mount, which inode within it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VnodeId {
    pub mount: u16,
    pub ino: InodeId,
}

enum MountBackend {
    Shared(Box<dyn FileSystem>),
    PerNode(Vec<Box<dyn FileSystem>>),
}

struct Mount {
    prefix: String,
    backend: MountBackend,
}

/// The cluster's mount table.
pub struct Vfs {
    mounts: Vec<Mount>,
    nodes: usize,
}

impl Vfs {
    /// A VFS for `nodes` nodes with an in-memory root mount at `/`.
    pub fn new(nodes: usize) -> Self {
        Vfs {
            mounts: vec![Mount {
                prefix: "/".to_string(),
                backend: MountBackend::Shared(crate::fs::mem_fs("rootfs")),
            }],
            nodes: nodes.max(1),
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Mount a shared file system at `prefix` (normalized).
    pub fn mount_shared(&mut self, prefix: &str, fs: Box<dyn FileSystem>) -> FsResult<u16> {
        self.mount(prefix, MountBackend::Shared(fs))
    }

    /// Mount one instance per node at `prefix`; `make` is called once per
    /// node index.
    pub fn mount_per_node(
        &mut self,
        prefix: &str,
        mut make: impl FnMut(usize) -> Box<dyn FileSystem>,
    ) -> FsResult<u16> {
        let instances = (0..self.nodes).map(&mut make).collect();
        self.mount(prefix, MountBackend::PerNode(instances))
    }

    fn mount(&mut self, prefix: &str, backend: MountBackend) -> FsResult<u16> {
        let prefix = path::normalize(prefix);
        if self.mounts.iter().any(|m| m.prefix == prefix) {
            return Err(FsError::AlreadyExists(prefix));
        }
        self.mounts.push(Mount { prefix, backend });
        Ok((self.mounts.len() - 1) as u16)
    }

    /// Longest-prefix match: returns `(mount index, path within mount)`.
    pub fn resolve_mount<'p>(&self, p: &'p str) -> FsResult<(u16, &'p str)> {
        let mut best: Option<(u16, &str)> = None;
        for (i, m) in self.mounts.iter().enumerate() {
            if let Some(rest) = path::strip_prefix(p, &m.prefix) {
                match best {
                    Some((bi, _)) if self.mounts[bi as usize].prefix.len() >= m.prefix.len() => {}
                    _ => best = Some((i as u16, rest)),
                }
            }
        }
        best.ok_or_else(|| FsError::NotFound(p.to_string()))
    }

    fn backend(&mut self, mount: u16, node: NodeId) -> FsResult<&mut dyn FileSystem> {
        let m = self
            .mounts
            .get_mut(mount as usize)
            .ok_or(FsError::BadHandle(mount as u64))?;
        Ok(match &mut m.backend {
            MountBackend::Shared(fs) => fs.as_mut(),
            MountBackend::PerNode(v) => v
                .get_mut(node.index())
                .ok_or(FsError::BadHandle(node.0 as u64))?
                .as_mut(),
        })
    }

    /// Mutable access to a mount's backend as seen from `node`
    /// (uncharged; fixture setup and trace harvesting).
    pub fn backend_mut(&mut self, mount: u16, node: NodeId) -> FsResult<&mut dyn FileSystem> {
        self.backend(mount, node)
    }

    /// Immutable access to a mount's backend as seen from `node`.
    pub fn backend_ref(&self, mount: u16, node: NodeId) -> FsResult<&dyn FileSystem> {
        let m = self
            .mounts
            .get(mount as usize)
            .ok_or(FsError::BadHandle(mount as u64))?;
        Ok(match &m.backend {
            MountBackend::Shared(fs) => fs.as_ref(),
            MountBackend::PerNode(v) => v
                .get(node.index())
                .ok_or(FsError::BadHandle(node.0 as u64))?
                .as_ref(),
        })
    }

    /// Find the mount index for a mounted prefix.
    pub fn mount_index(&self, prefix: &str) -> FsResult<u16> {
        let prefix = path::normalize(prefix);
        self.mounts
            .iter()
            .position(|m| m.prefix == prefix)
            .map(|i| i as u16)
            .ok_or(FsError::NotFound(prefix))
    }

    /// Remove and return a shared mount's backend (for stacking). The
    /// mount entry remains; re-install with [`Vfs::put_shared`].
    pub fn take_shared(&mut self, prefix: &str) -> FsResult<Box<dyn FileSystem>> {
        let idx = self.mount_index(prefix)? as usize;
        match std::mem::replace(
            &mut self.mounts[idx].backend,
            MountBackend::Shared(crate::fs::mem_fs("detached")),
        ) {
            MountBackend::Shared(fs) => Ok(fs),
            per_node => {
                self.mounts[idx].backend = per_node;
                Err(FsError::Unsupported("take_shared on per-node mount"))
            }
        }
    }

    pub fn put_shared(&mut self, prefix: &str, fs: Box<dyn FileSystem>) -> FsResult<()> {
        let idx = self.mount_index(prefix)? as usize;
        self.mounts[idx].backend = MountBackend::Shared(fs);
        Ok(())
    }

    /// Wrap every backend of a mount in a stackable layer (shared mounts
    /// wrap their one instance; per-node mounts wrap each node's).
    /// `check` is applied to every backend *before* any wrapping, so a
    /// rejected stack (incompatible lower FS, missing privileges) leaves
    /// the mount table untouched.
    pub fn stack(
        &mut self,
        prefix: &str,
        check: impl Fn(&dyn FileSystem) -> FsResult<()>,
        mut wrap: impl FnMut(Box<dyn FileSystem>) -> Box<dyn FileSystem>,
    ) -> FsResult<()> {
        let idx = self.mount_index(prefix)? as usize;
        match &self.mounts[idx].backend {
            MountBackend::Shared(fs) => check(fs.as_ref())?,
            MountBackend::PerNode(v) => {
                for fs in v {
                    check(fs.as_ref())?;
                }
            }
        }
        match &mut self.mounts[idx].backend {
            MountBackend::Shared(fs) => {
                let lower = std::mem::replace(fs, crate::fs::mem_fs("detached"));
                *fs = wrap(lower);
            }
            MountBackend::PerNode(v) => {
                for slot in v.iter_mut() {
                    let lower = std::mem::replace(slot, crate::fs::mem_fs("detached"));
                    *slot = wrap(lower);
                }
            }
        }
        Ok(())
    }

    /// Undo [`Vfs::stack`]: replace every backend with its wrapped lower
    /// file system.
    pub fn unstack(&mut self, prefix: &str) -> FsResult<()> {
        let idx = self.mount_index(prefix)? as usize;
        match &mut self.mounts[idx].backend {
            MountBackend::Shared(fs) => {
                let layer = std::mem::replace(fs, crate::fs::mem_fs("detached"));
                *fs = layer.unwrap_lower();
            }
            MountBackend::PerNode(v) => {
                for slot in v.iter_mut() {
                    let layer = std::mem::replace(slot, crate::fs::mem_fs("detached"));
                    *slot = layer.unwrap_lower();
                }
            }
        }
        Ok(())
    }

    /// Apply fault-injection degradation windows to every mounted
    /// backend. Backends without degradable structure (mem, local, NFS)
    /// ignore the call; the striped parallel FS picks up the windows
    /// matching its server indices.
    pub fn degrade_storage(
        &mut self,
        windows: &[iotrace_sim::fault::DegradedWindow],
        policy: crate::params::RetryPolicy,
    ) {
        for m in &mut self.mounts {
            match &mut m.backend {
                MountBackend::Shared(fs) => fs.degrade_storage(windows, policy),
                MountBackend::PerNode(v) => {
                    for fs in v {
                        fs.degrade_storage(windows, policy);
                    }
                }
            }
        }
    }

    /// The `FsKind` of the backend serving `p` (as node 0 sees it).
    pub fn kind_of(&self, p: &str) -> FsResult<FsKind> {
        let (mount, _) = self.resolve_mount(p)?;
        Ok(self.backend_ref(mount, NodeId(0))?.kind())
    }

    // ----- charged operations, mirroring FileSystem -----

    pub fn open(
        &mut self,
        node: NodeId,
        p: &str,
        flags: OpenFlags,
        meta: FileMeta,
        now: SimTime,
    ) -> FsResult<(VnodeId, SimTime)> {
        let p = path::normalize(p);
        let (mount, rel) = self.resolve_mount(&p)?;
        let rel = rel.to_string();
        let fs = self.backend(mount, node)?;
        let (ino, finish) = fs.open(node, &rel, flags, meta, now)?;
        Ok((VnodeId { mount, ino }, finish))
    }

    pub fn close(&mut self, node: NodeId, vn: VnodeId, now: SimTime) -> FsResult<SimTime> {
        self.backend(vn.mount, node)?.close(node, vn.ino, now)
    }

    pub fn read(
        &mut self,
        node: NodeId,
        vn: VnodeId,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> FsResult<IoReply> {
        self.backend(vn.mount, node)?
            .read(node, vn.ino, offset, len, now)
    }

    pub fn write(
        &mut self,
        node: NodeId,
        vn: VnodeId,
        offset: u64,
        payload: &WritePayload,
        now: SimTime,
    ) -> FsResult<IoReply> {
        self.backend(vn.mount, node)?
            .write(node, vn.ino, offset, payload, now)
    }

    pub fn fsync(&mut self, node: NodeId, vn: VnodeId, now: SimTime) -> FsResult<SimTime> {
        self.backend(vn.mount, node)?.fsync(node, vn.ino, now)
    }

    pub fn stat(&mut self, node: NodeId, p: &str, now: SimTime) -> FsResult<(FileStat, SimTime)> {
        let p = path::normalize(p);
        let (mount, rel) = self.resolve_mount(&p)?;
        let rel = rel.to_string();
        self.backend(mount, node)?.stat(node, &rel, now)
    }

    pub fn mkdir(
        &mut self,
        node: NodeId,
        p: &str,
        meta: FileMeta,
        now: SimTime,
    ) -> FsResult<SimTime> {
        let p = path::normalize(p);
        let (mount, rel) = self.resolve_mount(&p)?;
        let rel = rel.to_string();
        self.backend(mount, node)?.mkdir(node, &rel, meta, now)
    }

    pub fn unlink(&mut self, node: NodeId, p: &str, now: SimTime) -> FsResult<SimTime> {
        let p = path::normalize(p);
        let (mount, rel) = self.resolve_mount(&p)?;
        let rel = rel.to_string();
        self.backend(mount, node)?.unlink(node, &rel, now)
    }

    pub fn readdir(
        &mut self,
        node: NodeId,
        p: &str,
        now: SimTime,
    ) -> FsResult<(Vec<String>, SimTime)> {
        let p = path::normalize(p);
        let (mount, rel) = self.resolve_mount(&p)?;
        let rel = rel.to_string();
        self.backend(mount, node)?.readdir(node, &rel, now)
    }

    pub fn rename(
        &mut self,
        node: NodeId,
        from: &str,
        to: &str,
        now: SimTime,
    ) -> FsResult<SimTime> {
        let from = path::normalize(from);
        let to = path::normalize(to);
        let (m1, r1) = self.resolve_mount(&from)?;
        let (m2, r2) = self.resolve_mount(&to)?;
        if m1 != m2 {
            return Err(FsError::Unsupported("cross-mount rename"));
        }
        let (r1, r2) = (r1.to_string(), r2.to_string());
        self.backend(m1, node)?.rename(node, &r1, &r2, now)
    }

    pub fn truncate(
        &mut self,
        node: NodeId,
        vn: VnodeId,
        size: u64,
        now: SimTime,
    ) -> FsResult<SimTime> {
        self.backend(vn.mount, node)?
            .truncate(node, vn.ino, size, now)
    }

    // ----- uncharged helpers -----

    /// `mkdir -p` without time charges — harness setup.
    pub fn setup_dir(&mut self, p: &str) -> FsResult<()> {
        let p = path::normalize(p);
        let (mount, rel) = self.resolve_mount(&p)?;
        let rel = rel.to_string();
        // Apply to every instance of the mount so per-node FSes agree.
        let m = &mut self.mounts[mount as usize];
        match &mut m.backend {
            MountBackend::Shared(fs) => {
                fs.namespace_mut().mkdir_all(&rel, FileMeta::default())?;
            }
            MountBackend::PerNode(v) => {
                for fs in v {
                    fs.namespace_mut().mkdir_all(&rel, FileMeta::default())?;
                }
            }
        }
        Ok(())
    }

    /// Uncharged full read of a file as seen from `node`.
    pub fn fetch_file(&self, node: NodeId, p: &str) -> FsResult<Vec<u8>> {
        let p = path::normalize(p);
        let (mount, rel) = self.resolve_mount(&p)?;
        let fs = self.backend_ref(mount, node)?;
        let ino = fs.namespace().resolve(rel)?;
        let size = fs.namespace().stat(ino)?.size;
        fs.fetch(ino, 0, size)
    }

    /// Uncharged write of a whole file (fixtures).
    pub fn put_file(&mut self, node: NodeId, p: &str, data: &[u8]) -> FsResult<()> {
        let p = path::normalize(p);
        let (mount, rel) = self.resolve_mount(&p)?;
        let rel = rel.to_string();
        let fs = self.backend(mount, node)?;
        let ns = fs.namespace_mut();
        if let Some((parent, _)) = path::split_parent(&rel) {
            ns.mkdir_all(&parent, FileMeta::default())?;
        }
        let ino = ns.create_file(&rel, FileMeta::default(), false)?;
        ns.truncate(ino, 0, SimTime::ZERO)?;
        ns.write(ino, 0, &WritePayload::Bytes(data.to_vec()), SimTime::ZERO)?;
        Ok(())
    }

    /// All file paths under `p` on `node`'s view (uncharged), with the
    /// mount prefix re-attached.
    pub fn list_files(&self, node: NodeId, p: &str) -> FsResult<Vec<String>> {
        let p = path::normalize(p);
        let (mount, rel) = self.resolve_mount(&p)?;
        let fs = self.backend_ref(mount, node)?;
        let prefix = &self.mounts[mount as usize].prefix;
        Ok(fs
            .namespace()
            .walk_files(rel)?
            .into_iter()
            .map(|f| {
                if prefix == "/" {
                    f
                } else {
                    format!("{prefix}{f}")
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::mem_fs;
    use crate::params::LocalParams;

    fn vfs() -> Vfs {
        let mut v = Vfs::new(2);
        v.mount_shared("/pfs", mem_fs("panfs-mem")).unwrap();
        v.mount_per_node("/tmp", |i| {
            crate::fs::local_fs("ext3", LocalParams::lanl_2007(), i as u64)
        })
        .unwrap();
        v
    }

    #[test]
    fn longest_prefix_wins() {
        let mut v = vfs();
        v.mount_shared("/pfs/sub", mem_fs("inner")).unwrap();
        let (m, rel) = v.resolve_mount("/pfs/sub/file").unwrap();
        assert_eq!(rel, "/file");
        assert_eq!(v.mounts[m as usize].prefix, "/pfs/sub");
        let (m2, rel2) = v.resolve_mount("/pfs/other").unwrap();
        assert_eq!(rel2, "/other");
        assert_eq!(v.mounts[m2 as usize].prefix, "/pfs");
    }

    #[test]
    fn per_node_mounts_are_isolated() {
        let mut v = vfs();
        v.put_file(NodeId(0), "/tmp/x", b"node0").unwrap();
        assert_eq!(v.fetch_file(NodeId(0), "/tmp/x").unwrap(), b"node0");
        assert!(v.fetch_file(NodeId(1), "/tmp/x").is_err());
    }

    #[test]
    fn shared_mounts_are_visible_everywhere() {
        let mut v = vfs();
        v.put_file(NodeId(0), "/pfs/x", b"shared").unwrap();
        assert_eq!(v.fetch_file(NodeId(1), "/pfs/x").unwrap(), b"shared");
    }

    #[test]
    fn charged_roundtrip_through_vfs() {
        let mut v = vfs();
        v.setup_dir("/pfs/data").unwrap();
        let (vn, t) = v
            .open(
                NodeId(0),
                "/pfs/data/out",
                OpenFlags::RDWR | OpenFlags::CREAT,
                FileMeta::default(),
                SimTime::ZERO,
            )
            .unwrap();
        let rep = v
            .write(NodeId(0), vn, 0, &WritePayload::Bytes(b"abc".to_vec()), t)
            .unwrap();
        assert_eq!(rep.bytes, 3);
        let r = v.read(NodeId(0), vn, 0, 3, rep.finish).unwrap();
        assert_eq!(r.bytes, 3);
        v.close(NodeId(0), vn, r.finish).unwrap();
        assert_eq!(v.fetch_file(NodeId(0), "/pfs/data/out").unwrap(), b"abc");
    }

    #[test]
    fn duplicate_mount_rejected() {
        let mut v = vfs();
        assert!(matches!(
            v.mount_shared("/pfs", mem_fs("dup")),
            Err(FsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn take_put_shared_swaps_backend() {
        let mut v = vfs();
        v.put_file(NodeId(0), "/pfs/keep", b"k").unwrap();
        let inner = v.take_shared("/pfs").unwrap();
        assert_eq!(inner.label(), "panfs-mem");
        v.put_shared("/pfs", inner).unwrap();
        assert_eq!(v.fetch_file(NodeId(0), "/pfs/keep").unwrap(), b"k");
    }

    #[test]
    fn take_shared_on_per_node_mount_fails() {
        let mut v = vfs();
        assert!(matches!(
            v.take_shared("/tmp"),
            Err(FsError::Unsupported(_))
        ));
    }

    #[test]
    fn cross_mount_rename_rejected() {
        let mut v = vfs();
        v.put_file(NodeId(0), "/pfs/a", b"a").unwrap();
        assert!(matches!(
            v.rename(NodeId(0), "/pfs/a", "/tmp/a", SimTime::ZERO),
            Err(FsError::Unsupported(_))
        ));
    }

    #[test]
    fn list_files_reattaches_prefix() {
        let mut v = vfs();
        v.put_file(NodeId(0), "/pfs/d/one", b"1").unwrap();
        v.put_file(NodeId(0), "/pfs/d/two", b"2").unwrap();
        let files = v.list_files(NodeId(0), "/pfs/d").unwrap();
        assert_eq!(
            files,
            vec!["/pfs/d/one".to_string(), "/pfs/d/two".to_string()]
        );
    }

    #[test]
    fn degrade_storage_reaches_mounted_striped_fs() {
        use crate::params::{RetryPolicy, StripedParams};
        use iotrace_sim::fault::DegradedWindow;
        let run = |degrade: bool| {
            let mut v = Vfs::new(1);
            v.mount_shared(
                "/pfs",
                crate::fs::striped_fs("panfs", StripedParams::lanl_2007()),
            )
            .unwrap();
            if degrade {
                let windows: Vec<DegradedWindow> = (0..28)
                    .map(|s| DegradedWindow {
                        server: s,
                        from: SimTime::ZERO,
                        until: SimTime::from_secs(10),
                        slowdown: 8.0,
                        unavailable: false,
                    })
                    .collect();
                v.degrade_storage(&windows, RetryPolicy::lanl_2007());
            }
            let (vn, t) = v
                .open(
                    NodeId(0),
                    "/pfs/f",
                    OpenFlags::RDWR | OpenFlags::CREAT,
                    FileMeta::default(),
                    SimTime::ZERO,
                )
                .unwrap();
            v.write(NodeId(0), vn, 0, &WritePayload::Synthetic(1 << 20), t)
                .unwrap()
                .finish
        };
        assert!(run(true) > run(false));
    }

    #[test]
    fn kind_of_reports_backend() {
        let v = vfs();
        assert_eq!(v.kind_of("/tmp/x").unwrap(), FsKind::Local);
        assert_eq!(v.kind_of("/pfs/x").unwrap(), FsKind::Mem);
    }
}
