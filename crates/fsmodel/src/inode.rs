//! Inode table and namespace operations shared by every simulated file
//! system (local, NFS, striped parallel). Cost models are layered on top;
//! this module is purely functional bookkeeping.

use std::collections::{BTreeMap, HashMap};

use iotrace_sim::time::SimTime;

use crate::data::{SparseData, WritePayload};
use crate::error::{FsError, FsResult};
use crate::path;

/// Identifier of an inode within one file system instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InodeId(pub u64);

pub const ROOT_INODE: InodeId = InodeId(1);

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InodeKind {
    File,
    Dir,
}

/// Ownership and permission metadata — the fields the paper's
/// anonymization axis cares about (uid, gid, user name).
#[derive(Clone, Debug, PartialEq)]
pub struct FileMeta {
    pub uid: u32,
    pub gid: u32,
    pub owner: String,
    pub mode: u32,
    pub mtime: SimTime,
    pub ctime: SimTime,
}

impl Default for FileMeta {
    fn default() -> Self {
        FileMeta {
            uid: 1000,
            gid: 100,
            owner: "user".to_string(),
            mode: 0o644,
            mtime: SimTime::ZERO,
            ctime: SimTime::ZERO,
        }
    }
}

/// Stat result.
#[derive(Clone, Debug, PartialEq)]
pub struct FileStat {
    pub ino: InodeId,
    pub kind: InodeKind,
    pub size: u64,
    pub meta: FileMeta,
}

#[derive(Debug)]
pub struct Inode {
    pub id: InodeId,
    pub kind: InodeKind,
    pub meta: FileMeta,
    pub data: SparseData,
    /// Directory entries; empty for files.
    pub children: BTreeMap<String, InodeId>,
}

/// A complete in-memory namespace: directory tree plus file contents.
#[derive(Debug)]
pub struct Namespace {
    inodes: HashMap<u64, Inode>,
    next_id: u64,
}

impl Default for Namespace {
    fn default() -> Self {
        Self::new()
    }
}

impl Namespace {
    pub fn new() -> Self {
        let mut inodes = HashMap::new();
        inodes.insert(
            ROOT_INODE.0,
            Inode {
                id: ROOT_INODE,
                kind: InodeKind::Dir,
                meta: FileMeta {
                    mode: 0o755,
                    ..FileMeta::default()
                },
                data: SparseData::new(),
                children: BTreeMap::new(),
            },
        );
        Namespace { inodes, next_id: 2 }
    }

    pub fn get(&self, ino: InodeId) -> FsResult<&Inode> {
        self.inodes.get(&ino.0).ok_or(FsError::BadHandle(ino.0))
    }

    pub fn get_mut(&mut self, ino: InodeId) -> FsResult<&mut Inode> {
        self.inodes.get_mut(&ino.0).ok_or(FsError::BadHandle(ino.0))
    }

    pub fn len(&self) -> usize {
        self.inodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inodes.is_empty()
    }

    /// Resolve a normalized absolute path to an inode.
    pub fn resolve(&self, p: &str) -> FsResult<InodeId> {
        let mut cur = ROOT_INODE;
        for comp in path::components(p) {
            let node = self.get(cur)?;
            if node.kind != InodeKind::Dir {
                return Err(FsError::NotADirectory(p.to_string()));
            }
            cur = *node
                .children
                .get(comp)
                .ok_or_else(|| FsError::NotFound(p.to_string()))?;
        }
        Ok(cur)
    }

    fn resolve_parent<'a>(&self, p: &'a str) -> FsResult<(InodeId, &'a str)> {
        let (parent, name) =
            path::split_parent(p).ok_or_else(|| FsError::AlreadyExists("/".to_string()))?;
        let pid = self.resolve(&parent)?;
        if self.get(pid)?.kind != InodeKind::Dir {
            return Err(FsError::NotADirectory(parent));
        }
        Ok((pid, name))
    }

    fn alloc(&mut self, kind: InodeKind, meta: FileMeta) -> InodeId {
        let id = InodeId(self.next_id);
        self.next_id += 1;
        self.inodes.insert(
            id.0,
            Inode {
                id,
                kind,
                meta,
                data: SparseData::new(),
                children: BTreeMap::new(),
            },
        );
        id
    }

    /// Create a regular file. With `exclusive`, an existing entry is an
    /// error; otherwise an existing *file* is returned as-is.
    pub fn create_file(&mut self, p: &str, meta: FileMeta, exclusive: bool) -> FsResult<InodeId> {
        let (pid, name) = self.resolve_parent(p)?;
        if let Some(&existing) = self.get(pid)?.children.get(name) {
            if exclusive {
                return Err(FsError::AlreadyExists(p.to_string()));
            }
            let node = self.get(existing)?;
            if node.kind == InodeKind::Dir {
                return Err(FsError::IsADirectory(p.to_string()));
            }
            return Ok(existing);
        }
        let id = self.alloc(InodeKind::File, meta);
        self.get_mut(pid)?.children.insert(name.to_string(), id);
        Ok(id)
    }

    pub fn mkdir(&mut self, p: &str, meta: FileMeta) -> FsResult<InodeId> {
        let (pid, name) = self.resolve_parent(p)?;
        if self.get(pid)?.children.contains_key(name) {
            return Err(FsError::AlreadyExists(p.to_string()));
        }
        let id = self.alloc(InodeKind::Dir, meta);
        self.get_mut(pid)?.children.insert(name.to_string(), id);
        Ok(id)
    }

    /// `mkdir -p`: create all missing intermediate directories.
    pub fn mkdir_all(&mut self, p: &str, meta: FileMeta) -> FsResult<InodeId> {
        let mut cur = "/".to_string();
        let mut id = ROOT_INODE;
        for comp in path::components(p) {
            cur = path::join(&cur, comp);
            id = match self.resolve(&cur) {
                Ok(existing) => {
                    if self.get(existing)?.kind != InodeKind::Dir {
                        return Err(FsError::NotADirectory(cur));
                    }
                    existing
                }
                Err(FsError::NotFound(_)) => self.mkdir(&cur, meta.clone())?,
                Err(e) => return Err(e),
            };
        }
        Ok(id)
    }

    /// Remove a file or an empty directory.
    pub fn unlink(&mut self, p: &str) -> FsResult<()> {
        let (pid, name) = match self.resolve_parent(p) {
            Ok(v) => v,
            Err(FsError::AlreadyExists(_)) => {
                return Err(FsError::PermissionDenied("cannot unlink /".into()))
            }
            Err(e) => return Err(e),
        };
        let id = *self
            .get(pid)?
            .children
            .get(name)
            .ok_or_else(|| FsError::NotFound(p.to_string()))?;
        let node = self.get(id)?;
        if node.kind == InodeKind::Dir && !node.children.is_empty() {
            return Err(FsError::NotEmpty(p.to_string()));
        }
        self.get_mut(pid)?.children.remove(name);
        self.inodes.remove(&id.0);
        Ok(())
    }

    pub fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        let (from_pid, from_name) = self.resolve_parent(from)?;
        let id = *self
            .get(from_pid)?
            .children
            .get(from_name)
            .ok_or_else(|| FsError::NotFound(from.to_string()))?;
        let (to_pid, to_name) = self.resolve_parent(to)?;
        if self.get(to_pid)?.children.contains_key(to_name) {
            return Err(FsError::AlreadyExists(to.to_string()));
        }
        let from_name = from_name.to_string();
        let to_name = to_name.to_string();
        self.get_mut(from_pid)?.children.remove(&from_name);
        self.get_mut(to_pid)?.children.insert(to_name, id);
        Ok(())
    }

    pub fn readdir(&self, p: &str) -> FsResult<Vec<String>> {
        let id = self.resolve(p)?;
        let node = self.get(id)?;
        if node.kind != InodeKind::Dir {
            return Err(FsError::NotADirectory(p.to_string()));
        }
        Ok(node.children.keys().cloned().collect())
    }

    pub fn stat_path(&self, p: &str) -> FsResult<FileStat> {
        let id = self.resolve(p)?;
        self.stat(id)
    }

    pub fn stat(&self, id: InodeId) -> FsResult<FileStat> {
        let node = self.get(id)?;
        Ok(FileStat {
            ino: id,
            kind: node.kind,
            size: node.data.size(),
            meta: node.meta.clone(),
        })
    }

    /// Write through an inode, updating mtime.
    pub fn write(
        &mut self,
        id: InodeId,
        offset: u64,
        payload: &WritePayload,
        now: SimTime,
    ) -> FsResult<u64> {
        let node = self.get_mut(id)?;
        if node.kind == InodeKind::Dir {
            return Err(FsError::IsADirectory(format!("inode {}", id.0)));
        }
        node.data.write(offset, payload);
        node.meta.mtime = now;
        Ok(payload.len())
    }

    pub fn read(&self, id: InodeId, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        let node = self.get(id)?;
        if node.kind == InodeKind::Dir {
            return Err(FsError::IsADirectory(format!("inode {}", id.0)));
        }
        Ok(node.data.read(offset, len))
    }

    pub fn truncate(&mut self, id: InodeId, size: u64, now: SimTime) -> FsResult<()> {
        let node = self.get_mut(id)?;
        if node.kind == InodeKind::Dir {
            return Err(FsError::IsADirectory(format!("inode {}", id.0)));
        }
        node.data.truncate(size);
        node.meta.mtime = now;
        Ok(())
    }

    /// Walk every file under `dir` (normalized path), depth-first.
    pub fn walk_files(&self, dir: &str) -> FsResult<Vec<String>> {
        let mut out = Vec::new();
        let mut stack = vec![path::normalize(dir)];
        while let Some(d) = stack.pop() {
            let id = self.resolve(&d)?;
            let node = self.get(id)?;
            match node.kind {
                InodeKind::File => out.push(d),
                InodeKind::Dir => {
                    for name in node.children.keys().rev() {
                        stack.push(path::join(&d, name));
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns() -> Namespace {
        Namespace::new()
    }

    #[test]
    fn root_resolves() {
        let n = ns();
        assert_eq!(n.resolve("/").unwrap(), ROOT_INODE);
    }

    #[test]
    fn create_and_stat_file() {
        let mut n = ns();
        let id = n.create_file("/a.txt", FileMeta::default(), true).unwrap();
        let st = n.stat_path("/a.txt").unwrap();
        assert_eq!(st.ino, id);
        assert_eq!(st.kind, InodeKind::File);
        assert_eq!(st.size, 0);
    }

    #[test]
    fn exclusive_create_conflicts() {
        let mut n = ns();
        n.create_file("/a", FileMeta::default(), true).unwrap();
        assert!(matches!(
            n.create_file("/a", FileMeta::default(), true),
            Err(FsError::AlreadyExists(_))
        ));
        // non-exclusive returns the same inode
        let id1 = n.resolve("/a").unwrap();
        let id2 = n.create_file("/a", FileMeta::default(), false).unwrap();
        assert_eq!(id1, id2);
    }

    #[test]
    fn nested_requires_parents() {
        let mut n = ns();
        assert!(matches!(
            n.create_file("/d/a", FileMeta::default(), true),
            Err(FsError::NotFound(_))
        ));
        n.mkdir("/d", FileMeta::default()).unwrap();
        n.create_file("/d/a", FileMeta::default(), true).unwrap();
        assert!(n.resolve("/d/a").is_ok());
    }

    #[test]
    fn mkdir_all_builds_chain() {
        let mut n = ns();
        n.mkdir_all("/x/y/z", FileMeta::default()).unwrap();
        assert!(n.resolve("/x/y/z").is_ok());
        // idempotent
        n.mkdir_all("/x/y/z", FileMeta::default()).unwrap();
    }

    #[test]
    fn file_component_in_middle_is_enotdir() {
        let mut n = ns();
        n.create_file("/f", FileMeta::default(), true).unwrap();
        assert!(matches!(n.resolve("/f/x"), Err(FsError::NotADirectory(_))));
        assert!(matches!(
            n.mkdir_all("/f/x", FileMeta::default()),
            Err(FsError::NotADirectory(_))
        ));
    }

    #[test]
    fn unlink_file_and_empty_dir() {
        let mut n = ns();
        n.create_file("/a", FileMeta::default(), true).unwrap();
        n.mkdir("/d", FileMeta::default()).unwrap();
        n.unlink("/a").unwrap();
        n.unlink("/d").unwrap();
        assert!(n.resolve("/a").is_err());
        assert!(n.resolve("/d").is_err());
    }

    #[test]
    fn unlink_nonempty_dir_fails() {
        let mut n = ns();
        n.mkdir("/d", FileMeta::default()).unwrap();
        n.create_file("/d/a", FileMeta::default(), true).unwrap();
        assert!(matches!(n.unlink("/d"), Err(FsError::NotEmpty(_))));
    }

    #[test]
    fn rename_moves_entry() {
        let mut n = ns();
        n.create_file("/a", FileMeta::default(), true).unwrap();
        n.mkdir("/d", FileMeta::default()).unwrap();
        n.rename("/a", "/d/b").unwrap();
        assert!(n.resolve("/a").is_err());
        assert!(n.resolve("/d/b").is_ok());
    }

    #[test]
    fn rename_onto_existing_fails() {
        let mut n = ns();
        n.create_file("/a", FileMeta::default(), true).unwrap();
        n.create_file("/b", FileMeta::default(), true).unwrap();
        assert!(matches!(
            n.rename("/a", "/b"),
            Err(FsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn readdir_sorted() {
        let mut n = ns();
        n.create_file("/b", FileMeta::default(), true).unwrap();
        n.create_file("/a", FileMeta::default(), true).unwrap();
        assert_eq!(
            n.readdir("/").unwrap(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn write_read_through_inode() {
        let mut n = ns();
        let id = n.create_file("/a", FileMeta::default(), true).unwrap();
        n.write(
            id,
            0,
            &WritePayload::Bytes(b"data".to_vec()),
            SimTime::from_secs(5),
        )
        .unwrap();
        assert_eq!(n.read(id, 0, 4).unwrap(), b"data");
        assert_eq!(n.stat(id).unwrap().size, 4);
        assert_eq!(n.stat(id).unwrap().meta.mtime, SimTime::from_secs(5));
    }

    #[test]
    fn dir_io_is_rejected() {
        let mut n = ns();
        let id = n.mkdir("/d", FileMeta::default()).unwrap();
        assert!(n.read(id, 0, 1).is_err());
        assert!(n
            .write(id, 0, &WritePayload::Synthetic(1), SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn walk_files_recurses() {
        let mut n = ns();
        n.mkdir_all("/a/b", FileMeta::default()).unwrap();
        n.create_file("/a/f1", FileMeta::default(), true).unwrap();
        n.create_file("/a/b/f2", FileMeta::default(), true).unwrap();
        n.create_file("/top", FileMeta::default(), true).unwrap();
        let files = n.walk_files("/").unwrap();
        assert_eq!(files, vec!["/a/b/f2", "/a/f1", "/top"]);
    }

    #[test]
    fn unlink_root_is_denied() {
        let mut n = ns();
        assert!(matches!(n.unlink("/"), Err(FsError::PermissionDenied(_))));
    }
}
