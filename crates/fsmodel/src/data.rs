//! Sparse file contents.
//!
//! Simulated workloads routinely "write" hundreds of gigabytes; storing
//! those bytes would defeat the point of simulating. But tracing frameworks
//! write *real* bytes (their trace files must be re-readable by the
//! analysis and replay crates). [`SparseData`] reconciles the two: real
//! payloads are stored in coalesced extents, synthetic bulk writes only
//! advance the logical size, and reads fill unstored ranges with zeroes —
//! the same observable behaviour as a sparse POSIX file.

use std::collections::BTreeMap;

/// Payload of a simulated write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WritePayload {
    /// Real bytes to retain (trace output, small app files).
    Bytes(Vec<u8>),
    /// Size-only bulk data (benchmark payloads); reads come back zeroed.
    Synthetic(u64),
}

impl WritePayload {
    pub fn len(&self) -> u64 {
        match self {
            WritePayload::Bytes(b) => b.len() as u64,
            WritePayload::Synthetic(n) => *n,
        }
    }
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Sparse byte store: extents keyed by offset, always non-adjacent and
/// non-overlapping (writes coalesce).
#[derive(Clone, Debug, Default)]
pub struct SparseData {
    extents: BTreeMap<u64, Vec<u8>>,
    /// Logical file size (may exceed the sum of stored extents).
    size: u64,
}

impl SparseData {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bytes actually resident in memory (diagnostics / memory caps).
    pub fn resident_bytes(&self) -> u64 {
        self.extents.values().map(|v| v.len() as u64).sum()
    }

    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Apply a write at `offset`. Synthetic writes only grow the logical
    /// size (and punch no holes in stored data).
    pub fn write(&mut self, offset: u64, payload: &WritePayload) {
        let len = payload.len();
        self.size = self.size.max(offset + len);
        let bytes = match payload {
            WritePayload::Bytes(b) if !b.is_empty() => b,
            _ => return,
        };
        self.insert_bytes(offset, bytes.clone());
    }

    fn insert_bytes(&mut self, offset: u64, bytes: Vec<u8>) {
        let end = offset + bytes.len() as u64;
        // Collect extents overlapping or adjacent to [offset, end].
        let mut absorb: Vec<u64> = Vec::new();
        // Candidates start at or before `end`; find any whose range touches.
        for (&start, data) in self.extents.range(..=end) {
            let e_end = start + data.len() as u64;
            if e_end >= offset {
                absorb.push(start);
            }
        }
        if absorb.is_empty() {
            self.extents.insert(offset, bytes);
            return;
        }
        let new_start = offset.min(absorb[0]);
        let mut new_end = end;
        for &s in &absorb {
            let d = &self.extents[&s];
            new_end = new_end.max(s + d.len() as u64);
        }
        let mut merged = vec![0u8; (new_end - new_start) as usize];
        for &s in &absorb {
            let d = self.extents.remove(&s).unwrap();
            let at = (s - new_start) as usize;
            merged[at..at + d.len()].copy_from_slice(&d);
        }
        let at = (offset - new_start) as usize;
        merged[at..at + bytes.len()].copy_from_slice(&bytes);
        self.extents.insert(new_start, merged);
    }

    /// Read `len` bytes at `offset`, zero-filling holes. Returns fewer
    /// bytes when the range crosses EOF; empty at/after EOF.
    pub fn read(&self, offset: u64, len: u64) -> Vec<u8> {
        if offset >= self.size {
            return Vec::new();
        }
        let len = len.min(self.size - offset);
        let mut out = vec![0u8; len as usize];
        let end = offset + len;
        // Find extents potentially overlapping: the last one starting at or
        // before `offset` plus everything in (offset, end).
        let first = self.extents.range(..=offset).next_back().map(|(&s, _)| s);
        let starts: Vec<u64> = first
            .into_iter()
            .chain(self.extents.range(offset + 1..end).map(|(&s, _)| s))
            .collect();
        for s in starts {
            let d = &self.extents[&s];
            let e_end = s + d.len() as u64;
            if e_end <= offset || s >= end {
                continue;
            }
            let copy_start = offset.max(s);
            let copy_end = end.min(e_end);
            let src = &d[(copy_start - s) as usize..(copy_end - s) as usize];
            out[(copy_start - offset) as usize..(copy_end - offset) as usize].copy_from_slice(src);
        }
        out
    }

    /// Truncate (or extend with a hole) to `new_size`.
    pub fn truncate(&mut self, new_size: u64) {
        if new_size < self.size {
            let keep: Vec<(u64, Vec<u8>)> = self
                .extents
                .iter()
                .filter(|(&s, _)| s < new_size)
                .map(|(&s, d)| {
                    let max_len = (new_size - s) as usize;
                    (s, d[..d.len().min(max_len)].to_vec())
                })
                .collect();
            self.extents = keep.into_iter().filter(|(_, d)| !d.is_empty()).collect();
        }
        self.size = new_size;
    }

    /// Entire logical content (zero-filled); intended for small real files
    /// like trace output.
    pub fn to_vec(&self) -> Vec<u8> {
        self.read(0, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wb(data: &[u8]) -> WritePayload {
        WritePayload::Bytes(data.to_vec())
    }

    #[test]
    fn write_then_read_back() {
        let mut d = SparseData::new();
        d.write(0, &wb(b"hello"));
        assert_eq!(d.read(0, 5), b"hello");
        assert_eq!(d.size(), 5);
    }

    #[test]
    fn synthetic_grows_size_without_memory() {
        let mut d = SparseData::new();
        d.write(0, &WritePayload::Synthetic(10 << 30));
        assert_eq!(d.size(), 10 << 30);
        assert_eq!(d.resident_bytes(), 0);
        assert_eq!(d.read(1 << 30, 4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn holes_read_as_zero() {
        let mut d = SparseData::new();
        d.write(10, &wb(b"xy"));
        // size is 12; read(8,6) clamps to 4 bytes, leading hole zero-filled
        assert_eq!(d.read(8, 6), vec![0, 0, b'x', b'y']);
    }

    #[test]
    fn overlapping_writes_coalesce() {
        let mut d = SparseData::new();
        d.write(0, &wb(b"aaaa"));
        d.write(2, &wb(b"bbbb"));
        assert_eq!(d.extent_count(), 1);
        assert_eq!(d.read(0, 6), b"aabbbb");
    }

    #[test]
    fn adjacent_writes_coalesce() {
        let mut d = SparseData::new();
        d.write(0, &wb(b"ab"));
        d.write(2, &wb(b"cd"));
        assert_eq!(d.extent_count(), 1);
        assert_eq!(d.read(0, 4), b"abcd");
    }

    #[test]
    fn disjoint_writes_stay_separate() {
        let mut d = SparseData::new();
        d.write(0, &wb(b"ab"));
        d.write(100, &wb(b"cd"));
        assert_eq!(d.extent_count(), 2);
        assert_eq!(d.read(0, 2), b"ab");
        assert_eq!(d.read(100, 2), b"cd");
        assert_eq!(d.read(50, 2), vec![0, 0]);
    }

    #[test]
    fn read_past_eof_is_clamped() {
        let mut d = SparseData::new();
        d.write(0, &wb(b"abc"));
        assert_eq!(d.read(2, 10), b"c");
        assert_eq!(d.read(3, 10), Vec::<u8>::new());
        assert_eq!(d.read(99, 1), Vec::<u8>::new());
    }

    #[test]
    fn truncate_cuts_extents() {
        let mut d = SparseData::new();
        d.write(0, &wb(b"abcdef"));
        d.truncate(3);
        assert_eq!(d.size(), 3);
        assert_eq!(d.to_vec(), b"abc");
        d.truncate(5);
        assert_eq!(d.size(), 5);
        assert_eq!(d.to_vec(), b"abc\0\0");
    }

    #[test]
    fn truncate_to_zero_clears() {
        let mut d = SparseData::new();
        d.write(4, &wb(b"zz"));
        d.truncate(0);
        assert_eq!(d.size(), 0);
        assert_eq!(d.extent_count(), 0);
    }

    #[test]
    fn write_overwrites_overlapped_middle() {
        let mut d = SparseData::new();
        d.write(0, &wb(b"xxxxxxxx"));
        d.write(2, &wb(b"YY"));
        assert_eq!(d.to_vec(), b"xxYYxxxx");
    }
}
