//! Cost models: map file-system operations to completion times.
//!
//! Each simulated file system is [`crate::fs::ModeledFs`] = a shared
//! [`crate::inode::Namespace`] plus one of these models. Models keep
//! per-server FCFS queues (`busy_until` horizons), so contention between
//! ranks emerges naturally: when 32 clients hammer 28 stripe servers, ops
//! queue and effective bandwidth saturates — the precondition for the
//! paper's Figures 2–4 shapes.

use iotrace_sim::fault::DegradedWindow;
use iotrace_sim::ids::NodeId;
use iotrace_sim::rng::DetRng;
use iotrace_sim::time::{SimDur, SimTime};

use crate::inode::InodeId;
use crate::params::{LocalParams, NfsParams, RetryPolicy, StripedParams};

/// Direction of a data operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataDir {
    Read,
    Write,
}

/// What kind of file system a mount is — the taxonomy's "parallel file
/// system compatibility" axis keys off this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsKind {
    /// Node-local disk (ext3-like).
    Local,
    /// Shared single-server NFS-like FS.
    Nfs,
    /// Striped parallel file system.
    Parallel,
    /// Zero-cost in-memory FS (test fixtures, staging).
    Mem,
    /// A stackable layer wrapping another FS (e.g. Tracefs).
    Stacked,
}

/// Computes completion times for operations against one file system.
pub trait CostModel: Send {
    fn kind(&self) -> FsKind;

    /// Completion time of a metadata operation (open/stat/mkdir/…)
    /// issued by `node` at `now`.
    fn meta(&mut self, node: NodeId, now: SimTime) -> SimTime;

    /// Completion time of a data operation.
    #[allow(clippy::too_many_arguments)]
    fn data(
        &mut self,
        node: NodeId,
        now: SimTime,
        dir: DataDir,
        ino: InodeId,
        offset: u64,
        len: u64,
        shared_file: bool,
    ) -> SimTime;

    /// Completion time of an fsync (flush outstanding writes).
    fn fsync(&mut self, node: NodeId, now: SimTime) -> SimTime {
        self.meta(node, now)
    }

    /// Apply fault-injection degradation windows and the retry policy
    /// clients use against them. Default no-op: models without
    /// per-server structure have nothing to degrade.
    fn degrade(&mut self, _windows: &[DegradedWindow], _policy: RetryPolicy) {}
}

/// One service queue (a disk, a server).
///
/// Requests may be *booked at future times* (e.g. a //TRACE-throttled
/// client issues its request late), so a naive `busy_until` horizon would
/// wrongly queue an earlier-arriving request behind a later reservation.
/// The queue therefore tracks busy intervals and backfills gaps: a
/// request is served at the earliest idle span of sufficient length at or
/// after its arrival. Old intervals are compacted into a floor to bound
/// memory.
#[derive(Clone, Debug, Default)]
pub struct ServiceQueue {
    /// Booked (start, end) busy intervals, sorted, non-overlapping.
    intervals: std::collections::VecDeque<(u64, u64)>,
    /// Nothing may be booked before this compaction floor.
    floor: u64,
}

impl ServiceQueue {
    const MAX_INTERVALS: usize = 64;

    /// Book a request of the given service time arriving at `now`;
    /// returns its completion time.
    pub fn serve(&mut self, now: SimTime, service: SimDur) -> SimTime {
        let dur = service.as_nanos();
        let mut start = now.as_nanos().max(self.floor);
        let mut idx = self.intervals.len();
        for (i, &(s, e)) in self.intervals.iter().enumerate() {
            if e <= start {
                continue; // interval entirely before the candidate
            }
            if start + dur <= s {
                idx = i; // fits in the gap before interval i
                break;
            }
            start = start.max(e);
        }
        let end = start + dur;
        self.intervals.insert(idx, (start, end));
        if self.intervals.len() > Self::MAX_INTERVALS {
            let (_, e) = self.intervals.pop_front().unwrap();
            self.floor = self.floor.max(e);
        }
        SimTime::from_nanos(end)
    }

    /// Latest booked completion time.
    pub fn busy_until(&self) -> SimTime {
        SimTime::from_nanos(
            self.intervals
                .iter()
                .map(|&(_, e)| e)
                .max()
                .unwrap_or(self.floor),
        )
    }
}

/// Zero-cost model for in-memory test file systems.
#[derive(Debug, Default)]
pub struct MemModel;

impl CostModel for MemModel {
    fn kind(&self) -> FsKind {
        FsKind::Mem
    }
    fn meta(&mut self, _node: NodeId, now: SimTime) -> SimTime {
        now
    }
    fn data(
        &mut self,
        _node: NodeId,
        now: SimTime,
        _dir: DataDir,
        _ino: InodeId,
        _offset: u64,
        _len: u64,
        _shared: bool,
    ) -> SimTime {
        now
    }
}

/// Node-local disk with a write-back page cache. One instance per node.
///
/// Cache-absorbed writes accumulate *writeback debt* that background I/O
/// retires; only an `fsync` forces the caller to wait for it. Misses pay
/// their own service time at the disk, not the entire backlog — matching
/// how a real page cache decouples foreground writes from writeback.
#[derive(Debug)]
pub struct LocalModel {
    params: LocalParams,
    disk: ServiceQueue,
    /// Unflushed cached-write bytes.
    debt_bytes: u64,
    rng: DetRng,
}

impl LocalModel {
    pub fn new(params: LocalParams, seed: u64) -> Self {
        LocalModel {
            params,
            disk: ServiceQueue::default(),
            debt_bytes: 0,
            rng: DetRng::new(seed),
        }
    }
}

impl CostModel for LocalModel {
    fn kind(&self) -> FsKind {
        FsKind::Local
    }

    fn meta(&mut self, _node: NodeId, now: SimTime) -> SimTime {
        now + self.params.meta_latency
    }

    fn data(
        &mut self,
        _node: NodeId,
        now: SimTime,
        dir: DataDir,
        _ino: InodeId,
        _offset: u64,
        len: u64,
        _shared: bool,
    ) -> SimTime {
        match dir {
            DataDir::Write if self.rng.unit_f64() < self.params.write_cache_hit => {
                // Absorbed by the page cache: tiny CPU cost now, debt
                // retired by background writeback (or a later fsync).
                self.debt_bytes += len;
                now + self.params.cached_write_cost
            }
            _ => self.disk.serve(now, self.params.disk.service(len)),
        }
    }

    fn fsync(&mut self, _node: NodeId, now: SimTime) -> SimTime {
        // Flush the outstanding writeback debt.
        let debt = std::mem::take(&mut self.debt_bytes);
        let finish = if debt > 0 {
            self.disk.serve(now, self.params.disk.service(debt))
        } else {
            self.disk.busy_until().max_of(now)
        };
        finish + self.params.meta_latency
    }
}

/// Single-server NFS-like model shared by all nodes.
#[derive(Debug)]
pub struct NfsModel {
    params: NfsParams,
    server: ServiceQueue,
}

impl NfsModel {
    pub fn new(params: NfsParams) -> Self {
        NfsModel {
            params,
            server: ServiceQueue::default(),
        }
    }
}

impl CostModel for NfsModel {
    fn kind(&self) -> FsKind {
        FsKind::Nfs
    }

    fn meta(&mut self, _node: NodeId, now: SimTime) -> SimTime {
        self.server
            .serve(now + self.params.rpc_overhead, self.params.meta_latency)
    }

    fn data(
        &mut self,
        _node: NodeId,
        now: SimTime,
        _dir: DataDir,
        _ino: InodeId,
        _offset: u64,
        len: u64,
        _shared: bool,
    ) -> SimTime {
        let service = self.params.server.service(len);
        self.server.serve(now + self.params.rpc_overhead, service)
    }
}

/// The striped RAID-5 parallel file system.
#[derive(Debug)]
pub struct StripedModel {
    params: StripedParams,
    servers: Vec<ServiceQueue>,
    meta_service: ServiceQueue,
    /// Fault-injected degradation windows (empty on a healthy array).
    degraded: Vec<DegradedWindow>,
    retry: RetryPolicy,
    /// Seeded stream for retry jitter; inert while `jitter_frac == 0`
    /// (the calibrated default), so the fixed schedule stays bit-exact.
    retry_rng: DetRng,
    /// Failed probes issued against unavailable servers so far.
    retries: u64,
}

impl StripedModel {
    pub fn new(params: StripedParams) -> Self {
        StripedModel {
            servers: vec![ServiceQueue::default(); params.servers],
            meta_service: ServiceQueue::default(),
            params,
            degraded: Vec::new(),
            retry: RetryPolicy::lanl_2007(),
            retry_rng: DetRng::new(0x0BAC_C0FF),
            retries: 0,
        }
    }

    /// Builder form of [`CostModel::degrade`].
    pub fn with_degradation(mut self, windows: Vec<DegradedWindow>, policy: RetryPolicy) -> Self {
        self.degraded = windows;
        self.retry = policy;
        self
    }

    pub fn params(&self) -> &StripedParams {
        &self.params
    }

    /// How many failed probes degraded servers have absorbed.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Serve one request on `server`, honouring degradation windows.
    /// Against an unavailable server the client probes, backs off
    /// exponentially, and — once the retry budget is spent — blocks
    /// until the outage ends. Probes are booked on the server queue so
    /// they surface as extra queue events in overhead accounting.
    fn serve_degraded(&mut self, server: usize, start: SimTime, service: SimDur) -> SimTime {
        let mut at = start;
        let mut attempt = 0u32;
        loop {
            let outage = self
                .degraded
                .iter()
                .find(|w| w.server == server && w.unavailable && w.covers(at))
                .copied();
            let Some(w) = outage else {
                let slowdown = self
                    .degraded
                    .iter()
                    .filter(|w| w.server == server && !w.unavailable && w.covers(at))
                    .map(|w| w.slowdown)
                    .fold(1.0, f64::max);
                let service = if slowdown > 1.0 {
                    service.mul_f64(slowdown)
                } else {
                    service
                };
                return self.servers[server].serve(at, service);
            };
            if attempt < self.retry.max_retries {
                let probe_done = self.servers[server].serve(at, self.retry.probe_cost);
                self.retries += 1;
                at = probe_done + self.retry.backoff_jittered(attempt, &mut self.retry_rng);
                attempt += 1;
            } else {
                // Retry budget exhausted: block until the outage lifts.
                at = at.max_of(w.until);
            }
        }
    }

    /// Files start on a per-inode server so independent files (the N-N
    /// pattern) spread over the array instead of convoying on server 0.
    fn start_server(&self, ino: InodeId) -> usize {
        // full splitmix64 finalizer: sequential inode ids disperse evenly
        let mut z = ino.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.params.servers as u64) as usize
    }

    /// Split `[offset, offset+len)` into per-stripe-unit segments, each
    /// `(server_index, seg_len, partial)`.
    fn segments(&self, ino: InodeId, offset: u64, len: u64) -> Vec<(usize, u64, bool)> {
        let sw = self.params.stripe_width;
        let base = self.start_server(ino);
        let mut out = Vec::new();
        let mut off = offset;
        let end = offset + len;
        while off < end {
            let stripe_idx = off / sw;
            let within = off % sw;
            let seg = (sw - within).min(end - off);
            let server = (base + stripe_idx as usize) % self.params.servers;
            let partial = seg < sw;
            out.push((server, seg, partial));
            off += seg;
        }
        out
    }

    /// Coalesce an op's stripe-unit segments into one request per server:
    /// `(server, total_bytes, partial_units)`. A real OSD charges its
    /// per-request overhead once per client request, not once per stripe
    /// unit — this is what makes large blocks faster (the log-like
    /// bandwidth growth of Figure 2).
    fn per_server_requests(&self, ino: InodeId, offset: u64, len: u64) -> Vec<(usize, u64, u32)> {
        let mut acc: Vec<(u64, u32)> = vec![(0, 0); self.params.servers];
        for (server, seg, partial) in self.segments(ino, offset, len) {
            acc[server].0 += seg;
            acc[server].1 += partial as u32;
        }
        acc.into_iter()
            .enumerate()
            .filter(|(_, (bytes, _))| *bytes > 0)
            .map(|(s, (bytes, partials))| (s, bytes, partials))
            .collect()
    }
}

impl CostModel for StripedModel {
    fn kind(&self) -> FsKind {
        FsKind::Parallel
    }

    fn meta(&mut self, _node: NodeId, now: SimTime) -> SimTime {
        self.meta_service.serve(now, self.params.meta_latency)
    }

    fn data(
        &mut self,
        _node: NodeId,
        now: SimTime,
        dir: DataDir,
        ino: InodeId,
        offset: u64,
        len: u64,
        shared_file: bool,
    ) -> SimTime {
        let mut start = now + self.params.client_op_overhead;
        if shared_file && dir == DataDir::Write {
            start += self.params.shared_lock_overhead;
        }
        let mut finish = start;
        let sw = self.params.stripe_width;
        for (server, bytes, partials) in self.per_server_requests(ino, offset, len) {
            // RAID-5 read-modify-write: each partial stripe unit costs an
            // extra read of the old data + parity update, modelled as
            // (rmw_factor - 1) extra stripe-unit transfers.
            let mut effective = bytes;
            if dir == DataDir::Write && partials > 0 {
                effective +=
                    ((partials as u64 * sw) as f64 * (self.params.rmw_factor - 1.0)) as u64;
            }
            let service = self.params.server.service(effective);
            let done = self.serve_degraded(server, start, service);
            finish = finish.max_of(done);
        }
        finish
    }

    fn degrade(&mut self, windows: &[DegradedWindow], policy: RetryPolicy) {
        self.degraded.extend_from_slice(windows);
        self.retry = policy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn service_queue_fcfs() {
        let mut q = ServiceQueue::default();
        let f1 = q.serve(t(0), SimDur::from_millis(10));
        assert_eq!(f1, t(10));
        // arrives while busy -> queues
        let f2 = q.serve(t(5), SimDur::from_millis(10));
        assert_eq!(f2, t(20));
        // arrives after idle -> starts immediately
        let f3 = q.serve(t(100), SimDur::from_millis(1));
        assert_eq!(f3, t(101));
        assert_eq!(q.busy_until(), t(101));
    }

    #[test]
    fn service_queue_backfills_gaps() {
        let mut q = ServiceQueue::default();
        // A future reservation at t=100 must not delay an earlier arrival.
        let f1 = q.serve(t(100), SimDur::from_millis(10));
        assert_eq!(f1, t(110));
        let f2 = q.serve(t(0), SimDur::from_millis(10));
        assert_eq!(f2, t(10), "early arrival backfills the idle gap");
        // A request too large for the gap goes after the reservation.
        let f3 = q.serve(t(15), SimDur::from_millis(90));
        assert_eq!(f3, t(200));
        // A small one still fits between t=10 and t=100.
        let f4 = q.serve(t(12), SimDur::from_millis(5));
        assert_eq!(f4, t(17));
    }

    #[test]
    fn service_queue_compaction_bounds_memory() {
        let mut q = ServiceQueue::default();
        for i in 0..500u64 {
            q.serve(SimTime::from_millis(i * 10), SimDur::from_millis(1));
        }
        // still functional and monotone at the tail
        let f = q.serve(SimTime::from_millis(5000), SimDur::from_millis(1));
        assert_eq!(f, SimTime::from_millis(5001));
    }

    #[test]
    fn mem_model_is_free() {
        let mut m = MemModel;
        assert_eq!(m.meta(NodeId(0), t(3)), t(3));
        assert_eq!(
            m.data(
                NodeId(0),
                t(3),
                DataDir::Write,
                InodeId(1),
                0,
                1 << 30,
                false
            ),
            t(3)
        );
    }

    #[test]
    fn striped_segments_cover_range() {
        let m = StripedModel::new(StripedParams::lanl_2007());
        let segs = m.segments(InodeId(9), 10, 200_000);
        let total: u64 = segs.iter().map(|s| s.1).sum();
        assert_eq!(total, 200_000);
        // first segment ends at a stripe boundary
        assert_eq!(segs[0].1, 64 * 1024 - 10);
    }

    #[test]
    fn aligned_full_stripe_is_not_partial() {
        let m = StripedModel::new(StripedParams::lanl_2007());
        let segs = m.segments(InodeId(3), 0, 128 * 1024);
        assert_eq!(segs.len(), 2);
        assert!(segs.iter().all(|s| !s.2), "full stripes, no RMW");
        let segs = m.segments(InodeId(3), 0, 96 * 1024);
        assert!(segs[1].2, "tail is partial");
    }

    #[test]
    fn partial_stripe_write_pays_rmw() {
        let mut m = StripedModel::new(StripedParams::lanl_2007());
        let full = m.data(
            NodeId(0),
            t(0),
            DataDir::Write,
            InodeId(1),
            0,
            64 * 1024,
            false,
        );
        let mut m2 = StripedModel::new(StripedParams::lanl_2007());
        let part = m2.data(
            NodeId(0),
            t(0),
            DataDir::Write,
            InodeId(1),
            0,
            32 * 1024,
            false,
        );
        // RMW makes the *smaller* write comparatively expensive: the
        // 32 KiB write costs more than half the 64 KiB one.
        let full_ns = full.as_nanos();
        let part_ns = part.as_nanos();
        assert!(part_ns * 2 > full_ns, "partial {part_ns} vs full {full_ns}");
    }

    #[test]
    fn reads_do_not_pay_rmw() {
        let mut w = StripedModel::new(StripedParams::lanl_2007());
        let wf = w.data(NodeId(0), t(0), DataDir::Write, InodeId(1), 0, 1024, false);
        let mut r = StripedModel::new(StripedParams::lanl_2007());
        let rf = r.data(NodeId(0), t(0), DataDir::Read, InodeId(1), 0, 1024, false);
        assert!(rf < wf);
    }

    #[test]
    fn shared_file_write_pays_lock_overhead() {
        let p = StripedParams::lanl_2007();
        let mut a = StripedModel::new(p);
        let fa = a.data(
            NodeId(0),
            t(0),
            DataDir::Write,
            InodeId(1),
            0,
            64 * 1024,
            false,
        );
        let mut b = StripedModel::new(p);
        let fb = b.data(
            NodeId(0),
            t(0),
            DataDir::Write,
            InodeId(1),
            0,
            64 * 1024,
            true,
        );
        assert_eq!(
            fb.as_nanos() - fa.as_nanos(),
            p.shared_lock_overhead.as_nanos()
        );
    }

    #[test]
    fn different_inodes_spread_over_servers() {
        let m = StripedModel::new(StripedParams::lanl_2007());
        let servers: std::collections::HashSet<usize> =
            (0..100).map(|i| m.start_server(InodeId(i))).collect();
        assert!(
            servers.len() > 10,
            "only {} distinct start servers",
            servers.len()
        );
    }

    #[test]
    fn contention_queues_requests() {
        let mut m = StripedModel::new(StripedParams::lanl_2007());
        // Two clients writing the same stripe unit at the same instant:
        // second one queues behind the first.
        let f1 = m.data(
            NodeId(0),
            t(0),
            DataDir::Write,
            InodeId(1),
            0,
            64 * 1024,
            false,
        );
        let f2 = m.data(
            NodeId(1),
            t(0),
            DataDir::Write,
            InodeId(1),
            0,
            64 * 1024,
            false,
        );
        assert!(f2 > f1);
    }

    #[test]
    fn local_cache_hits_are_cheap_but_fsync_pays() {
        let p = LocalParams {
            write_cache_hit: 1.0, // force all hits
            ..LocalParams::lanl_2007()
        };
        let mut m = LocalModel::new(p, 1);
        let f = m.data(
            NodeId(0),
            t(0),
            DataDir::Write,
            InodeId(1),
            0,
            1 << 20,
            false,
        );
        assert!(f < t(1), "cached write returned immediately, got {f:?}");
        // fsync waits for the disk debt (1 MiB at ~55 MB/s ≈ 18 ms)
        let fs = m.fsync(NodeId(0), f);
        assert!(fs > t(10), "fsync paid the writeback, got {fs:?}");
        // a second fsync is cheap: debt already retired
        let fs2 = m.fsync(NodeId(0), fs);
        assert!(fs2.since(fs) < iotrace_sim::time::SimDur::from_millis(1));
    }

    #[test]
    fn local_misses_do_not_pay_the_whole_backlog() {
        let p = LocalParams {
            write_cache_hit: 1.0,
            ..LocalParams::lanl_2007()
        };
        let mut m = LocalModel::new(p, 1);
        // Pile up 100 MiB of cached-write debt.
        for i in 0..100u64 {
            m.data(
                NodeId(0),
                t(i),
                DataDir::Write,
                InodeId(1),
                0,
                1 << 20,
                false,
            );
        }
        // A read pays only its own service, not ~2 s of writeback.
        let f = m.data(NodeId(0), t(200), DataDir::Read, InodeId(1), 0, 4096, false);
        assert!(
            f.since(t(200)) < iotrace_sim::time::SimDur::from_millis(5),
            "{f:?}"
        );
    }

    #[test]
    fn slowdown_window_stretches_service_time() {
        let p = StripedParams::lanl_2007();
        let op = |m: &mut StripedModel| {
            m.data(
                NodeId(0),
                t(0),
                DataDir::Write,
                InodeId(1),
                0,
                64 * 1024,
                false,
            )
        };
        let mut healthy = StripedModel::new(p);
        let base = op(&mut healthy);
        let all_slow: Vec<DegradedWindow> = (0..p.servers)
            .map(|s| DegradedWindow {
                server: s,
                from: SimTime::ZERO,
                until: SimTime::from_secs(100),
                slowdown: 4.0,
                unavailable: false,
            })
            .collect();
        let mut slow = StripedModel::new(p).with_degradation(all_slow, RetryPolicy::lanl_2007());
        let degraded = op(&mut slow);
        assert!(degraded > base, "degraded {degraded:?} vs base {base:?}");
        // outside the window nothing changes
        let windowed = vec![DegradedWindow {
            server: 0,
            from: SimTime::from_secs(50),
            until: SimTime::from_secs(60),
            slowdown: 4.0,
            unavailable: false,
        }];
        let mut later = StripedModel::new(p).with_degradation(windowed, RetryPolicy::lanl_2007());
        assert_eq!(op(&mut later), base);
    }

    #[test]
    fn unavailable_server_costs_retries_then_blocks() {
        let p = StripedParams::lanl_2007();
        let policy = RetryPolicy::lanl_2007();
        let m = StripedModel::new(p);
        let server = m.start_server(InodeId(1));
        let windows = vec![DegradedWindow {
            server,
            from: SimTime::ZERO,
            until: SimTime::from_secs(1),
            slowdown: 1.0,
            unavailable: true,
        }];
        let mut m = m.with_degradation(windows, policy);
        let finish = m.data(
            NodeId(0),
            t(0),
            DataDir::Write,
            InodeId(1),
            0,
            4 * 1024, // one stripe unit: hits exactly the dead server
            false,
        );
        // 5 + 10 + 20 ms of backoff < 1 s outage, so the op blocks to the
        // end of the window and completes after it.
        assert!(finish > SimTime::from_secs(1), "{finish:?}");
        assert_eq!(m.retries(), policy.max_retries as u64);
        // retries surface as queue events: the server is busy with probes
        assert!(m.servers[server].busy_until() > SimTime::ZERO);
    }

    #[test]
    fn short_outage_resolves_within_retry_budget() {
        let p = StripedParams::lanl_2007();
        let m = StripedModel::new(p);
        let server = m.start_server(InodeId(1));
        let windows = vec![DegradedWindow {
            server,
            from: SimTime::ZERO,
            until: SimTime::from_millis(4),
            slowdown: 1.0,
            unavailable: true,
        }];
        let mut m = m.with_degradation(windows, RetryPolicy::lanl_2007());
        let finish = m.data(NodeId(0), t(0), DataDir::Read, InodeId(1), 0, 4096, false);
        // first probe + 5 ms backoff clears the 4 ms outage
        assert!(finish < SimTime::from_millis(20), "{finish:?}");
        assert_eq!(m.retries(), 1);
    }

    #[test]
    fn degraded_runs_stay_deterministic() {
        let p = StripedParams::lanl_2007();
        let run = || {
            let windows = vec![DegradedWindow {
                server: 3,
                from: SimTime::ZERO,
                until: SimTime::from_millis(500),
                slowdown: 1.0,
                unavailable: true,
            }];
            let mut m = StripedModel::new(p).with_degradation(windows, RetryPolicy::lanl_2007());
            (0..40u64)
                .map(|i| {
                    m.data(
                        NodeId((i % 4) as u32),
                        SimTime::from_micros(i * 700),
                        DataDir::Write,
                        InodeId(i % 6),
                        i * 4096,
                        8192,
                        i % 2 == 0,
                    )
                    .as_nanos()
                })
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn nfs_charges_rpc_overhead() {
        let p = NfsParams::lanl_2007();
        let mut m = NfsModel::new(p);
        let f = m.data(NodeId(0), t(0), DataDir::Read, InodeId(1), 0, 0, false);
        assert!(f >= SimTime::ZERO + p.rpc_overhead + p.server.op_latency);
    }
}
