//! Minimal absolute-path handling for the simulated VFS.
//!
//! Simulated paths are `/`-separated UTF-8 strings. We deliberately do not
//! reuse `std::path::Path` (whose semantics are host-OS dependent); the
//! simulation needs one fixed, predictable behaviour everywhere.

/// Normalize a path: force a leading `/`, collapse `//` and `.`, resolve
/// `..` lexically (never above the root). An empty input becomes `/`.
pub fn normalize(path: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            c => out.push(c),
        }
    }
    if out.is_empty() {
        "/".to_string()
    } else {
        let mut s = String::with_capacity(path.len() + 1);
        for c in &out {
            s.push('/');
            s.push_str(c);
        }
        s
    }
}

/// Split a normalized path into components (no empty strings).
pub fn components(path: &str) -> impl Iterator<Item = &str> {
    path.split('/').filter(|c| !c.is_empty() && *c != ".")
}

/// Split into `(parent, file_name)`. Returns `None` for the root.
pub fn split_parent(path: &str) -> Option<(String, &str)> {
    let norm_len = path.len();
    debug_assert!(path.starts_with('/'), "expected normalized path");
    if norm_len <= 1 {
        return None;
    }
    let idx = path.rfind('/').unwrap();
    let name = &path[idx + 1..];
    let parent = if idx == 0 {
        "/".to_string()
    } else {
        path[..idx].to_string()
    };
    Some((parent, name))
}

/// Join a normalized directory and a relative name.
pub fn join(dir: &str, name: &str) -> String {
    if dir == "/" {
        format!("/{name}")
    } else {
        format!("{dir}/{name}")
    }
}

/// If `path` lies under `prefix` (both normalized), return the remainder as
/// an absolute path (`/` when equal). `/` is a prefix of everything.
pub fn strip_prefix<'a>(path: &'a str, prefix: &str) -> Option<&'a str> {
    if prefix == "/" {
        return Some(path);
    }
    let rest = path.strip_prefix(prefix)?;
    if rest.is_empty() {
        Some("/")
    } else if rest.starts_with('/') {
        Some(rest)
    } else {
        None // e.g. prefix=/mnt/a, path=/mnt/ab
    }
}

/// Shell-style glob match supporting `*` (any run, not crossing `/`),
/// `**` (any run including `/`) and `?` (one non-`/` char). Used by the
/// Tracefs granularity filter language.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    fn inner(p: &[u8], s: &[u8]) -> bool {
        if p.is_empty() {
            return s.is_empty();
        }
        match p[0] {
            b'*' => {
                if p.len() >= 2 && p[1] == b'*' {
                    // '**' crosses separators
                    let rest = &p[2..];
                    (0..=s.len()).any(|i| inner(rest, &s[i..]))
                } else {
                    let rest = &p[1..];
                    let mut i = 0;
                    loop {
                        if inner(rest, &s[i..]) {
                            return true;
                        }
                        if i >= s.len() || s[i] == b'/' {
                            return false;
                        }
                        i += 1;
                    }
                }
            }
            b'?' => !s.is_empty() && s[0] != b'/' && inner(&p[1..], &s[1..]),
            c => !s.is_empty() && s[0] == c && inner(&p[1..], &s[1..]),
        }
    }
    inner(pattern.as_bytes(), path.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_basics() {
        assert_eq!(normalize(""), "/");
        assert_eq!(normalize("/"), "/");
        assert_eq!(normalize("a/b"), "/a/b");
        assert_eq!(normalize("/a//b/"), "/a/b");
        assert_eq!(normalize("/a/./b"), "/a/b");
        assert_eq!(normalize("/a/../b"), "/b");
        assert_eq!(normalize("/../../x"), "/x");
    }

    #[test]
    fn split_parent_cases() {
        assert_eq!(split_parent("/"), None);
        assert_eq!(split_parent("/a"), Some(("/".to_string(), "a")));
        assert_eq!(split_parent("/a/b/c"), Some(("/a/b".to_string(), "c")));
    }

    #[test]
    fn join_cases() {
        assert_eq!(join("/", "x"), "/x");
        assert_eq!(join("/a", "x"), "/a/x");
    }

    #[test]
    fn strip_prefix_cases() {
        assert_eq!(strip_prefix("/a/b", "/a"), Some("/b"));
        assert_eq!(strip_prefix("/a", "/a"), Some("/"));
        assert_eq!(strip_prefix("/ab", "/a"), None);
        assert_eq!(strip_prefix("/x/y", "/"), Some("/x/y"));
        assert_eq!(strip_prefix("/x", "/y"), None);
    }

    #[test]
    fn glob_star_does_not_cross_slash() {
        assert!(glob_match("/data/*.out", "/data/run1.out"));
        assert!(!glob_match("/data/*.out", "/data/sub/run1.out"));
        assert!(glob_match("/data/**/*.out", "/data/sub/deep/run1.out"));
        assert!(glob_match("/data/**", "/data/anything/at/all"));
        assert!(glob_match("file?.txt", "file1.txt"));
        assert!(!glob_match("file?.txt", "file12.txt"));
        assert!(glob_match("*", "abc"));
        assert!(!glob_match("*", "a/b"));
        assert!(glob_match("**", "a/b"));
    }

    #[test]
    fn components_iteration() {
        let v: Vec<&str> = components("/a/b/c").collect();
        assert_eq!(v, vec!["a", "b", "c"]);
        assert_eq!(components("/").count(), 0);
    }
}
