//! Tunable cost-model parameters for the simulated storage systems, with
//! one calibrated preset per backend mirroring the paper's 2007 testbed
//! (see DESIGN.md §4 for the calibration rationale and
//! `iotrace-bench/tests/calibration.rs` for the asserted bands).

use iotrace_sim::rng::DetRng;
use iotrace_sim::time::SimDur;

/// A single disk / storage server service model.
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Fixed service latency per request (seek + controller).
    pub op_latency: SimDur,
    /// Streaming bandwidth in bytes/second.
    pub bandwidth_bps: f64,
}

impl DiskParams {
    /// Service time for one request of `bytes`.
    pub fn service(&self, bytes: u64) -> SimDur {
        self.op_latency + SimDur::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }

    /// A 2006-era 7200rpm SATA disk behind a RAID controller.
    pub fn sata_2006() -> Self {
        DiskParams {
            op_latency: SimDur::from_micros(400),
            bandwidth_bps: 60.0e6,
        }
    }

    /// Node-local scratch disk.
    pub fn local_scratch() -> Self {
        DiskParams {
            op_latency: SimDur::from_micros(120),
            bandwidth_bps: 55.0e6,
        }
    }
}

/// Parameters of the striped parallel file system (PanFS-like, the
/// paper's RAID-5, 64 KiB stripe width, 252-drive array).
#[derive(Clone, Copy, Debug)]
pub struct StripedParams {
    /// Number of independent I/O servers (RAID groups).
    pub servers: usize,
    /// Stripe unit in bytes (64 KiB in the paper).
    pub stripe_width: u64,
    /// Per-server service model.
    pub server: DiskParams,
    /// Client-side software cost charged per data operation (MPI-IO +
    /// FS client code path).
    pub client_op_overhead: SimDur,
    /// Service-time multiplier for partial-stripe writes (RAID-5
    /// read-modify-write of data + parity).
    pub rmw_factor: f64,
    /// Fixed cost of metadata operations (open/stat/…), charged at the
    /// metadata service.
    pub meta_latency: SimDur,
    /// Extra per-operation cost on *shared-file* writes (stripe-lock
    /// arbitration among clients); N-1 pays this, N-N does not.
    pub shared_lock_overhead: SimDur,
}

impl StripedParams {
    /// The calibrated 2007 testbed: 252 drives organised as RAID-5
    /// groups behind 28 I/O servers, 64 KiB stripes. Calibration targets
    /// are the *ratio* bands of DESIGN.md §4, asserted by
    /// `iotrace-bench/tests/calibration.rs`.
    pub fn lanl_2007() -> Self {
        StripedParams {
            servers: 28,
            stripe_width: 64 * 1024,
            server: DiskParams {
                op_latency: SimDur::from_micros(400),
                bandwidth_bps: 60.0e6,
            },
            client_op_overhead: SimDur::from_micros(1_600),
            rmw_factor: 2.2,
            meta_latency: SimDur::from_millis(2),
            shared_lock_overhead: SimDur::from_micros(2_800),
        }
    }
}

/// How a striped-FS client reacts to a degraded (unavailable) storage
/// server: probe, back off exponentially, and after the retry budget is
/// spent, block until the server answers again. Every probe is booked on
/// the server's queue, so retries show up in overhead figures the same
/// way real retry RPCs would.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts before falling back to blocking until the outage ends.
    pub max_retries: u32,
    /// Wait after the first failed attempt; doubles per retry via
    /// `backoff_multiplier`.
    pub base_backoff: SimDur,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_multiplier: f64,
    /// Ceiling on any single backoff wait, jitter included. Real clients
    /// cap the exponential curve so a long outage doesn't push waits into
    /// minutes.
    pub max_backoff: SimDur,
    /// Fraction of the (capped) backoff randomized away per attempt, in
    /// `[0, 1]`: the wait becomes `backoff * (1 - jitter_frac * u)` with
    /// `u` uniform in `[0, 1)`. Zero (the calibrated default) keeps every
    /// retry schedule exactly on the deterministic curve; nonzero decorrelates
    /// clients hammering a recovering server in lockstep.
    pub jitter_frac: f64,
    /// Client-side cost of one failed probe RPC (timeout detection).
    pub probe_cost: SimDur,
    /// Give-up cap: total attempts before the caller should stop
    /// retrying altogether ([`RetryPolicy::try_backoff_jittered`] returns
    /// [`RetryExhausted`] at this point). `0` — the calibrated default —
    /// never gives up, preserving the historical block-until-recovered
    /// behaviour; collectors and handoff drivers set a finite cap so a
    /// persistently `Busy` peer degrades a session instead of hanging it.
    pub max_attempts: u32,
}

/// The typed give-up signal: a retry loop hit its
/// [`RetryPolicy::max_attempts`] cap without the operation ever being
/// accepted. Carries how many attempts were burned so session summaries
/// can account for the exhaustion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryExhausted {
    pub attempts: u32,
}

impl std::fmt::Display for RetryExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "retries exhausted after {} attempt(s)", self.attempts)
    }
}
impl std::error::Error for RetryExhausted {}

impl RetryPolicy {
    pub fn lanl_2007() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: SimDur::from_millis(5),
            backoff_multiplier: 2.0,
            max_backoff: SimDur::from_millis(100),
            jitter_frac: 0.0,
            probe_cost: SimDur::from_micros(500),
            max_attempts: 0,
        }
    }

    /// The deterministic backoff after failed attempt number `attempt`
    /// (0-based), capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> SimDur {
        let b = self
            .base_backoff
            .mul_f64(self.backoff_multiplier.powi(attempt as i32));
        b.min(self.max_backoff)
    }

    /// The backoff with seeded jitter applied. With `jitter_frac == 0`
    /// this *is* [`RetryPolicy::backoff`] and the rng is untouched, so a
    /// jitter-free policy draws nothing and stays bit-identical to the
    /// historical fixed schedule.
    pub fn backoff_jittered(&self, attempt: u32, rng: &mut DetRng) -> SimDur {
        let b = self.backoff(attempt);
        if self.jitter_frac <= 0.0 {
            return b;
        }
        b.mul_f64(1.0 - self.jitter_frac.min(1.0) * rng.unit_f64())
    }

    /// [`RetryPolicy::backoff_jittered`] with the give-up cap enforced:
    /// attempt numbers at or past `max_attempts` return the typed
    /// [`RetryExhausted`] error instead of another wait (`max_attempts ==
    /// 0` never gives up). The backoff exponent is clamped to
    /// `max_retries` so deep attempt counts stay on the capped curve
    /// rather than overflowing it.
    pub fn try_backoff_jittered(
        &self,
        attempt: u32,
        rng: &mut DetRng,
    ) -> Result<SimDur, RetryExhausted> {
        if self.max_attempts > 0 && attempt >= self.max_attempts {
            return Err(RetryExhausted { attempts: attempt });
        }
        Ok(self.backoff_jittered(attempt.min(self.max_retries), rng))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::lanl_2007()
    }
}

/// NFS-like single-server file system.
#[derive(Clone, Copy, Debug)]
pub struct NfsParams {
    pub server: DiskParams,
    /// Per-RPC round trip (GETATTR piggybacking etc.).
    pub rpc_overhead: SimDur,
    pub meta_latency: SimDur,
}

impl NfsParams {
    pub fn lanl_2007() -> Self {
        NfsParams {
            server: DiskParams {
                op_latency: SimDur::from_micros(350),
                bandwidth_bps: 45.0e6,
            },
            rpc_overhead: SimDur::from_micros(220),
            meta_latency: SimDur::from_micros(900),
        }
    }
}

/// Node-local file system (ext3-like).
#[derive(Clone, Copy, Debug)]
pub struct LocalParams {
    pub disk: DiskParams,
    pub meta_latency: SimDur,
    /// Fraction of writes absorbed by the page cache (written back
    /// asynchronously); `0.9` means only 1 in 10 writes pays disk service
    /// inline. Trace output benefits from this heavily, as it does on a
    /// real node.
    pub write_cache_hit: f64,
    /// Cost of a cache-absorbed write (memcpy + bookkeeping).
    pub cached_write_cost: SimDur,
}

impl LocalParams {
    pub fn lanl_2007() -> Self {
        LocalParams {
            disk: DiskParams::local_scratch(),
            meta_latency: SimDur::from_micros(80),
            write_cache_hit: 0.99,
            cached_write_cost: SimDur::from_micros(6),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_service_combines_latency_and_bandwidth() {
        let d = DiskParams {
            op_latency: SimDur::from_millis(1),
            bandwidth_bps: 1.0e6,
        };
        // 1 ms latency + 1 MB / 1 MB/s = 1 s
        assert_eq!(
            d.service(1_000_000),
            SimDur::from_millis(1) + SimDur::from_secs(1)
        );
    }

    #[test]
    fn presets_are_sane() {
        let s = StripedParams::lanl_2007();
        assert!(s.servers > 0);
        assert_eq!(s.stripe_width, 64 * 1024);
        assert!(s.rmw_factor >= 1.0);
        let l = LocalParams::lanl_2007();
        assert!((0.0..=1.0).contains(&l.write_cache_hit));
    }

    #[test]
    fn aggregate_bandwidth_is_order_gigabyte() {
        let s = StripedParams::lanl_2007();
        let agg = s.server.bandwidth_bps * s.servers as f64;
        assert!((1.0e9..3.0e9).contains(&agg), "aggregate {agg}");
    }

    #[test]
    fn backoff_curve_is_capped() {
        let p = RetryPolicy::lanl_2007();
        // The calibrated 5/10/20 ms curve is untouched by the cap...
        assert_eq!(p.backoff(0), SimDur::from_millis(5));
        assert_eq!(p.backoff(1), SimDur::from_millis(10));
        assert_eq!(p.backoff(2), SimDur::from_millis(20));
        // ...but a deep retry budget saturates at max_backoff.
        let deep = RetryPolicy {
            max_retries: 12,
            ..p
        };
        assert_eq!(deep.backoff(4), SimDur::from_millis(80));
        assert_eq!(deep.backoff(5), SimDur::from_millis(100));
        assert_eq!(deep.backoff(11), SimDur::from_millis(100));
    }

    #[test]
    fn zero_jitter_never_touches_the_rng() {
        let p = RetryPolicy::lanl_2007();
        let mut rng = DetRng::new(7);
        let before = rng.clone();
        for a in 0..4 {
            assert_eq!(p.backoff_jittered(a, &mut rng), p.backoff(a));
        }
        let mut untouched = before;
        assert_eq!(
            rng.next_u64(),
            untouched.next_u64(),
            "jitter-free policies must not consume randomness"
        );
    }

    #[test]
    fn give_up_cap_returns_the_typed_error() {
        let never = RetryPolicy::lanl_2007();
        let mut rng = DetRng::new(3);
        for a in [0u32, 7, 1000] {
            assert_eq!(
                never.try_backoff_jittered(a, &mut rng),
                Ok(never.backoff(a.min(never.max_retries))),
                "max_attempts=0 never gives up"
            );
        }
        let capped = RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::lanl_2007()
        };
        for a in 0..4 {
            assert!(capped.try_backoff_jittered(a, &mut rng).is_ok());
        }
        let err = capped.try_backoff_jittered(4, &mut rng).unwrap_err();
        assert_eq!(err, RetryExhausted { attempts: 4 });
        assert!(err.to_string().contains("4 attempt(s)"));
        // deep attempts stay on the capped curve, not an overflowing one
        let deep = RetryPolicy {
            max_attempts: 40,
            ..RetryPolicy::lanl_2007()
        };
        assert_eq!(
            deep.try_backoff_jittered(39, &mut rng),
            Ok(deep.backoff(deep.max_retries))
        );
    }

    #[test]
    fn jittered_backoff_is_seed_deterministic_and_bounded() {
        let p = RetryPolicy {
            jitter_frac: 0.5,
            ..RetryPolicy::lanl_2007()
        };
        let draw = |seed: u64| -> Vec<SimDur> {
            let mut rng = DetRng::new(seed);
            (0..3).map(|a| p.backoff_jittered(a, &mut rng)).collect()
        };
        assert_eq!(draw(42), draw(42), "same seed, same schedule");
        assert_ne!(draw(42), draw(43), "different seeds decorrelate");
        let mut rng = DetRng::new(9);
        for a in 0..3 {
            let j = p.backoff_jittered(a, &mut rng);
            let full = p.backoff(a);
            assert!(j <= full, "jitter only shortens the wait");
            assert!(j >= full.mul_f64(0.5), "jitter is bounded by jitter_frac");
        }
    }
}
