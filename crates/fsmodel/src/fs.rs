//! The `FileSystem` trait — the simulated VFS operation surface — and
//! [`ModeledFs`], which combines a [`crate::inode::Namespace`] with a
//! [`crate::cost::CostModel`].
//!
//! Everything that Tracefs traces ("file system operations, i.e. VFS
//! calls", paper §4.2) flows through this trait, which is object-safe so
//! stackable layers can wrap `Box<dyn FileSystem>`.

use iotrace_sim::ids::NodeId;
use iotrace_sim::time::SimTime;

use std::collections::HashMap;

use crate::cost::{CostModel, DataDir, FsKind, LocalModel, MemModel, NfsModel, StripedModel};
use crate::data::WritePayload;
use crate::error::{FsError, FsResult};
use crate::inode::{FileMeta, FileStat, InodeId, InodeKind, Namespace};
use crate::params::{LocalParams, NfsParams, StripedParams};
use crate::path;

/// POSIX-ish open flags (hand-rolled bitset; the subset the workloads and
/// tracers need).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OpenFlags(pub u32);

impl OpenFlags {
    pub const RDONLY: OpenFlags = OpenFlags(0);
    pub const WRONLY: OpenFlags = OpenFlags(1);
    pub const RDWR: OpenFlags = OpenFlags(2);
    pub const CREAT: OpenFlags = OpenFlags(0o100);
    pub const EXCL: OpenFlags = OpenFlags(0o200);
    pub const TRUNC: OpenFlags = OpenFlags(0o1000);
    pub const APPEND: OpenFlags = OpenFlags(0o2000);

    pub fn contains(self, other: OpenFlags) -> bool {
        if other.0 == 0 {
            // RDONLY: access mode bits must be 0
            return self.0 & 0b11 == 0;
        }
        self.0 & other.0 == other.0
    }

    pub fn union(self, other: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | other.0)
    }

    pub fn writable(self) -> bool {
        self.contains(OpenFlags::WRONLY) || self.contains(OpenFlags::RDWR)
    }
}

impl std::ops::BitOr for OpenFlags {
    type Output = OpenFlags;
    fn bitor(self, rhs: OpenFlags) -> OpenFlags {
        self.union(rhs)
    }
}

/// Reply to a charged data operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IoReply {
    /// Bytes actually transferred.
    pub bytes: u64,
    /// Absolute completion time.
    pub finish: SimTime,
}

/// The simulated VFS surface. All charged operations return the absolute
/// completion time so the engine can park the calling rank until then.
pub trait FileSystem: Send {
    fn kind(&self) -> FsKind;
    /// Short human label, e.g. `"ext3"`, `"panfs"`.
    fn label(&self) -> &str;

    fn open(
        &mut self,
        node: NodeId,
        p: &str,
        flags: OpenFlags,
        meta: FileMeta,
        now: SimTime,
    ) -> FsResult<(InodeId, SimTime)>;
    fn close(&mut self, node: NodeId, ino: InodeId, now: SimTime) -> FsResult<SimTime>;
    fn read(
        &mut self,
        node: NodeId,
        ino: InodeId,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> FsResult<IoReply>;
    fn write(
        &mut self,
        node: NodeId,
        ino: InodeId,
        offset: u64,
        payload: &WritePayload,
        now: SimTime,
    ) -> FsResult<IoReply>;
    fn fsync(&mut self, node: NodeId, ino: InodeId, now: SimTime) -> FsResult<SimTime>;
    fn stat(&mut self, node: NodeId, p: &str, now: SimTime) -> FsResult<(FileStat, SimTime)>;
    fn mkdir(&mut self, node: NodeId, p: &str, meta: FileMeta, now: SimTime) -> FsResult<SimTime>;
    fn unlink(&mut self, node: NodeId, p: &str, now: SimTime) -> FsResult<SimTime>;
    fn readdir(&mut self, node: NodeId, p: &str, now: SimTime) -> FsResult<(Vec<String>, SimTime)>;
    fn rename(&mut self, node: NodeId, from: &str, to: &str, now: SimTime) -> FsResult<SimTime>;
    fn truncate(
        &mut self,
        node: NodeId,
        ino: InodeId,
        size: u64,
        now: SimTime,
    ) -> FsResult<SimTime>;

    /// Uncharged access to the namespace, for analysis tools and tests.
    /// Stacked layers delegate to the lowest layer.
    fn namespace(&self) -> &Namespace;
    fn namespace_mut(&mut self) -> &mut Namespace;

    /// Uncharged content fetch (for reading back trace files).
    fn fetch(&self, ino: InodeId, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        self.namespace().read(ino, offset, len)
    }

    /// Unstack: return the wrapped lower file system, or `self` for
    /// non-stacked file systems. Used when unmounting stackable layers
    /// like Tracefs.
    fn unwrap_lower(self: Box<Self>) -> Box<dyn FileSystem>;

    /// Apply fault-injection degradation windows to this file system's
    /// cost model. Default no-op; modeled file systems forward to their
    /// [`CostModel::degrade`], stacked layers forward to the lower FS.
    fn degrade_storage(
        &mut self,
        _windows: &[iotrace_sim::fault::DegradedWindow],
        _policy: crate::params::RetryPolicy,
    ) {
    }
}

/// Namespace + cost model = a usable simulated file system.
pub struct ModeledFs<M: CostModel> {
    label: String,
    ns: Namespace,
    model: M,
    /// node -> count of open handles, per inode (drives the shared-file
    /// lock overhead for N-1 workloads).
    open_nodes: HashMap<InodeId, HashMap<NodeId, u32>>,
}

impl<M: CostModel> ModeledFs<M> {
    pub fn new(label: impl Into<String>, model: M) -> Self {
        ModeledFs {
            label: label.into(),
            ns: Namespace::new(),
            model,
            open_nodes: HashMap::new(),
        }
    }

    pub fn model(&self) -> &M {
        &self.model
    }

    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    fn is_shared(&self, ino: InodeId) -> bool {
        self.open_nodes
            .get(&ino)
            .map(|m| m.len() > 1)
            .unwrap_or(false)
    }
}

/// Convenience constructors for the standard backends.
pub fn mem_fs(label: &str) -> Box<dyn FileSystem> {
    Box::new(ModeledFs::new(label, MemModel))
}
pub fn local_fs(label: &str, params: LocalParams, seed: u64) -> Box<dyn FileSystem> {
    Box::new(ModeledFs::new(label, LocalModel::new(params, seed)))
}
pub fn nfs_fs(label: &str, params: NfsParams) -> Box<dyn FileSystem> {
    Box::new(ModeledFs::new(label, NfsModel::new(params)))
}
pub fn striped_fs(label: &str, params: StripedParams) -> Box<dyn FileSystem> {
    Box::new(ModeledFs::new(label, StripedModel::new(params)))
}

impl<M: CostModel + 'static> FileSystem for ModeledFs<M> {
    fn kind(&self) -> FsKind {
        self.model.kind()
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn open(
        &mut self,
        node: NodeId,
        p: &str,
        flags: OpenFlags,
        meta: FileMeta,
        now: SimTime,
    ) -> FsResult<(InodeId, SimTime)> {
        let p = path::normalize(p);
        let ino = if flags.contains(OpenFlags::CREAT) {
            self.ns
                .create_file(&p, meta, flags.contains(OpenFlags::EXCL))?
        } else {
            let ino = self.ns.resolve(&p)?;
            if self.ns.get(ino)?.kind == InodeKind::Dir && flags.writable() {
                return Err(FsError::IsADirectory(p.clone()));
            }
            ino
        };
        if flags.contains(OpenFlags::TRUNC) && flags.writable() {
            self.ns.truncate(ino, 0, now)?;
        }
        *self
            .open_nodes
            .entry(ino)
            .or_default()
            .entry(node)
            .or_insert(0) += 1;
        Ok((ino, self.model.meta(node, now)))
    }

    fn close(&mut self, node: NodeId, ino: InodeId, now: SimTime) -> FsResult<SimTime> {
        self.ns.get(ino)?;
        if let Some(nodes) = self.open_nodes.get_mut(&ino) {
            if let Some(c) = nodes.get_mut(&node) {
                *c -= 1;
                if *c == 0 {
                    nodes.remove(&node);
                }
            }
            if nodes.is_empty() {
                self.open_nodes.remove(&ino);
            }
        }
        // close is cheap client-side bookkeeping
        Ok(now)
    }

    fn read(
        &mut self,
        node: NodeId,
        ino: InodeId,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> FsResult<IoReply> {
        let size = self.ns.stat(ino)?.size;
        let avail = size.saturating_sub(offset).min(len);
        let shared = self.is_shared(ino);
        let finish = self
            .model
            .data(node, now, DataDir::Read, ino, offset, avail, shared);
        Ok(IoReply {
            bytes: avail,
            finish,
        })
    }

    fn write(
        &mut self,
        node: NodeId,
        ino: InodeId,
        offset: u64,
        payload: &WritePayload,
        now: SimTime,
    ) -> FsResult<IoReply> {
        let shared = self.is_shared(ino);
        let n = self.ns.write(ino, offset, payload, now)?;
        let finish = self
            .model
            .data(node, now, DataDir::Write, ino, offset, n, shared);
        Ok(IoReply { bytes: n, finish })
    }

    fn fsync(&mut self, node: NodeId, ino: InodeId, now: SimTime) -> FsResult<SimTime> {
        self.ns.get(ino)?;
        Ok(self.model.fsync(node, now))
    }

    fn stat(&mut self, node: NodeId, p: &str, now: SimTime) -> FsResult<(FileStat, SimTime)> {
        let st = self.ns.stat_path(&path::normalize(p))?;
        Ok((st, self.model.meta(node, now)))
    }

    fn mkdir(&mut self, node: NodeId, p: &str, meta: FileMeta, now: SimTime) -> FsResult<SimTime> {
        self.ns.mkdir(&path::normalize(p), meta)?;
        Ok(self.model.meta(node, now))
    }

    fn unlink(&mut self, node: NodeId, p: &str, now: SimTime) -> FsResult<SimTime> {
        self.ns.unlink(&path::normalize(p))?;
        Ok(self.model.meta(node, now))
    }

    fn readdir(&mut self, node: NodeId, p: &str, now: SimTime) -> FsResult<(Vec<String>, SimTime)> {
        let names = self.ns.readdir(&path::normalize(p))?;
        Ok((names, self.model.meta(node, now)))
    }

    fn rename(&mut self, node: NodeId, from: &str, to: &str, now: SimTime) -> FsResult<SimTime> {
        self.ns
            .rename(&path::normalize(from), &path::normalize(to))?;
        Ok(self.model.meta(node, now))
    }

    fn truncate(
        &mut self,
        node: NodeId,
        ino: InodeId,
        size: u64,
        now: SimTime,
    ) -> FsResult<SimTime> {
        self.ns.truncate(ino, size, now)?;
        Ok(self.model.meta(node, now))
    }

    fn namespace(&self) -> &Namespace {
        &self.ns
    }

    fn namespace_mut(&mut self) -> &mut Namespace {
        &mut self.ns
    }

    fn unwrap_lower(self: Box<Self>) -> Box<dyn FileSystem> {
        self
    }

    fn degrade_storage(
        &mut self,
        windows: &[iotrace_sim::fault::DegradedWindow],
        policy: crate::params::RetryPolicy,
    ) {
        self.model.degrade(windows, policy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Box<dyn FileSystem> {
        mem_fs("mem")
    }

    #[test]
    fn open_creat_write_read_roundtrip() {
        let mut fs = mem();
        let (ino, _) = fs
            .open(
                NodeId(0),
                "/f",
                OpenFlags::RDWR | OpenFlags::CREAT,
                FileMeta::default(),
                SimTime::ZERO,
            )
            .unwrap();
        let rep = fs
            .write(
                NodeId(0),
                ino,
                0,
                &WritePayload::Bytes(b"hello".to_vec()),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(rep.bytes, 5);
        let r = fs.read(NodeId(0), ino, 0, 10, SimTime::ZERO).unwrap();
        assert_eq!(r.bytes, 5);
        assert_eq!(fs.fetch(ino, 0, 5).unwrap(), b"hello");
    }

    #[test]
    fn open_missing_without_creat_fails() {
        let mut fs = mem();
        assert!(matches!(
            fs.open(
                NodeId(0),
                "/nope",
                OpenFlags::RDONLY,
                FileMeta::default(),
                SimTime::ZERO
            ),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn trunc_clears_content() {
        let mut fs = mem();
        let (ino, _) = fs
            .open(
                NodeId(0),
                "/f",
                OpenFlags::WRONLY | OpenFlags::CREAT,
                FileMeta::default(),
                SimTime::ZERO,
            )
            .unwrap();
        fs.write(
            NodeId(0),
            ino,
            0,
            &WritePayload::Bytes(b"xyz".to_vec()),
            SimTime::ZERO,
        )
        .unwrap();
        let (ino2, _) = fs
            .open(
                NodeId(0),
                "/f",
                OpenFlags::WRONLY | OpenFlags::TRUNC,
                FileMeta::default(),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(ino, ino2);
        assert_eq!(fs.namespace().stat(ino).unwrap().size, 0);
    }

    #[test]
    fn shared_detection_needs_two_nodes() {
        let mut fs = striped_fs("panfs", StripedParams::lanl_2007());
        let (ino, _) = fs
            .open(
                NodeId(0),
                "/shared",
                OpenFlags::RDWR | OpenFlags::CREAT,
                FileMeta::default(),
                SimTime::ZERO,
            )
            .unwrap();
        // same inode opened from node 1 too
        let (ino2, t1) = fs
            .open(
                NodeId(1),
                "/shared",
                OpenFlags::RDWR,
                FileMeta::default(),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(ino, ino2);
        // shared write now pays the lock overhead: compare two fresh fs
        let w_shared = fs
            .write(NodeId(0), ino, 0, &WritePayload::Synthetic(64 * 1024), t1)
            .unwrap();
        fs.close(NodeId(1), ino, w_shared.finish).unwrap();
        let w_excl = fs
            .write(
                NodeId(0),
                ino,
                1 << 20,
                &WritePayload::Synthetic(64 * 1024),
                w_shared.finish,
            )
            .unwrap();
        let d_shared = w_shared.finish.since(t1);
        let d_excl = w_excl.finish.since(w_shared.finish);
        assert!(
            d_shared > d_excl,
            "shared {d_shared:?} vs exclusive {d_excl:?}"
        );
    }

    #[test]
    fn reads_clamp_to_eof() {
        let mut fs = mem();
        let (ino, _) = fs
            .open(
                NodeId(0),
                "/f",
                OpenFlags::RDWR | OpenFlags::CREAT,
                FileMeta::default(),
                SimTime::ZERO,
            )
            .unwrap();
        fs.write(
            NodeId(0),
            ino,
            0,
            &WritePayload::Synthetic(100),
            SimTime::ZERO,
        )
        .unwrap();
        let r = fs.read(NodeId(0), ino, 90, 100, SimTime::ZERO).unwrap();
        assert_eq!(r.bytes, 10);
        let r2 = fs.read(NodeId(0), ino, 200, 10, SimTime::ZERO).unwrap();
        assert_eq!(r2.bytes, 0);
    }

    #[test]
    fn flags_bit_ops() {
        let f = OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC;
        assert!(f.contains(OpenFlags::CREAT));
        assert!(f.writable());
        assert!(!f.contains(OpenFlags::EXCL));
        assert!(!OpenFlags::RDONLY.writable());
        assert!(OpenFlags::RDONLY.contains(OpenFlags::RDONLY));
        assert!(!(OpenFlags::WRONLY).contains(OpenFlags::RDONLY));
    }

    #[test]
    fn striped_write_time_grows_with_size() {
        let mut fs = striped_fs("panfs", StripedParams::lanl_2007());
        let (ino, t0) = fs
            .open(
                NodeId(0),
                "/big",
                OpenFlags::WRONLY | OpenFlags::CREAT,
                FileMeta::default(),
                SimTime::ZERO,
            )
            .unwrap();
        let small = fs
            .write(NodeId(0), ino, 0, &WritePayload::Synthetic(64 * 1024), t0)
            .unwrap();
        let big = fs
            .write(
                NodeId(0),
                ino,
                1 << 30,
                &WritePayload::Synthetic(8 << 20),
                small.finish,
            )
            .unwrap();
        assert!(big.finish.since(small.finish) > small.finish.since(t0));
    }
}
