//! Error type shared by every simulated file system.

use std::fmt;

/// POSIX-flavoured failures surfaced by simulated file systems.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// Path (or a component of it) does not exist. `ENOENT`.
    NotFound(String),
    /// A non-final path component is not a directory. `ENOTDIR`.
    NotADirectory(String),
    /// Directory where a file was expected. `EISDIR`.
    IsADirectory(String),
    /// Target exists and exclusive creation was requested. `EEXIST`.
    AlreadyExists(String),
    /// Directory not empty on unlink/rmdir. `ENOTEMPTY`.
    NotEmpty(String),
    /// Bad file handle. `EBADF`.
    BadHandle(u64),
    /// Operation not supported by this file system. `ENOSYS`.
    Unsupported(&'static str),
    /// Write to a read-only mount or handle. `EROFS`/`EBADF`.
    ReadOnly,
    /// The mount/stacking configuration is invalid — e.g. Tracefs stacked
    /// on a parallel file system without the compatibility patch (paper
    /// §2.2: "not compatible out of the box with our parallel file
    /// system").
    Incompatible(String),
    /// Caller lacks privileges (Tracefs needs root to load its module).
    PermissionDenied(String),
}

pub type FsResult<T> = Result<T, FsError>;

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "ENOENT: no such file or directory: {p}"),
            FsError::NotADirectory(p) => write!(f, "ENOTDIR: not a directory: {p}"),
            FsError::IsADirectory(p) => write!(f, "EISDIR: is a directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "EEXIST: already exists: {p}"),
            FsError::NotEmpty(p) => write!(f, "ENOTEMPTY: directory not empty: {p}"),
            FsError::BadHandle(h) => write!(f, "EBADF: bad handle {h}"),
            FsError::Unsupported(op) => write!(f, "ENOSYS: unsupported operation {op}"),
            FsError::ReadOnly => write!(f, "EROFS: read-only"),
            FsError::Incompatible(why) => write!(f, "incompatible configuration: {why}"),
            FsError::PermissionDenied(why) => write!(f, "EACCES: permission denied: {why}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Errno-style code, used by trace records so output matches the
/// strace-like formats of Figure 1.
impl FsError {
    pub fn errno(&self) -> i32 {
        match self {
            FsError::NotFound(_) => 2,          // ENOENT
            FsError::NotADirectory(_) => 20,    // ENOTDIR
            FsError::IsADirectory(_) => 21,     // EISDIR
            FsError::AlreadyExists(_) => 17,    // EEXIST
            FsError::NotEmpty(_) => 39,         // ENOTEMPTY
            FsError::BadHandle(_) => 9,         // EBADF
            FsError::Unsupported(_) => 38,      // ENOSYS
            FsError::ReadOnly => 30,            // EROFS
            FsError::Incompatible(_) => 95,     // EOPNOTSUPP
            FsError::PermissionDenied(_) => 13, // EACCES
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_path() {
        let e = FsError::NotFound("/a/b".into());
        assert!(e.to_string().contains("/a/b"));
        assert!(e.to_string().contains("ENOENT"));
    }

    #[test]
    fn errnos_are_posix() {
        assert_eq!(FsError::NotFound(String::new()).errno(), 2);
        assert_eq!(FsError::BadHandle(0).errno(), 9);
        assert_eq!(FsError::PermissionDenied(String::new()).errno(), 13);
    }
}
